#!/usr/bin/env bash
# Run the repo's own static analyzer (asgov-analyze): invariant lints
# over every crate plus the exhaustive interleaving checker for the
# parallel harness. Blocking — a non-empty finding list or an
# interleaving violation exits non-zero. Writes ANALYZE_report.json at
# the workspace root.
#
# Usage: scripts/analyze.sh [--quick] [--skip-interleavings]
#   --quick               smaller interleaving configurations (CI smoke)
#   --skip-interleavings  lints only
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p asgov-analyze -- --workspace "$@"
