#!/usr/bin/env bash
# Run the repo's own static analyzer (asgov-analyze): invariant lints
# over every crate plus the exhaustive interleaving checker for the
# parallel harness. Blocking — a non-empty finding list or an
# interleaving violation exits non-zero. Writes ANALYZE_report.json at
# the workspace root.
#
# Usage: scripts/analyze.sh [--quick] [--skip-interleavings] [--baseline]
#   --quick               smaller interleaving configurations (CI smoke)
#   --skip-interleavings  lints only
#   --baseline            additionally diff the finding list against the
#                         committed ANALYZE_baseline.json; any finding
#                         not in the baseline fails the run, and the
#                         diff lands in ANALYZE_report.json.diff. (Line
#                         numbers are excluded from the comparison, so
#                         findings that merely moved do not trip it.)
set -euo pipefail
cd "$(dirname "$0")/.."
args=()
for a in "$@"; do
  case "$a" in
    --baseline) args+=(--baseline ANALYZE_baseline.json) ;;
    *) args+=("$a") ;;
  esac
done
cargo run --release -p asgov-analyze -- --workspace ${args[@]+"${args[@]}"}
