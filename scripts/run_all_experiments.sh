#!/usr/bin/env bash
# Regenerate every table and figure of the paper (plus the ablation,
# scope, related-work and trace studies) into ./results/.
# Full-fidelity runs take a few minutes; pass --quick to smoke-test.
set -euo pipefail
cd "$(dirname "$0")/.."
QUICK="${1:-}"
mkdir -p results
# Differential smoke first, failing loudly even in --quick mode: if the
# event core and the tick core ever diverge, no experiment output below
# can be trusted.
echo "=== diff_smoke ==="
cargo run --release -p asgov-experiments --bin diff_smoke -- $QUICK \
  | tee "results/diff_smoke.txt"
for bin in table1 table2 table3 table4 table5 fig1 fig2 fig3 fig4 fig5 \
           ablations scope related_work traces chaos; do
  echo "=== $bin ==="
  # The chaos study also writes the per-cycle CHAOS_trace.jsonl artifact
  # and the supervised cold-vs-warm restart kill matrix.
  EXTRA=""
  [ "$bin" = "chaos" ] && EXTRA="--trace --kill-matrix"
  if [ "$QUICK" = "--quick" ]; then
    cargo run --release -p asgov-experiments --bin "$bin" -- --quick $EXTRA \
      > "results/$bin.txt" 2>&1 || true
  else
    cargo run --release -p asgov-experiments --bin "$bin" -- $EXTRA \
      > "results/$bin.txt" 2>&1
  fi
done
# The fleet study scales with device count rather than a --quick flag:
# smoke (10^3 devices) for the quick pass, the full 10^5-device bench
# otherwise. Both write ./BENCH_fleet.json (per-tier rows accumulate
# under its "tiers" key).
echo "=== fleet ==="
# Extract a tier's devices_per_sec from BENCH_fleet.json: the file's
# keys are sorted, so the first devices_per_sec after the tier key is
# that tier's row.
smoke_dps() {
  awk '/"smoke": \{/{f=1} f && /"devices_per_sec":/{gsub(/[",]/,"",$2); print $2; exit}' \
    BENCH_fleet.json 2>/dev/null || true
}
if [ "$QUICK" = "--quick" ]; then
  # Committed baseline, captured before the run overwrites the file.
  BASELINE_DPS="$(smoke_dps)"
  cargo run --release -p asgov-experiments --bin fleet -- --smoke \
    > "results/fleet.txt" 2>&1
  # Perf regression gate: the 10^3 smoke tier runs through the
  # pipelined pool path and must stay within 30% of the committed
  # baseline throughput.
  NEW_DPS="$(smoke_dps)"
  if [ -n "$BASELINE_DPS" ] && [ -n "$NEW_DPS" ]; then
    awk -v b="$BASELINE_DPS" -v n="$NEW_DPS" \
      'BEGIN { printf "fleet smoke gate: %.0f devices/sec vs committed %.0f (floor 70%%)\n", n, b; exit !(n >= 0.7 * b) }' \
      || { echo "FAIL: fleet smoke throughput regressed more than 30% vs the committed baseline" >&2; exit 1; }
  else
    echo "fleet smoke gate: no committed smoke baseline; gate skipped"
  fi
else
  cargo run --release -p asgov-experiments --bin fleet -- --bench \
    > "results/fleet.txt" 2>&1
fi
echo "=== bench ==="
if [ "$QUICK" = "--quick" ]; then
  cargo run --release -p asgov-bench -- --quick \
    > "results/bench.txt" 2>&1 || true
else
  cargo run --release -p asgov-bench \
    > "results/bench.txt" 2>&1
fi
echo "all experiment outputs are in ./results/ (bench JSON at ./BENCH_*.json, fault matrix at ./CHAOS_faultmatrix.json)"
