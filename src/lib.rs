//! # asgov — application-specific performance-aware energy optimization
//!
//! A full Rust reproduction of *"Application-Specific Performance-Aware
//! Energy Optimization on Android Mobile Devices"* (HPCA 2017): an
//! offline-profiling + online-control energy manager that minimizes
//! whole-device energy while holding a user-specified performance
//! target, by **coordinated** DVFS of CPU frequency and memory
//! bandwidth — plus every substrate the paper's evaluation needs
//! (a Nexus 6-like SoC simulator, the stock Android governors, the six
//! evaluation applications and the background-load scenarios).
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `asgov-core` | the controller: regulator, Kalman estimator, LP optimizer, scheduler |
//! | [`control`] | `asgov-control` | adaptive integrator, Kalman filter, EWMA, PID, phase detector |
//! | [`linprog`] | `asgov-linprog` | simplex + the O(N²) two-configuration solver |
//! | [`soc`] | `asgov-soc` | simulated device: DVFS, power model, PMU, perf, Monsoon, sysfs |
//! | [`governors`] | `asgov-governors` | interactive, ondemand, conservative, userspace, performance, powersave, cpubw_hwmon |
//! | [`workloads`] | `asgov-workloads` | the six paper applications + eBook, BL/NL/HL background loads |
//! | [`profiler`] | `asgov-profiler` | offline profiling with bandwidth interpolation, default-run baseline |
//! | [`obs`] | `asgov-obs` | observability: per-cycle trace records, ring-buffer sink, metrics |
//!
//! # Quickstart
//!
//! ```no_run
//! use asgov::prelude::*;
//!
//! // The simulated Nexus 6 and a target application.
//! let dev_cfg = DeviceConfig::nexus6();
//! let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
//!
//! // Stage 1 (offline): profile speedup & power per configuration and
//! // measure the default-governor baseline that provides the target.
//! let profile = profile_app(&dev_cfg, &mut app, &ProfileOptions::default());
//! let baseline = measure_default(&dev_cfg, &mut app, 3, 60_000);
//!
//! // Stage 2 (online): run the application under the controller.
//! let mut controller = ControllerBuilder::new(profile)
//!     .target_gips(baseline.gips)
//!     .build();
//! let mut device = Device::new(dev_cfg);
//! let report = sim::run(&mut device, &mut app, &mut [&mut controller], 60_000);
//!
//! println!(
//!     "energy: {:.1} J (default {:.1} J) — {:.1}% saved",
//!     report.energy_j,
//!     baseline.energy_j,
//!     (baseline.energy_j - report.energy_j) / baseline.energy_j * 100.0
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and the `asgov-experiments`
//! binaries for the regeneration of every table and figure of the paper.

pub use asgov_control as control;
pub use asgov_core as core;
pub use asgov_governors as governors;
pub use asgov_linprog as linprog;
pub use asgov_obs as obs;
pub use asgov_profiler as profiler;
pub use asgov_soc as soc;
pub use asgov_util as util;
pub use asgov_workloads as workloads;

/// Convenient single-import surface for applications of the library.
pub mod prelude {
    pub use asgov_core::{ControlMode, ControllerBuilder, EnergyController};
    pub use asgov_governors::{android_defaults, CpubwHwmon, Interactive};
    pub use asgov_profiler::{
        measure_default, measure_fixed, profile_app, profile_app_cpu_only, ProfileOptions,
        ProfileTable,
    };
    pub use asgov_soc::{sim, Device, DeviceConfig, DvfsTable, Policy, Workload};
    pub use asgov_workloads::{
        apps, paper_apps, AppKind, AppSpec, BackgroundLoad, EventSpec, LoadLevel, PhaseSpec,
        PhasedApp, TouchSpec,
    };
}
