//! The paper's other §VII future-work axis: the network packet rate.
//!
//! A live-streaming workload needs ~2.4 k packets/s serviced. Pinning
//! the radio's service rate too low throttles the stream; pinning it at
//! the maximum wastes poll power; the coalescing manager (the network
//! analogue of `cpubw_hwmon`) tracks the demand.
//!
//! Run with: `cargo run --release --example network_axis`

use asgov::governors::NetRateManager;
use asgov::prelude::*;
use asgov::soc::NetRateIndex;

fn live_stream(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "LiveStream",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "stream",
            duration_ms: 1_000,
            rate_gips: 0.35,
            frame_period_ms: 33,
            rate_jitter: 0.2,
            ipc0: 1.3,
            bytes_per_instr: 0.4,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.8,
            extra_power_w: 0.25,
            extra_traffic_mbps: 120.0,
            gpu_work_ghz: 0.05,
            net_pps: 2_400.0,
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (2, 9),
        max_backlog_frames: Some(3.0),
        test_duration_ms: 60_000,
    };
    PhasedApp::new(spec, background, 0x5712)
}

struct PinRate(NetRateIndex);
impl Policy for PinRate {
    fn name(&self) -> &str {
        "pin-net-rate"
    }
    fn start(&mut self, device: &mut Device) {
        device.set_net_rate(self.0);
    }
    fn tick(&mut self, _device: &mut Device) {}
}

fn run(label: &str, policy: &mut dyn Policy) -> (String, f64, f64) {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = live_stream(BackgroundLoad::baseline(1));
    let mut gov_cpu = asgov::governors::Interactive::default();
    let mut gov_bw = asgov::governors::CpubwHwmon::default();
    let mut gov_gpu = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gov_cpu, &mut gov_bw, &mut gov_gpu, policy],
        60_000,
    );
    (label.to_string(), report.avg_gips, report.energy_j)
}

fn main() {
    let rows = vec![
        run("rate pinned n1 (100 pps)", &mut PinRate(NetRateIndex(0))),
        run("rate pinned n3 (1k pps)", &mut PinRate(NetRateIndex(2))),
        run("rate pinned n5 (10k pps)", &mut PinRate(NetRateIndex(4))),
        run("coalescing manager", &mut NetRateManager::default()),
    ];

    println!("LiveStream (needs ~2.4k packets/s) for 60 s:\n");
    println!("{:<28} {:>8} {:>12}", "radio policy", "GIPS", "energy (J)");
    for (label, gips, energy) in &rows {
        println!("{label:<28} {gips:>8.3} {energy:>12.1}");
    }
    println!(
        "\nToo low a packet rate throttles the stream; the maximum wastes\n\
         poll power; the manager lands on the right setting — the same\n\
         profile/control treatment the paper applies to CPU and memory\n\
         (see the gpu_axis example) extends to this axis too (§VII)."
    );
}
