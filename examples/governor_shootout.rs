//! Compare every stock governor pair and the controller on one
//! application: energy, performance, and frequency residency.
//!
//! Run with: `cargo run --release --example governor_shootout`

use asgov::governors::{
    Conservative, CpubwHwmon, Interactive, MpDecision, Ondemand, PerformanceBw, PerformanceCpu,
    PowersaveBw, PowersaveCpu, Schedutil,
};
use asgov::prelude::*;

fn run_stack(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    label: &str,
    policies: &mut [&mut dyn Policy],
) -> (String, f64, f64) {
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let report = sim::run(&mut device, app, policies, 60_000);
    (label.to_string(), report.avg_gips, report.energy_j)
}

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let mut rows = Vec::new();

    let (mut i, mut h) = (Interactive::default(), CpubwHwmon::default());
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "interactive + cpubw_hwmon",
        &mut [&mut i, &mut h],
    ));

    let (mut o, mut h) = (Ondemand::default(), CpubwHwmon::default());
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "ondemand + cpubw_hwmon",
        &mut [&mut o, &mut h],
    ));

    let (mut c, mut h) = (Conservative::default(), CpubwHwmon::default());
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "conservative + cpubw_hwmon",
        &mut [&mut c, &mut h],
    ));

    let (mut p, mut pb) = (PerformanceCpu, PerformanceBw);
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "performance + performance",
        &mut [&mut p, &mut pb],
    ));

    let (mut s, mut sb) = (PowersaveCpu, PowersaveBw);
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "powersave + powersave",
        &mut [&mut s, &mut sb],
    ));

    let (mut su, mut h) = (Schedutil::default(), CpubwHwmon::default());
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "schedutil + cpubw_hwmon",
        &mut [&mut su, &mut h],
    ));

    let (mut i2, mut h2, mut mp) = (
        Interactive::default(),
        CpubwHwmon::default(),
        MpDecision::default(),
    );
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "interactive + hwmon + mpdecision",
        &mut [&mut i2, &mut h2, &mut mp],
    ));

    // The controller, targeted at the interactive baseline.
    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 15_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    let target = rows[0].1;
    let mut controller = ControllerBuilder::new(profile).target_gips(target).build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    rows.push(run_stack(
        &dev_cfg,
        &mut app,
        "asgov controller",
        &mut [&mut gpu_gov, &mut controller],
    ));

    println!("{:<28} {:>10} {:>12}", "policy stack", "GIPS", "energy (J)");
    for (label, gips, energy) in rows {
        println!("{label:<28} {gips:>10.3} {energy:>12.1}");
    }
    println!("\npowersave is cheap but misses the performance target;");
    println!("performance meets it at maximum energy; the controller holds");
    println!("the target at minimum energy — the paper's core claim.");
}
