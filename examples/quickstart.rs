//! Quickstart: profile an application offline, then run it under the
//! energy controller and compare with the stock Android governors.
//!
//! Run with: `cargo run --release --example quickstart`

use asgov::prelude::*;

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));

    // --- Stage 1: offline profiling (paper §III-A).
    println!(
        "profiling {} (alternate frequencies × lowest/highest bandwidth)...",
        app.spec().name
    );
    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 20_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    println!(
        "profiled {} configurations, base speed {:.3} GIPS\n",
        profile.len(),
        profile.base_gips
    );

    // --- Baseline: the default interactive + cpubw_hwmon governors.
    let baseline = measure_default(&dev_cfg, &mut app, 1, 60_000);
    println!(
        "default governors: {:.3} GIPS at {:.2} W -> {:.1} J over 60 s",
        baseline.gips, baseline.power_w, baseline.energy_j
    );

    // --- Stage 2: online control at the default's performance.
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(baseline.gips)
        .build();
    // The GPU stays with its stock governor (see the gpu_axis example
    // for three-axis control).
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        60_000,
    );
    println!(
        "energy controller:  {:.3} GIPS at {:.2} W -> {:.1} J",
        report.avg_gips, report.avg_power_w, report.energy_j
    );

    let savings = (baseline.energy_j - report.energy_j) / baseline.energy_j * 100.0;
    let perf = (report.avg_gips - baseline.gips) / baseline.gips * 100.0;
    println!("\n=> {savings:.1}% energy saved at {perf:+.1}% performance");
}
