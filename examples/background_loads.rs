//! The paper's §V-C robustness experiment: profile under baseline load,
//! then run the controller under no-load and heavier-load conditions.
//!
//! Run with: `cargo run --release --example background_loads`

use asgov::prelude::*;

fn main() {
    let dev_cfg = DeviceConfig::nexus6();

    // Profile WeChat under the baseline load (BL) — the only profile the
    // controller will ever see.
    let mut bl_app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(
        &dev_cfg,
        &mut bl_app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 20_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    let target = measure_default(&dev_cfg, &mut bl_app, 1, 60_000).gips;
    println!("profiled under BL; target {target:.3} GIPS\n");
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "load", "perf delta", "energy save", "base est"
    );

    for level in [LoadLevel::Baseline, LoadLevel::None, LoadLevel::Heavy] {
        let mut app = apps::wechat(BackgroundLoad::with_level(level, 1));
        let default = measure_default(&dev_cfg, &mut app, 1, 60_000);

        let mut controller = ControllerBuilder::new(profile.clone())
            .target_gips(target)
            .build();
        let mut gpu_gov = asgov::governors::AdrenoTz::default();
        let mut device = Device::new(dev_cfg.clone());
        app.reset();
        let report = sim::run(
            &mut device,
            &mut app,
            &mut [&mut gpu_gov, &mut controller],
            60_000,
        );

        println!(
            "{:<6} {:>11.1}% {:>11.1}% {:>10.3}",
            level.label(),
            (report.avg_gips - default.gips) / default.gips * 100.0,
            (default.energy_j - report.energy_j) / default.energy_j * 100.0,
            controller.base_estimate(),
        );
    }
    println!("\nThe Kalman filter re-estimates the base speed under each load,");
    println!("so a BL profile still yields savings under NL and HL (paper Table IV).");
}
