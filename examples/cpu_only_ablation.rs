//! The paper's §V-D ablation: coordinated CPU + memory-bandwidth control
//! vs CPU-only control (bandwidth left to the default `cpubw_hwmon`).
//!
//! Run with: `cargo run --release --example cpu_only_ablation`

use asgov::governors::{AdrenoTz, CpubwHwmon};
use asgov::prelude::*;

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 20_000,
        freq_stride: 2,
        interpolate: true,
    };

    let default = measure_default(&dev_cfg, &mut app, 1, 120_000);
    println!(
        "default: {:.1} J at {:.3} GIPS",
        default.energy_j, default.gips
    );

    // Coordinated: the paper's controller.
    let coord_profile = profile_app(&dev_cfg, &mut app, &opts);
    let mut coordinated = ControllerBuilder::new(coord_profile)
        .target_gips(default.gips)
        .build();
    let mut gpu_gov = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let coord = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut coordinated],
        120_000,
    );

    // CPU-only: re-profiled with the bandwidth under cpubw_hwmon.
    let cpu_profile = profile_app_cpu_only(&dev_cfg, &mut app, &opts);
    let mut cpu_only = ControllerBuilder::new(cpu_profile)
        .target_gips(default.gips)
        .mode(ControlMode::CpuOnly)
        .build();
    let mut bw_gov = CpubwHwmon::default();
    let mut gpu_gov2 = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let cpuonly = sim::run(
        &mut device,
        &mut app,
        &mut [&mut bw_gov, &mut gpu_gov2, &mut cpu_only],
        120_000,
    );

    let s_coord = (default.energy_j - coord.energy_j) / default.energy_j * 100.0;
    let s_cpu = (default.energy_j - cpuonly.energy_j) / default.energy_j * 100.0;
    println!(
        "coordinated: {:.1} J ({s_coord:+.1}%) at {:.3} GIPS",
        coord.energy_j, coord.avg_gips
    );
    println!(
        "cpu-only:    {:.1} J ({s_cpu:+.1}%) at {:.3} GIPS",
        cpuonly.energy_j, cpuonly.avg_gips
    );
    println!("\ncoordinated control saves more: the bandwidth axis matters (paper Table V).");
}
