//! Translate the controller's energy savings into what end users feel:
//! battery life. Simulates continuous Spotify playback and projects how
//! long the Nexus 6's 44 kJ pack lasts under each power manager.
//!
//! Run with: `cargo run --release --example battery_life`

use asgov::prelude::*;

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::spotify(BackgroundLoad::baseline(1));

    let default = measure_default(&dev_cfg, &mut app, 1, 120_000);

    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 20_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(default.gips)
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        120_000,
    );

    let capacity = device.battery().capacity_j();
    let hours = |power_w: f64| capacity / power_w / 3600.0;
    println!("Nexus 6 battery: {:.0} kJ", capacity / 1000.0);
    println!(
        "default governors: {:.2} W -> {:.1} h of playback",
        default.power_w,
        hours(default.power_w)
    );
    println!(
        "asgov controller:  {:.2} W -> {:.1} h of playback",
        report.avg_power_w,
        hours(report.avg_power_w)
    );
    println!(
        "\n=> {:+.1} h of extra playback at equal audio quality",
        hours(report.avg_power_w) - hours(default.power_w)
    );
}
