//! The paper's §VII extension: add the GPU frequency as a third
//! controlled axis. Profiles AngryBirds over (CPU frequency, memory
//! bandwidth, GPU frequency) and compares two-axis vs three-axis
//! control against the stock governors.
//!
//! Run with: `cargo run --release --example gpu_axis`

use asgov::governors::AdrenoTz;
use asgov::prelude::*;
use asgov::profiler::profile_app_with_gpu;

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 15_000,
        freq_stride: 2,
        interpolate: true,
    };

    let default = measure_default(&dev_cfg, &mut app, 1, 90_000);
    println!(
        "default (interactive + cpubw_hwmon + msm-adreno-tz): {:.1} J at {:.3} GIPS",
        default.energy_j, default.gips
    );

    // Two-axis control: the GPU stays with its stock governor.
    let profile2 = profile_app(&dev_cfg, &mut app, &opts);
    let mut controller2 = ControllerBuilder::new(profile2)
        .target_gips(default.gips)
        .build();
    let mut gpu_gov = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let two_axis = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller2],
        90_000,
    );

    // Three-axis control: the controller pins the GPU too.
    let profile3 = profile_app_with_gpu(&dev_cfg, &mut app, &opts);
    println!(
        "three-axis profile: {} configurations (freq × bw × gpu)",
        profile3.len()
    );
    let mut controller3 = ControllerBuilder::new(profile3)
        .target_gips(default.gips)
        .build();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let three_axis = sim::run(&mut device, &mut app, &mut [&mut controller3], 90_000);

    let pct = |e: f64| (default.energy_j - e) / default.energy_j * 100.0;
    println!(
        "two-axis   (cpu+bw):     {:.1} J ({:+.1}%) at {:.3} GIPS",
        two_axis.energy_j,
        pct(two_axis.energy_j),
        two_axis.avg_gips
    );
    println!(
        "three-axis (cpu+bw+gpu): {:.1} J ({:+.1}%) at {:.3} GIPS",
        three_axis.energy_j,
        pct(three_axis.energy_j),
        three_axis.avg_gips
    );
    println!(
        "\nGPU residency (three-axis run): {:?}",
        device.gpu().time_in_freq_ms()
    );
}
