//! The paper claims its strategy "can be implemented on any mobile
//! device capable of DVFS" (§I contribution 5). This example ports the
//! whole pipeline to a different SoC: a big-core flagship with 8 CPU
//! frequencies, 6 bandwidth settings and a different power envelope —
//! nothing in the profiler or controller changes.
//!
//! Run with: `cargo run --release --example port_to_new_device`

use asgov::prelude::*;
use asgov::soc::{DvfsTable, PowerModelParams};

fn flagship_device() -> DeviceConfig {
    // An 8-point big-core ladder and a 6-point LPDDR4X-like bus.
    let table = DvfsTable::new(
        &[0.5, 0.8, 1.1, 1.4, 1.8, 2.2, 2.6, 3.0],
        &[1866.0, 2933.0, 4266.0, 5500.0, 6400.0, 8533.0],
    );
    let power = PowerModelParams {
        screen_w: 0.55, // bigger OLED panel
        wifi_w: 0.08,
        rest_w: 0.25,
        soc_static_w: 0.18,
        cpu_leak_w_per_v: 0.06, // leakier high-performance process
        cpu_dyn_w_per_v2ghz: 0.55,
        cpu_uncore_w_per_v2ghz: 0.22,
        mem_static_w: 0.06,
        mem_bw_w_per_mbps: 5.0e-5,
        mem_traffic_w_per_mbps: 5.0e-5,
    };
    DeviceConfig {
        table,
        power,
        monitor_noise_w: 0.004,
        online_cores: 4.0,
        seed: 0xf1a9,
        mem_overlap: 0.7,
        cpuidle_leak_reduction: 0.0,
    }
}

fn main() {
    let dev_cfg = flagship_device();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));

    println!(
        "flagship SoC: {} CPU frequencies x {} bandwidths",
        dev_cfg.table.num_freqs(),
        dev_cfg.table.num_bws()
    );

    // Stage 1 works unchanged: the profiler discovers this device's
    // ladders from its DvfsTable.
    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 15_000,
            freq_stride: 1, // few enough points to profile exhaustively
            interpolate: true,
        },
    );
    println!("{}", profile.render(&dev_cfg.table));

    // Stage 2 works unchanged too.
    let baseline = measure_default(&dev_cfg, &mut app, 1, 60_000);
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(baseline.gips)
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        60_000,
    );

    println!(
        "default:    {:.3} GIPS at {:.2} W -> {:.1} J",
        baseline.gips, baseline.power_w, baseline.energy_j
    );
    println!(
        "controller: {:.3} GIPS at {:.2} W -> {:.1} J",
        report.avg_gips, report.avg_power_w, report.energy_j
    );
    println!(
        "=> {:+.1}% energy at {:+.1}% performance, on hardware the\n   controller had never seen at compile time",
        (baseline.energy_j - report.energy_j) / baseline.energy_j * 100.0,
        (report.avg_gips - baseline.gips) / baseline.gips * 100.0
    );
}
