//! Bring your own application: define a workload model with the
//! `AppSpec` builder-style types, profile it, and control it.
//!
//! The scenario: a turn-based puzzle game — bursty render work each
//! move, near-idle thinking time, a hint animation every 30 s.
//!
//! Run with: `cargo run --release --example custom_app`

use asgov::prelude::*;

fn puzzle_game(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "PuzzleGame",
        kind: AppKind::Interactive,
        phases: vec![
            PhaseSpec {
                name: "moving",
                duration_ms: 1_200,
                rate_gips: 0.25,
                frame_period_ms: 17,
                rate_jitter: 0.3,
                ipc0: 1.1,
                bytes_per_instr: 0.9,
                gips_cap: None,
                active_cores: 0.6,
                extra_power_w: 0.05,
                cap_busy: false,
                extra_traffic_mbps: 0.0,
                gpu_work_ghz: 0.1,
                net_pps: 0.0,
            },
            PhaseSpec {
                name: "thinking",
                duration_ms: 900,
                rate_gips: 0.06,
                frame_period_ms: 17,
                rate_jitter: 0.1,
                ipc0: 1.1,
                bytes_per_instr: 0.9,
                gips_cap: None,
                active_cores: 0.6,
                extra_power_w: 0.05,
                cap_busy: false,
                extra_traffic_mbps: 0.0,
                gpu_work_ghz: 0.02,
                net_pps: 0.0,
            },
        ],
        touch: Some(TouchSpec {
            rate_per_s: 0.7,
            work_gi: 0.004,
        }),
        events: vec![EventSpec {
            name: "hint-animation",
            period_ms: 30_000,
            duration_ms: 2_000,
            power_w: 0.2,
            work_gi: 0.08,
            extra_traffic_mbps: 50.0,
            touch: false,
        }],
        profile_freq_range: (0, 9),
        max_backlog_frames: Some(3.0),
        test_duration_ms: 90_000,
    };
    PhasedApp::new(spec, background, 0x9a3e)
}

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = puzzle_game(BackgroundLoad::baseline(7));

    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 15_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    println!("{}", profile.render(&dev_cfg.table));

    let baseline = measure_default(&dev_cfg, &mut app, 1, 90_000);
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(baseline.gips)
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        90_000,
    );

    println!(
        "default: {:.3} GIPS / {:.1} J   controller: {:.3} GIPS / {:.1} J   ({:.1}% saved)",
        baseline.gips,
        baseline.energy_j,
        report.avg_gips,
        report.energy_j,
        (baseline.energy_j - report.energy_j) / baseline.energy_j * 100.0
    );
}
