//! Observability tests: the trace sink must be invisible when null
//! (bit-identical runs, mirroring the empty-`FaultPlan` contract in
//! `tests/chaos.rs`) and, when recording, must emit one schema-versioned
//! JSONL record per control cycle whose dwell split partitions the
//! control period exactly.

use asgov::governors::AdrenoTz;
use asgov::obs::{parse_jsonl, NullSink, RingSink, TraceSink, SCHEMA};
use asgov::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 8_000,
        freq_stride: 2,
        interpolate: true,
    }
}

/// Run the controller, optionally with a sink installed on the device.
fn run_once(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &ProfileTable,
    target: f64,
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    duration_ms: u64,
) -> asgov::soc::sim::RunReport {
    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(target)
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    if let Some(sink) = sink {
        device.install_obs_sink(sink);
    }
    app.reset();
    sim::run(
        &mut device,
        app,
        &mut [&mut gpu, &mut controller],
        duration_ms,
    )
}

#[test]
fn null_sink_is_bit_identical_to_no_sink() {
    // Tracing must be a pure observer: a run with a `NullSink` installed
    // matches a run with no sink at all, bit for bit.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let bare = run_once(&dev_cfg, &mut app, &profile, target, None, 40_000);
    let nulled = run_once(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        Some(Rc::new(RefCell::new(NullSink))),
        40_000,
    );

    assert_eq!(bare.energy_j.to_bits(), nulled.energy_j.to_bits());
    assert_eq!(bare.avg_gips.to_bits(), nulled.avg_gips.to_bits());
    assert_eq!(bare.instructions.to_bits(), nulled.instructions.to_bits());
}

#[test]
fn ring_sink_does_not_change_the_run() {
    // Neither does the real recording sink: records are copies, never
    // feedback.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let bare = run_once(&dev_cfg, &mut app, &profile, target, None, 40_000);
    let sink = Rc::new(RefCell::new(RingSink::new(256)));
    let traced = run_once(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        Some(sink.clone()),
        40_000,
    );

    assert_eq!(bare.energy_j.to_bits(), traced.energy_j.to_bits());
    assert_eq!(bare.avg_gips.to_bits(), traced.avg_gips.to_bits());
    assert!(sink.borrow().metrics().cycles > 0, "the sink must record");
}

#[test]
fn traced_run_emits_schema_versioned_jsonl_per_cycle() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let sink = Rc::new(RefCell::new(RingSink::new(256)));
    let duration_ms = 40_000u64;
    run_once(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        Some(sink.clone()),
        duration_ms,
    );

    let sink = sink.borrow();
    let text = sink.to_jsonl();
    for line in text.lines() {
        assert!(
            line.contains(SCHEMA),
            "every line carries the schema tag: {line}"
        );
    }
    let records = parse_jsonl(&text).expect("trace round-trips");
    // One record per 2 s control cycle over the 40 s run (the first
    // cycle fires after one period).
    let period_ms = 2_000u64;
    let expected = duration_ms / period_ms;
    assert!(
        records.len() as u64 >= expected - 2 && records.len() as u64 <= expected + 1,
        "expected ~{expected} cycle records, got {}",
        records.len()
    );
    assert_eq!(sink.metrics().cycles, records.len() as u64);

    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.cycle, i as u64, "cycles are densely numbered");
        assert_eq!(
            rec.tau_lower_ms + rec.tau_upper_ms,
            period_ms,
            "dwell split partitions the control period exactly"
        );
        for tau in [rec.tau_lower_ms, rec.tau_upper_ms] {
            assert!(
                tau == 0 || tau >= 200,
                "non-zero dwells respect the 200 ms floor, got {tau}"
            );
        }
        assert!(rec.measured_gips.is_finite() && rec.target_gips.is_finite());
        assert!(rec.base_estimate > 0.0, "Kalman estimate stays positive");
    }
}
