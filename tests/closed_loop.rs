//! End-to-end closed-loop tests: offline profile → online control →
//! energy/performance comparison against the stock governors, across
//! the paper's applications.

use asgov::prelude::*;

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 8_000,
        freq_stride: 2,
        interpolate: true,
    }
}

/// Profile, measure default, run controller; return (default, report).
fn run_pair(
    mut app: PhasedApp,
    duration_ms: u64,
) -> (
    asgov::profiler::DefaultMeasurement,
    asgov::soc::sim::RunReport,
) {
    let dev_cfg = DeviceConfig::nexus6();
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, duration_ms);
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(default.gips)
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        duration_ms,
    );
    (default, report)
}

#[test]
fn angrybirds_saves_energy_within_performance_band() {
    let (default, ctrl) = run_pair(apps::angrybirds(BackgroundLoad::baseline(1)), 60_000);
    let savings = (default.energy_j - ctrl.energy_j) / default.energy_j;
    let perf = (ctrl.avg_gips - default.gips) / default.gips;
    assert!(
        savings > 0.03,
        "expected >3% savings, got {:.1}%",
        savings * 100.0
    );
    assert!(
        perf > -0.04,
        "performance loss {:.1}% too large",
        perf * 100.0
    );
}

#[test]
fn spotify_saves_energy_at_equal_quality() {
    let (default, ctrl) = run_pair(apps::spotify(BackgroundLoad::baseline(1)), 60_000);
    let savings = (default.energy_j - ctrl.energy_j) / default.energy_j;
    let perf = (ctrl.avg_gips - default.gips) / default.gips;
    assert!(
        savings > 0.05,
        "expected >5% savings, got {:.1}%",
        savings * 100.0
    );
    assert!(perf.abs() < 0.03, "audio workload perf should be unchanged");
}

#[test]
fn wechat_saves_energy_within_performance_band() {
    let (default, ctrl) = run_pair(apps::wechat(BackgroundLoad::baseline(1)), 60_000);
    let savings = (default.energy_j - ctrl.energy_j) / default.energy_j;
    let perf = (ctrl.avg_gips - default.gips) / default.gips;
    assert!(
        savings > 0.03,
        "expected >3% savings, got {:.1}%",
        savings * 100.0
    );
    assert!(
        perf > -0.04,
        "performance loss {:.1}% too large",
        perf * 100.0
    );
}

#[test]
fn vidcon_completes_with_less_energy() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::vidcon(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, 200_000);
    assert!(
        default.reports[0].completed,
        "default run must finish the conversion"
    );

    let mut controller = ControllerBuilder::new(profile)
        .target_gips(default.gips)
        .target_margin(0.0) // deadline-critical
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut controller],
        200_000,
    );
    assert!(
        report.completed,
        "controller run must finish the conversion"
    );

    let savings = (default.energy_j - report.energy_j) / default.energy_j;
    assert!(
        savings > 0.05,
        "expected >5% savings, got {:.1}%",
        savings * 100.0
    );
    let slowdown = report.duration_ms as f64 / default.duration_ms - 1.0;
    assert!(
        slowdown < 0.05,
        "conversion {:.1}% slower",
        slowdown * 100.0
    );
}

#[test]
fn coordinated_beats_cpu_only_on_game() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let default = measure_default(&dev_cfg, &mut app, 1, 90_000);

    // Coordinated.
    let coord_profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let mut coordinated = ControllerBuilder::new(coord_profile)
        .target_gips(default.gips)
        .build();
    let mut gpu_gov = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let coord = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu_gov, &mut coordinated],
        90_000,
    );

    // CPU-only (bandwidth under cpubw_hwmon).
    let cpu_profile = profile_app_cpu_only(&dev_cfg, &mut app, &quick_profile());
    let mut cpu_only = ControllerBuilder::new(cpu_profile)
        .target_gips(default.gips)
        .mode(ControlMode::CpuOnly)
        .build();
    let mut bw_gov = CpubwHwmon::default();
    let mut gpu_gov2 = asgov::governors::AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let cpuonly = sim::run(
        &mut device,
        &mut app,
        &mut [&mut bw_gov, &mut gpu_gov2, &mut cpu_only],
        90_000,
    );

    assert!(
        coord.energy_j < cpuonly.energy_j,
        "coordinated ({:.1} J) must beat cpu-only ({:.1} J)",
        coord.energy_j,
        cpuonly.energy_j
    );
}

#[test]
fn controller_prefers_low_bandwidth() {
    // Paper Fig. 5: the controller selects bandwidth No. 1 for over 60%
    // of the runtime in all six test cases.
    let (_, ctrl) = run_pair(apps::angrybirds(BackgroundLoad::baseline(1)), 60_000);
    let bw_hist = ctrl.stats.bw_histogram();
    assert!(
        bw_hist[0] > 0.6,
        "controller should sit at bw1 >60% of the time, got {:.1}%",
        bw_hist[0] * 100.0
    );
}

#[test]
fn controller_avoids_high_frequencies_for_saturating_app() {
    // Paper Fig. 4(c): profiling excludes useless high frequencies, so
    // the controller never visits them even though the default does.
    let (default, ctrl) = run_pair(apps::angrybirds(BackgroundLoad::baseline(1)), 60_000);
    let ctrl_hist = ctrl.stats.freq_histogram();
    let high_ctrl: f64 = ctrl_hist[10..].iter().sum();
    assert!(
        high_ctrl < 0.01,
        "controller beyond f10: {:.2}%",
        high_ctrl * 100.0
    );
    let def_hist = default.reports[0].stats.freq_histogram();
    let elevated_def: f64 = def_hist[7..].iter().sum();
    assert!(
        elevated_def > 0.15,
        "default should spend real time at elevated frequencies, got {:.1}%",
        elevated_def * 100.0
    );
}
