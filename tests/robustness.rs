//! Robustness tests (paper §III-A and §V-C): the controller must cope
//! with measurement noise, stale profiles and background loads that
//! differ from the profiling environment.

use asgov::governors::AdrenoTz;
use asgov::prelude::*;

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 8_000,
        freq_stride: 2,
        interpolate: true,
    }
}

fn controller_run(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: asgov::profiler::ProfileTable,
    target: f64,
    noise: f64,
    duration_ms: u64,
) -> asgov::soc::sim::RunReport {
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(target)
        .perf_noise_rel(noise)
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    sim::run(
        &mut device,
        app,
        &mut [&mut gpu, &mut controller],
        duration_ms,
    )
}

#[test]
fn bl_profile_still_saves_under_no_load() {
    // Paper Table IV, NL column: profile at BL, run at NL.
    let dev_cfg = DeviceConfig::nexus6();
    let mut bl_app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut bl_app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut bl_app, 1, 60_000).gips;

    let mut nl_app = apps::wechat(BackgroundLoad::none(1));
    let nl_default = measure_default(&dev_cfg, &mut nl_app, 1, 60_000);
    let report = controller_run(&dev_cfg, &mut nl_app, profile, target, 0.02, 60_000);

    let savings = (nl_default.energy_j - report.energy_j) / nl_default.energy_j;
    assert!(
        savings > 0.0,
        "stale BL profile should still save energy under NL, got {:.1}%",
        savings * 100.0
    );
}

#[test]
fn bl_profile_still_saves_under_heavy_load() {
    // Paper Table IV, HL column.
    let dev_cfg = DeviceConfig::nexus6();
    let mut bl_app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut bl_app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut bl_app, 1, 60_000).gips;

    let mut hl_app = apps::wechat(BackgroundLoad::heavy(1));
    let hl_default = measure_default(&dev_cfg, &mut hl_app, 1, 60_000);
    let report = controller_run(&dev_cfg, &mut hl_app, profile, target, 0.02, 60_000);

    let savings = (hl_default.energy_j - report.energy_j) / hl_default.energy_j;
    assert!(
        savings > -0.02,
        "stale BL profile must not backfire badly under HL, got {:.1}%",
        savings * 100.0
    );
}

#[test]
fn heavy_measurement_noise_does_not_destabilize() {
    // 10% PMU noise (the paper reports high variation for short phases).
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, 60_000);

    let clean = controller_run(
        &dev_cfg,
        &mut app,
        profile.clone(),
        default.gips,
        0.0,
        60_000,
    );
    let noisy = controller_run(&dev_cfg, &mut app, profile, default.gips, 0.10, 60_000);

    let perf_drop = (clean.avg_gips - noisy.avg_gips) / clean.avg_gips;
    assert!(
        perf_drop < 0.05,
        "10% measurement noise cost {:.1}% performance",
        perf_drop * 100.0
    );
    assert!(
        noisy.energy_j < default.energy_j * 1.05,
        "noisy controller must not burn more than the default"
    );
}

#[test]
fn absurd_target_clamps_gracefully() {
    // A target far beyond the device's ability must pin the controller
    // at the profile maximum, not break it.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let report = controller_run(&dev_cfg, &mut app, profile, 50.0, 0.02, 30_000);
    assert!(report.avg_gips > 0.05, "app still runs");

    // And a zero target parks it at the cheapest configuration.
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let report = controller_run(&dev_cfg, &mut app, profile, 0.0, 0.02, 30_000);
    let hist = report.stats.freq_histogram();
    assert!(
        hist[0] > 0.9,
        "zero target should park at the lowest profiled frequency"
    );
}

#[test]
fn phase_detection_does_not_hurt_steady_apps() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, 60_000);

    let mut controller = ControllerBuilder::new(profile)
        .target_gips(default.gips)
        .phase_detection(true)
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu, &mut controller],
        60_000,
    );
    let perf = (report.avg_gips - default.gips) / default.gips;
    assert!(
        perf > -0.04,
        "phase detection should be benign on a steady app, perf {:.1}%",
        perf * 100.0
    );
}

#[test]
fn controller_survives_empty_measurement_cycles() {
    // A perf period longer than the control cycle means some cycles see
    // no reading; the controller must reuse the last measurement rather
    // than panic or act on garbage.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(0.1)
        .period_ms(400) // shorter cycle than ...
        .perf_period_ms(1000) // ... the measurement period
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu, &mut controller],
        20_000,
    );
    assert!(report.avg_gips > 0.05);
    assert_eq!(controller.actuation_failures(), 0);
}
