//! Chaos tests: the hardened controller under the deterministic fault
//! injector. Every fault class must complete without panic, with finite
//! actuations and bounded power, and the controller must climb back to
//! full operation within M = 5 control cycles of the fault clearing.

use asgov::governors::AdrenoTz;
use asgov::prelude::*;
use asgov::soc::{DegradationLevel, FaultInjector, FaultKind, FaultPlan};

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 8_000,
        freq_stride: 2,
        interpolate: true,
    }
}

/// Run the controller with `plan` installed on the device; returns the
/// report and the device for post-run inspection.
fn run_with_plan(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &asgov::profiler::ProfileTable,
    target: f64,
    plan: FaultPlan,
    seed: u64,
    duration_ms: u64,
) -> (asgov::soc::sim::RunReport, Device) {
    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(target)
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    device.install_faults(FaultInjector::new(plan, seed));
    app.reset();
    let report = sim::run(
        &mut device,
        app,
        &mut [&mut gpu, &mut controller],
        duration_ms,
    );
    (report, device)
}

#[test]
fn empty_fault_plan_is_bit_identical_and_zero_cost() {
    // The resilience layer must be invisible when no faults fire: a run
    // with an empty plan installed matches a run with no injector at
    // all, bit for bit.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(target)
        .build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let bare = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu, &mut controller],
        40_000,
    );

    let (injected, _) = run_with_plan(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        FaultPlan::new(),
        0x5eed,
        40_000,
    );

    assert_eq!(bare.energy_j.to_bits(), injected.energy_j.to_bits());
    assert_eq!(bare.avg_gips.to_bits(), injected.avg_gips.to_bits());
    assert_eq!(bare.instructions.to_bits(), injected.instructions.to_bits());
    let health = injected.health.expect("controller reports health");
    assert!(health.is_clean(), "clean run must report a clean bill");
    assert_eq!(health.level, DegradationLevel::Full);
}

#[test]
fn every_fault_class_recovers_within_five_cycles() {
    // Faults fire in the middle third of the run; by the end the
    // controller must be back at Full, having spent at most M = 5
    // control cycles climbing out after the fault cleared, with finite
    // actuations and bounded energy throughout.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, 42_000);
    let (start, end) = (14_000, 28_000);

    let w = |p: f64, kind: FaultKind| {
        FaultPlan::new()
            .window_p(start, end, p, kind)
            .expect("valid window")
    };
    let matrix: Vec<(&str, FaultPlan)> = vec![
        ("sysfs-busy", w(0.8, FaultKind::SysfsBusy)),
        ("perf-dropout", w(1.0, FaultKind::PerfDropout)),
        ("perf-nan", w(1.0, FaultKind::PerfNan)),
        ("perf-zero", w(1.0, FaultKind::PerfZero)),
        ("perf-spike", w(0.5, FaultKind::PerfSpike(40.0))),
        ("thermal-clamp", w(1.0, FaultKind::ThermalClamp(4))),
        ("hotplug", w(1.0, FaultKind::Hotplug(2.0))),
    ];

    for (name, plan) in matrix {
        let (report, _) = run_with_plan(
            &dev_cfg,
            &mut app,
            &profile,
            default.gips,
            plan,
            0x5eed,
            42_000,
        );
        assert!(
            report.energy_j.is_finite() && report.avg_gips.is_finite(),
            "{name}: outputs must stay finite under faults"
        );
        assert!(
            report.energy_j < default.energy_j * 1.5,
            "{name}: energy must stay bounded ({:.1} J vs default {:.1} J)",
            report.energy_j,
            default.energy_j
        );
        let health = report.health.expect("controller reports health");
        assert_eq!(
            health.level,
            DegradationLevel::Full,
            "{name}: controller must end the run back at full operation ({})",
            health.summary()
        );
        if health.degradations > 0 {
            assert_eq!(
                health.recoveries, health.degradations,
                "{name}: every degradation must be recovered"
            );
            let latency = health
                .climb_latency_cycles
                .expect("recovered runs report a climb-out latency");
            assert!(
                latency <= 5,
                "{name}: climb-out took {latency} cycles (> M = 5)"
            );
            assert!(
                health.recovery_latency_cycles.is_some(),
                "{name}: recovered runs report an episode latency"
            );
        }
    }
}

#[test]
fn governor_reset_is_reasserted_within_one_period() {
    // Satellite (c): an external agent flips the governor to
    // `interactive` mid-run. The controller must detect the change on
    // its next actuation, re-assert `userspace`, and resume control
    // within one control period — no degradation, no lost writes.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let (clean, _) = run_with_plan(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        FaultPlan::new(),
        0x5eed,
        40_000,
    );
    let plan = FaultPlan::new()
        .window(
            20_000,
            21_000,
            FaultKind::GovernorReset("interactive".into()),
        )
        .expect("valid window");
    let (report, device) =
        run_with_plan(&dev_cfg, &mut app, &profile, target, plan, 0x5eed, 40_000);

    let health = report.health.expect("controller reports health");
    assert!(
        health.wrong_governor >= 1,
        "the rejected write must be observed"
    );
    assert!(
        health.governor_reasserts >= 1,
        "the controller must re-assert userspace"
    );
    assert_eq!(
        health.actuation_failures, 0,
        "recovery happens inside the same actuation — nothing is lost"
    );
    assert_eq!(
        health.degradations, 0,
        "a governor flip is recovered in-place, without degrading"
    );
    assert_eq!(device.cpu_governor(), "userspace");
    // Resumed within one control period: at most one 2 s cycle of the
    // 40 s run was disturbed, so performance stays within a few percent.
    let drop = (clean.avg_gips - report.avg_gips) / clean.avg_gips;
    assert!(
        drop < 0.05,
        "control must resume within one period, lost {:.1}% performance",
        drop * 100.0
    );
}

/// Run the supervised controller with `faults`; returns the report.
fn supervised_with_plan(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &asgov::profiler::ProfileTable,
    target: f64,
    faults: FaultInjector,
    duration_ms: u64,
    warm: bool,
) -> asgov::soc::sim::RunReport {
    use asgov::core::{Supervisor, SupervisorConfig};
    let p = profile.clone();
    let mut supervisor = Supervisor::new(
        move || {
            ControllerBuilder::new(p.clone())
                .target_gips(target)
                .build()
        },
        SupervisorConfig {
            warm,
            ..SupervisorConfig::default()
        },
    );
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    device.install_faults(faults);
    app.reset();
    sim::run(
        &mut device,
        app,
        &mut [&mut gpu, &mut supervisor],
        duration_ms,
    )
}

#[test]
fn warm_restart_recovers_strictly_faster_than_cold() {
    // A controller kill mid-run, once under cold restarts (safe config +
    // full probation) and once under warm restarts (checkpoint restore).
    // Warm must be back at Full strictly sooner: the restored Kalman
    // state and ladder level skip the probation climb entirely.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let kill = || {
        FaultPlan::new()
            .window(20_000, 20_500, FaultKind::ControllerKill)
            .expect("valid window")
    };
    let cold = supervised_with_plan(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        FaultInjector::new(kill(), 0x5eed),
        40_000,
        false,
    );
    let warm = supervised_with_plan(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        FaultInjector::new(kill(), 0x5eed),
        40_000,
        true,
    );

    let cold_h = cold.health.expect("supervisor reports health");
    let warm_h = warm.health.expect("supervisor reports health");
    assert_eq!(cold_h.restarts, 1);
    assert_eq!(warm_h.restarts, 1);
    assert_eq!(warm_h.warm_restarts, 1, "warm restart must restore");
    assert_eq!(cold_h.warm_restarts, 0);
    assert_eq!(warm_h.snapshot_errors, 0);

    // Restarts stay within the backoff bound: a single kill waits at
    // most backoff_base_ms (100 ms at attempt 0) before coming back.
    for (name, h) in [("cold", &cold_h), ("warm", &warm_h)] {
        assert!(
            h.downtime_ms >= 100 && h.downtime_ms <= 5_000,
            "{name}: downtime {} ms outside the backoff bound",
            h.downtime_ms
        );
        assert_eq!(h.level, DegradationLevel::Full, "{name}: must end at Full");
    }

    let cold_rec = cold_h.restart_recovery_ms.expect("cold run recovered");
    let warm_rec = warm_h.restart_recovery_ms.expect("warm run recovered");
    assert!(
        warm_rec < cold_rec,
        "warm recovery ({warm_rec} ms) must be strictly faster than cold ({cold_rec} ms)"
    );
    // Cold serves the safe-config probation (2 clean 2 s cycles); warm
    // restores a Full, converged controller and skips it entirely.
    assert_eq!(
        warm_rec, 0,
        "a healthy checkpoint restores straight to Full"
    );
    assert!(
        cold_rec >= 4_000,
        "cold must serve the probation ({cold_rec} ms)"
    );
}

#[test]
fn corrupted_checkpoint_falls_back_cold_without_panicking() {
    // Every checkpoint written before the kill is damaged on its way to
    // storage. The warm-preferring supervisor must detect this at
    // restore time (CRC), count it, fall back to a cold start, and
    // still finish the run at Full — never panic, never load garbage.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let plan = FaultPlan::new()
        .window(0, 21_000, FaultKind::CheckpointCorrupt)
        .and_then(|p| p.window(20_000, 20_500, FaultKind::ControllerKill))
        .expect("valid windows");
    let report = supervised_with_plan(
        &dev_cfg,
        &mut app,
        &profile,
        target,
        FaultInjector::new(plan, 0x5eed),
        40_000,
        true,
    );
    assert!(report.energy_j.is_finite() && report.avg_gips.is_finite());
    let health = report.health.expect("supervisor reports health");
    assert_eq!(health.restarts, 1);
    assert_eq!(
        health.warm_restarts, 0,
        "a damaged checkpoint must never restore"
    );
    assert!(
        health.snapshot_errors >= 1,
        "the fallback must be counted, not silent"
    );
    assert_eq!(
        health.level,
        DegradationLevel::Full,
        "cold fallback still climbs back to full operation"
    );
}

#[test]
fn fault_replay_is_deterministic() {
    // The same (plan, seed) pair replays bit-for-bit: identical run
    // scalars and an identical health report.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut app, &quick_profile());
    let target = measure_default(&dev_cfg, &mut app, 1, 40_000).gips;

    let plan = || {
        FaultPlan::new()
            .window_p(12_000, 26_000, 0.8, FaultKind::SysfsBusy)
            .and_then(|p| p.window_p(12_000, 26_000, 0.3, FaultKind::PerfSpike(25.0)))
            .expect("valid windows")
    };
    let (a, _) = run_with_plan(&dev_cfg, &mut app, &profile, target, plan(), 0xfeed, 40_000);
    let (b, _) = run_with_plan(&dev_cfg, &mut app, &profile, target, plan(), 0xfeed, 40_000);

    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.avg_gips.to_bits(), b.avg_gips.to_bits());
    assert_eq!(a.instructions.to_bits(), b.instructions.to_bits());
    assert_eq!(a.health, b.health);
    let health = a.health.expect("controller reports health");
    assert!(
        !health.is_clean(),
        "the busy storm must actually have been observed"
    );

    // A different seed shifts the probabilistic faults.
    let (c, _) = run_with_plan(&dev_cfg, &mut app, &profile, target, plan(), 0xbeef, 40_000);
    assert_ne!(
        a.health, c.health,
        "a different seed must draw a different fault trace"
    );
}
