//! Differential tests for the event-driven simulator core: for every
//! supported application, policy stack, fault plan and seed, the
//! next-event engine in `asgov::soc::event` must produce a `RunReport`
//! bit-identical to the retained 1 ms tick core in `asgov::soc::sim` —
//! same energy bits, same instruction count, same residency histograms,
//! same health summary. The golden-pin test additionally anchors both
//! cores to values captured from the pre-refactor tick loop, so neither
//! core can drift from the original semantics unnoticed.

use asgov::governors::{AdrenoTz, CpubwHwmon, Interactive, Ondemand};
use asgov::prelude::*;
use asgov::soc::{event, FaultInjector, FaultKind, FaultPlan};
use asgov::util::Json;
use asgov::workloads::PhasedApp;

/// Constructor signature shared by every packaged application.
type AppCtor = fn(BackgroundLoad) -> PhasedApp;

/// Every packaged application, by constructor.
fn all_apps() -> Vec<(&'static str, AppCtor)> {
    vec![
        ("vidcon", apps::vidcon as AppCtor),
        ("mobilebench", apps::mobilebench),
        ("angrybirds", apps::angrybirds),
        ("wechat", apps::wechat),
        ("mxplayer", apps::mxplayer),
        ("spotify", apps::spotify),
        ("ebook", apps::ebook),
    ]
}

/// The three fault plans of the differential matrix: no faults, DVFS
/// interference (thermal clamp + governor reset), and noisy telemetry
/// (hotplug + perf spikes + sysfs busy).
fn fault_plans() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("none", None),
        (
            "dvfs-interference",
            Some(
                FaultPlan::new()
                    .window(500, 1_500, FaultKind::ThermalClamp(4))
                    .and_then(|p| {
                        p.window(1_800, 1_801, FaultKind::GovernorReset("interactive".into()))
                    })
                    .expect("valid windows"),
            ),
        ),
        (
            "noisy-telemetry",
            Some(
                FaultPlan::new()
                    .window(400, 1_200, FaultKind::Hotplug(2.0))
                    .and_then(|p| p.window(1_000, 2_000, FaultKind::PerfSpike(40.0)))
                    .and_then(|p| p.window(2_200, 2_800, FaultKind::SysfsBusy))
                    .expect("valid windows"),
            ),
        ),
    ]
}

/// Run one configuration through the requested core.
fn run_config(
    core: &str,
    app_fn: fn(BackgroundLoad) -> PhasedApp,
    policy: &str,
    profile: &ProfileTable,
    plan: &Option<FaultPlan>,
    seed: u64,
    max_ms: u64,
) -> asgov::soc::sim::RunReport {
    let cfg = DeviceConfig::nexus6().with_seed(seed);
    let mut device = Device::new(cfg);
    if let Some(plan) = plan {
        device.install_faults(FaultInjector::new(plan.clone(), 0x5eed ^ seed));
    }
    let mut app = app_fn(BackgroundLoad::baseline(seed));

    let mut ondemand = Ondemand::default();
    let mut interactive = Interactive::default();
    let mut bw = CpubwHwmon::default();
    let mut gpu = AdrenoTz::default();
    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(0.5)
        .build();
    let mut policies: Vec<&mut dyn Policy> = match policy {
        "ondemand" => vec![&mut ondemand, &mut bw, &mut gpu],
        "interactive" => vec![&mut interactive, &mut bw, &mut gpu],
        "controller" => vec![&mut controller],
        other => panic!("unknown policy tag {other}"),
    };
    if core == "tick" {
        sim::run(&mut device, &mut app, &mut policies, max_ms)
    } else {
        event::run(&mut device, &mut app, &mut policies, max_ms)
    }
}

/// The full differential matrix: every app x {ondemand, interactive,
/// hardened controller} x 3 fault plans x 3 seeds, tick core vs event
/// core, whole-report equality (covers residency histograms and the
/// health summary via `RunReport: PartialEq`) plus explicit bit checks
/// on the energy integrator.
#[test]
fn event_core_is_bit_identical_to_tick_core() {
    let profile_opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 2_000,
        freq_stride: 4,
        interpolate: true,
    };
    let dev_cfg = DeviceConfig::nexus6();
    for (app_name, app_fn) in all_apps() {
        let mut profile_src = app_fn(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut profile_src, &profile_opts);
        for policy in ["ondemand", "interactive", "controller"] {
            for (plan_name, plan) in fault_plans() {
                for seed in 1..=3u64 {
                    let tick = run_config("tick", app_fn, policy, &profile, &plan, seed, 3_000);
                    let event = run_config("event", app_fn, policy, &profile, &plan, seed, 3_000);
                    let label = format!("{app_name}/{policy}/{plan_name}/seed{seed}");
                    assert_eq!(
                        tick.energy_j.to_bits(),
                        event.energy_j.to_bits(),
                        "{label}: energy bits diverged"
                    );
                    assert_eq!(
                        tick.instructions.to_bits(),
                        event.instructions.to_bits(),
                        "{label}: instruction bits diverged"
                    );
                    assert_eq!(
                        tick.stats.time_in_freq_ms, event.stats.time_in_freq_ms,
                        "{label}: frequency residency histogram diverged"
                    );
                    assert_eq!(
                        tick.stats.time_in_bw_ms, event.stats.time_in_bw_ms,
                        "{label}: bandwidth residency histogram diverged"
                    );
                    assert_eq!(tick.health, event.health, "{label}: health diverged");
                    assert_eq!(tick, event, "{label}: reports diverged");
                }
            }
        }
    }
}

/// Bit-exact values captured from the tick core *before* the event
/// engine existed. Both cores must keep reproducing them: the tick core
/// so the refactor provably changed nothing, the event core so its
/// span integration provably matches the original per-ms semantics.
#[test]
fn golden_pins_from_pre_refactor_tick_core() {
    let cfg = DeviceConfig::nexus6();
    for core in ["tick", "event"] {
        let run = |device: &mut Device,
                   app: &mut dyn Workload,
                   policies: &mut [&mut dyn Policy],
                   ms: u64| {
            if core == "tick" {
                sim::run(device, app, policies, ms)
            } else {
                event::run(device, app, policies, ms)
            }
        };

        // Bare run: spotify + baseline background, monitor noise on.
        let mut device = Device::new(cfg.clone());
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let r = run(&mut device, &mut app, &mut [], 5_000);
        assert_eq!(
            r.energy_j.to_bits(),
            0x401fc7c1be611bb2,
            "{core} bare energy"
        );
        assert_eq!(
            r.instructions.to_bits(),
            0x41c3e86f80000002,
            "{core} bare instr"
        );
        assert_eq!(r.avg_gips.to_bits(), 0x3fc119ce075f6fd4, "{core} bare gips");

        // Android-default governor stack.
        let mut device = Device::new(cfg.clone());
        let mut app = apps::wechat(BackgroundLoad::baseline(2));
        let mut cpu = Ondemand::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 3] = [&mut cpu, &mut bw, &mut gpu];
        let r = run(&mut device, &mut app, &mut policies, 5_000);
        assert_eq!(
            r.energy_j.to_bits(),
            0x402f0bef4bbc4466,
            "{core} govs energy"
        );
        assert_eq!(
            r.instructions.to_bits(),
            0x41ed28c1a56f025b,
            "{core} govs instr"
        );
        assert_eq!(r.stats.freq_transitions, 44, "{core} govs transitions");

        // Fault injection: hotplug + thermal clamp windows.
        let mut device = Device::new(cfg.clone());
        let plan = FaultPlan::new()
            .window(1_000, 2_500, FaultKind::Hotplug(2.0))
            .and_then(|p| p.window(3_000, 4_500, FaultKind::ThermalClamp(4)))
            .expect("valid windows");
        device.install_faults(FaultInjector::new(plan, 0x5eed));
        let mut app = apps::angrybirds(BackgroundLoad::heavy(3));
        let mut cpu = Interactive::default();
        let mut policies: [&mut dyn Policy; 1] = [&mut cpu];
        let r = run(&mut device, &mut app, &mut policies, 6_000);
        assert_eq!(
            r.energy_j.to_bits(),
            0x40368c941011ee92,
            "{core} fault energy"
        );
        assert_eq!(
            r.instructions.to_bits(),
            0x41dd46e8c3352d53,
            "{core} fault instr"
        );
        assert_eq!(
            r.avg_power_w.to_bits(),
            0x400e10c56ac2936d,
            "{core} fault power"
        );
    }
}

/// A supervised controller killed mid-run (twice) must restart and
/// produce bit-identical reports under both cores, in both warm and
/// cold restart modes: kills latch inside forced-tick fault windows,
/// checkpoints land on supervisor-advertised event times, and restarts
/// wake the event core at exactly the backoff deadline.
#[test]
fn supervised_kill_restart_is_bit_identical_across_cores() {
    use asgov::core::{Supervisor, SupervisorConfig};
    let profile_opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 2_000,
        freq_stride: 4,
        interpolate: true,
    };
    let dev_cfg = DeviceConfig::nexus6();
    let mut profile_src = apps::wechat(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut profile_src, &profile_opts);

    let run = |core: &str, warm: bool| {
        let mut device = Device::new(dev_cfg.clone().with_seed(4));
        let plan = FaultPlan::new()
            .window(2_500, 3_000, FaultKind::ControllerKill)
            .and_then(|p| p.window(6_200, 6_700, FaultKind::ControllerKill))
            .expect("valid windows");
        device.install_faults(FaultInjector::new(plan, 0x5eed));
        let mut app = apps::wechat(BackgroundLoad::baseline(4));
        let mut gpu = AdrenoTz::default();
        let p = profile.clone();
        let mut supervisor = Supervisor::new(
            move || ControllerBuilder::new(p.clone()).target_gips(0.5).build(),
            SupervisorConfig {
                warm,
                ..SupervisorConfig::default()
            },
        );
        let mut policies: [&mut dyn Policy; 2] = [&mut gpu, &mut supervisor];
        if core == "tick" {
            sim::run(&mut device, &mut app, &mut policies, 10_000)
        } else {
            event::run(&mut device, &mut app, &mut policies, 10_000)
        }
    };

    for warm in [true, false] {
        let tick = run("tick", warm);
        let event = run("event", warm);
        let label = if warm { "warm" } else { "cold" };
        let health = tick.health.expect("supervisor reports health");
        assert_eq!(health.restarts, 2, "{label}: both kills must restart");
        if warm {
            assert_eq!(health.warm_restarts, 2, "warm restarts must restore");
        } else {
            assert_eq!(health.warm_restarts, 0, "cold mode never restores");
        }
        assert!(health.downtime_ms > 0, "{label}: downtime accounted");
        assert_eq!(
            tick.energy_j.to_bits(),
            event.energy_j.to_bits(),
            "{label}: energy bits diverged"
        );
        assert_eq!(
            tick.instructions.to_bits(),
            event.instructions.to_bits(),
            "{label}: instruction bits diverged"
        );
        assert_eq!(tick, event, "{label}: reports diverged");
    }
}

/// With no kills injected, wrapping the controller in a supervisor must
/// change nothing: same report, bit for bit, as the unsupervised stack,
/// under both cores. (Checkpoints still happen — they must be pure
/// reads.)
#[test]
fn supervisor_without_kills_is_transparent() {
    use asgov::core::{Supervisor, SupervisorConfig};
    let profile_opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 2_000,
        freq_stride: 4,
        interpolate: true,
    };
    let dev_cfg = DeviceConfig::nexus6();
    let mut profile_src = apps::spotify(BackgroundLoad::baseline(1));
    let profile = profile_app(&dev_cfg, &mut profile_src, &profile_opts);

    let run = |core: &str, supervised: bool| {
        let mut device = Device::new(dev_cfg.clone().with_seed(2));
        let mut app = apps::spotify(BackgroundLoad::baseline(2));
        let mut gpu = AdrenoTz::default();
        let p = profile.clone();
        let build = move || ControllerBuilder::new(p.clone()).target_gips(0.5).build();
        let mut controller = build();
        let mut supervisor = Supervisor::new(build, SupervisorConfig::default());
        let mut policies: [&mut dyn Policy; 2] = if supervised {
            [&mut gpu, &mut supervisor]
        } else {
            [&mut gpu, &mut controller]
        };
        if core == "tick" {
            sim::run(&mut device, &mut app, &mut policies, 8_000)
        } else {
            event::run(&mut device, &mut app, &mut policies, 8_000)
        }
    };

    for core in ["tick", "event"] {
        let bare = run(core, false);
        let supervised = run(core, true);
        let health = supervised.health.expect("health present");
        assert_eq!(health.restarts, 0, "{core}: no kills, no restarts");
        assert_eq!(health.downtime_ms, 0, "{core}: no downtime");
        assert_eq!(bare, supervised, "{core}: supervision must be free");
    }
}

/// A workload that finishes before the time limit must stop both cores
/// at the same millisecond with the same report.
#[test]
fn early_completion_is_identical() {
    let cfg = DeviceConfig::nexus6();
    let run = |use_event: bool| {
        let mut device = Device::new(cfg.clone());
        let mut app = apps::vidcon(BackgroundLoad::baseline(1));
        let mut cpu = Ondemand::default();
        let mut policies: [&mut dyn Policy; 1] = [&mut cpu];
        if use_event {
            event::run(&mut device, &mut app, &mut policies, 300_000)
        } else {
            sim::run(&mut device, &mut app, &mut policies, 300_000)
        }
    };
    let tick = run(false);
    let event = run(true);
    assert!(tick.completed, "vidcon must finish inside the limit");
    assert!(tick.duration_ms < 300_000);
    assert_eq!(tick, event);
}

/// `RunReport::to_json` carries the run-summary contract downstream
/// tooling parses: policy name, elapsed vs requested time, and the
/// scalar measurements.
#[test]
fn report_json_shape() {
    let cfg = DeviceConfig::nexus6();
    let mut device = Device::new(cfg);
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let mut cpu = Ondemand::default();
    let mut bw = CpubwHwmon::default();
    let mut policies: [&mut dyn Policy; 2] = [&mut cpu, &mut bw];
    let r = event::run(&mut device, &mut app, &mut policies, 2_000);

    assert_eq!(r.policy, "ondemand+cpubw_hwmon");
    assert_eq!(r.max_ms, 2_000);
    assert_eq!(r.duration_ms, 2_000);

    let doc = r.to_json();
    assert_eq!(doc.get("app").and_then(|v| v.as_str()), Some("Spotify"));
    assert_eq!(
        doc.get("policy").and_then(|v| v.as_str()),
        Some("ondemand+cpubw_hwmon")
    );
    assert_eq!(doc.get("elapsed_ms").and_then(Json::as_f64), Some(2_000.0));
    assert_eq!(doc.get("max_ms").and_then(Json::as_f64), Some(2_000.0));
    // `duration_ms` is kept for backward compatibility with existing
    // result files and must equal `elapsed_ms`.
    assert_eq!(
        doc.get("duration_ms").and_then(Json::as_f64),
        doc.get("elapsed_ms").and_then(Json::as_f64)
    );
    for key in ["energy_j", "avg_power_w", "instructions", "avg_gips"] {
        assert!(
            doc.get(key).and_then(Json::as_f64).is_some(),
            "missing scalar {key}"
        );
    }
    assert_eq!(doc.get("completed").and_then(Json::as_bool), Some(false));

    // A policy-free run reports "none".
    let mut device = Device::new(DeviceConfig::nexus6());
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let bare = event::run(&mut device, &mut app, &mut [], 1_000);
    assert_eq!(bare.policy, "none");
}
