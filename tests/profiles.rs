//! Profile lifecycle tests across crates: persistence round-trips
//! through the filesystem, profile/controller consistency, load models
//! and the CPU-only re-profiling path.

use asgov::governors::AdrenoTz;
use asgov::prelude::*;
use asgov::profiler::{LoadModel, LoadSignature, ProfileTable};

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 6_000,
        freq_stride: 2,
        interpolate: true,
    }
}

#[test]
fn profile_round_trips_through_disk() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let table = profile_app(&dev_cfg, &mut app, &quick_profile());

    let path = std::env::temp_dir().join("asgov_profile_roundtrip.tsv");
    std::fs::write(&path, table.to_tsv()).expect("write profile");
    let text = std::fs::read_to_string(&path).expect("read profile");
    let back = ProfileTable::from_tsv(&text).expect("parse profile");
    std::fs::remove_file(&path).ok();

    assert_eq!(table, back, "profile must survive a disk round-trip");
}

#[test]
fn persisted_profile_drives_a_controller() {
    // Profile once, serialize, "ship" to another session, control there.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let tsv = profile_app(&dev_cfg, &mut app, &quick_profile()).to_tsv();

    let restored = ProfileTable::from_tsv(&tsv).unwrap();
    let mut controller = ControllerBuilder::new(restored).target_gips(0.11).build();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut gpu, &mut controller],
        20_000,
    );
    assert!(report.avg_gips > 0.08);
    assert_eq!(controller.actuation_failures(), 0);
}

#[test]
fn profile_speedups_bracket_base() {
    // The base configuration is in every coordinated profile that starts
    // at f1; its speedup anchors ~1.0 and all speedups stay positive.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let table = profile_app(&dev_cfg, &mut app, &quick_profile());
    assert!(table.min_speedup() > 0.5);
    assert!(table.max_speedup() < 50.0);
    assert!(table.base_gips > 0.01);
    for e in &table.entries {
        assert!(e.power_w > 0.8, "device power below base at {}", e.config);
        assert!(e.power_w < 10.0, "implausible power at {}", e.config);
    }
}

#[test]
fn interpolated_rows_lie_between_measured_endpoints() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let table = profile_app(&dev_cfg, &mut app, &quick_profile());
    // Group rows by frequency; within each, power must be monotone in bw
    // between the measured endpoints (linear interpolation).
    let freqs: std::collections::BTreeSet<usize> =
        table.entries.iter().map(|e| e.config.freq.0).collect();
    for f in freqs {
        let rows: Vec<_> = table
            .entries
            .iter()
            .filter(|e| e.config.freq.0 == f)
            .collect();
        assert_eq!(rows.len(), 13, "one row per bandwidth");
        assert!(rows.first().unwrap().measured);
        assert!(rows.last().unwrap().measured);
        let lo = rows.first().unwrap().power_w;
        let hi = rows.last().unwrap().power_w;
        for r in &rows {
            assert!(
                r.power_w >= lo.min(hi) - 1e-9 && r.power_w <= lo.max(hi) + 1e-9,
                "interpolated power escapes its endpoints at {}",
                r.config
            );
        }
    }
}

#[test]
fn cpu_only_profile_controls_without_bw_actuation() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let table = profile_app_cpu_only(&dev_cfg, &mut app, &quick_profile());
    assert!(table.len() >= 2);

    let mut controller = ControllerBuilder::new(table)
        .target_gips(0.7)
        .mode(ControlMode::CpuOnly)
        .build();
    let mut bw = CpubwHwmon::default();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    sim::run(
        &mut device,
        &mut app,
        &mut [&mut bw, &mut gpu, &mut controller],
        20_000,
    );
    assert_eq!(device.bw_governor(), "cpubw_hwmon");
    assert_eq!(controller.actuation_failures(), 0);
}

#[test]
fn load_model_generates_between_real_profiles() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut nl = apps::spotify(BackgroundLoad::none(1));
    let nl_profile = profile_app(&dev_cfg, &mut nl, &quick_profile());
    let mut hl = apps::spotify(BackgroundLoad::heavy(1));
    let hl_profile = profile_app(&dev_cfg, &mut hl, &quick_profile());

    let model = LoadModel::new(vec![
        (
            LoadSignature {
                cpu_util: 0.008,
                traffic_mbps: 4.0,
            },
            nl_profile.clone(),
        ),
        (
            LoadSignature {
                cpu_util: 0.16,
                traffic_mbps: 180.0,
            },
            hl_profile.clone(),
        ),
    ])
    .unwrap();

    // The generated mid-load profile sits between its anchors, row-wise.
    let mid = model
        .table_for(&LoadSignature {
            cpu_util: 0.08,
            traffic_mbps: 90.0,
        })
        .unwrap();
    for ((m, lo), hi) in mid
        .entries
        .iter()
        .zip(&nl_profile.entries)
        .zip(&hl_profile.entries)
    {
        let (p_lo, p_hi) = (lo.power_w.min(hi.power_w), lo.power_w.max(hi.power_w));
        assert!(m.power_w >= p_lo - 1e-9 && m.power_w <= p_hi + 1e-9);
    }
}

#[test]
fn gpu_profile_has_three_axes_and_controls_them() {
    use asgov::profiler::profile_app_with_gpu;
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let table = profile_app_with_gpu(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 5_000,
            freq_stride: 4,
            interpolate: true,
        },
    );
    assert!(table.entries.iter().all(|e| e.config.gpu.is_some()));
    // 3 freqs (f1, f5, f9) × 13 bw × 5 gpu.
    assert_eq!(table.len(), 3 * 13 * 5);

    let mut controller = ControllerBuilder::new(table).target_gips(0.3).build();
    let mut device = Device::new(dev_cfg);
    app.reset();
    sim::run(&mut device, &mut app, &mut [&mut controller], 20_000);
    assert_eq!(
        device.gpu().governor(),
        "userspace",
        "controller claimed the GPU"
    );
    assert_eq!(controller.actuation_failures(), 0);
}
