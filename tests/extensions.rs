//! End-to-end tests of the future-work extensions (§V-B, §V-C, §VII)
//! and the related-work baselines (§VI).

use asgov::governors::{AdrenoTz, CpubwHwmon, Interactive, MarCse, NetRateManager};
use asgov::prelude::*;
use asgov::profiler::profile_app_with_gpu;
use asgov::soc::NetRateIndex;
use asgov::workloads::TraceWorkload;

fn quick_profile() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 6_000,
        freq_stride: 4,
        interpolate: true,
    }
}

#[test]
fn three_axis_controller_holds_target_and_owns_the_gpu() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let profile = profile_app_with_gpu(&dev_cfg, &mut app, &quick_profile());
    let default = measure_default(&dev_cfg, &mut app, 1, 40_000);

    let mut controller = ControllerBuilder::new(profile)
        .target_gips(default.gips)
        .build();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(&mut device, &mut app, &mut [&mut controller], 40_000);

    assert_eq!(device.gpu().governor(), "userspace");
    let perf = (report.avg_gips - default.gips) / default.gips;
    assert!(perf > -0.06, "three-axis perf {:.1}%", perf * 100.0);
    assert!(
        report.energy_j < default.energy_j * 1.02,
        "three-axis control must not burn more than the default"
    );
}

#[test]
fn mar_cse_saves_energy_but_gives_no_performance_guarantee() {
    // The §VI contrast: the model-based governor can save energy, but
    // nothing bounds its performance loss — the paper's controller has
    // the explicit target instead.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let default = measure_default(&dev_cfg, &mut app, 1, 40_000);

    let mut mar = MarCse::default();
    let mut bw = CpubwHwmon::default();
    let mut gpu = AdrenoTz::default();
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(
        &mut device,
        &mut app,
        &mut [&mut mar, &mut bw, &mut gpu],
        40_000,
    );
    assert!(
        report.energy_j < default.energy_j,
        "the critical-speed governor should save energy on a game"
    );
    // No assertion that performance is held — that is the point.
}

#[test]
fn network_manager_matches_pinned_maximum_performance_cheaper() {
    let mk_app = || {
        let spec = AppSpec {
            name: "NetBound",
            kind: AppKind::Interactive,
            phases: vec![PhaseSpec {
                rate_gips: 0.3,
                net_pps: 2_400.0,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: Some(3.0),
            test_duration_ms: 30_000,
        };
        PhasedApp::new(spec, BackgroundLoad::none(1), 7)
    };

    let run = |managed: bool| {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut cpu = Interactive::default();
        let mut app = mk_app();
        if managed {
            let mut mgr = NetRateManager::default();
            sim::run(&mut device, &mut app, &mut [&mut cpu, &mut mgr], 30_000)
        } else {
            device.set_net_rate(NetRateIndex(4)); // pinned maximum
            sim::run(&mut device, &mut app, &mut [&mut cpu], 30_000)
        }
    };
    let pinned = run(false);
    let managed = run(true);
    assert!(
        (managed.avg_gips - pinned.avg_gips).abs() / pinned.avg_gips < 0.02,
        "manager must not throttle the stream: {} vs {}",
        pinned.avg_gips,
        managed.avg_gips
    );
    assert!(
        managed.energy_j < pinned.energy_j,
        "coalescing must beat the pinned maximum: {} vs {} J",
        pinned.energy_j,
        managed.energy_j
    );
}

#[test]
fn controller_drives_a_replayed_trace() {
    // Record-style CSV -> TraceWorkload -> profile -> control.
    let csv = "\
t_ms,rate_gips,ipc0,bytes_per_instr,active_cores,extra_power_w,gpu_work_ghz
0,0.15,1.3,0.6,1.2,0.05,0.0
2000,0.45,1.3,0.6,2.0,0.05,0.0
4000,0.25,1.3,0.6,1.5,0.05,0.0
";
    let dev_cfg = DeviceConfig::nexus6();
    let mut trace_app =
        TraceWorkload::from_csv("Recorded", csv, BackgroundLoad::baseline(1)).unwrap();

    // Measure the default governors on the replay.
    let mut device = Device::new(dev_cfg.clone());
    let mut cpu = Interactive::default();
    let mut bw = CpubwHwmon::default();
    trace_app.reset();
    let default = sim::run(
        &mut device,
        &mut trace_app,
        &mut [&mut cpu, &mut bw],
        30_000,
    );

    // Hand-profile at a handful of pinned points via the generic
    // device interface (TraceWorkload is not a PhasedApp, so the
    // high-level profiler helpers don't apply — the controller only
    // needs the table).
    let mut entries = Vec::new();
    let mut base = 0.0;
    for (i, f) in [0usize, 6, 12, 17].into_iter().enumerate() {
        let mut d = Device::new(dev_cfg.clone());
        d.set_cpu_governor("userspace");
        d.set_bw_governor("userspace");
        d.set_cpu_freq(asgov::soc::FreqIndex(f));
        trace_app.reset();
        let r = sim::run(&mut d, &mut trace_app, &mut [], 12_000);
        if i == 0 {
            base = r.avg_gips;
        }
        entries.push(asgov::profiler::ProfileEntry {
            config: asgov::profiler::Config::new(asgov::soc::FreqIndex(f), asgov::soc::BwIndex(0)),
            speedup: r.avg_gips / base,
            power_w: r.avg_power_w,
            measured: true,
        });
    }
    let table = ProfileTable {
        app: "Recorded".into(),
        base_gips: base,
        entries,
    };
    assert!(table.validate().is_empty(), "{:?}", table.validate());

    let mut controller = ControllerBuilder::new(table)
        .target_gips(default.avg_gips)
        .build();
    let mut device = Device::new(dev_cfg);
    trace_app.reset();
    let report = sim::run(&mut device, &mut trace_app, &mut [&mut controller], 30_000);
    let perf = (report.avg_gips - default.avg_gips) / default.avg_gips;
    assert!(
        perf > -0.06,
        "controller holds the replayed target, perf {:.1}%",
        perf * 100.0
    );
}

#[test]
fn load_adaptive_controller_runs_end_to_end() {
    use asgov::core::LoadAdaptiveController;
    use asgov::profiler::{LoadModel, LoadSignature};

    let dev_cfg = DeviceConfig::nexus6();
    let mut nl_app = apps::spotify(BackgroundLoad::none(1));
    let nl = profile_app(&dev_cfg, &mut nl_app, &quick_profile());
    let mut hl_app = apps::spotify(BackgroundLoad::heavy(1));
    let hl = profile_app(&dev_cfg, &mut hl_app, &quick_profile());
    let model = LoadModel::new(vec![
        (
            LoadSignature {
                cpu_util: 0.008,
                traffic_mbps: 4.0,
            },
            nl.clone(),
        ),
        (
            LoadSignature {
                cpu_util: 0.16,
                traffic_mbps: 180.0,
            },
            hl,
        ),
    ])
    .unwrap();

    let inner = ControllerBuilder::new(nl).target_gips(0.11).build();
    let mut adaptive = LoadAdaptiveController::new(inner, model, 5_000);
    let mut app = apps::spotify(BackgroundLoad::baseline(1));
    let mut device = Device::new(dev_cfg);
    app.reset();
    let report = sim::run(&mut device, &mut app, &mut [&mut adaptive], 25_000);
    assert!(adaptive.profile_swaps() >= 3);
    assert!(report.avg_gips > 0.08);
}
