//! Determinism and calibration-anchor tests: identical seeds must give
//! identical results (the experiments are reproducible bit-for-bit),
//! and the simulated device must stay anchored to the paper's absolute
//! reference points.

use asgov::governors::{AdrenoTz, CpubwHwmon, Interactive};
use asgov::prelude::*;

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let dev_cfg = DeviceConfig::nexus6();
        let mut device = Device::new(dev_cfg);
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
        let report = sim::run(
            &mut device,
            &mut app,
            &mut [&mut cpu, &mut bw, &mut gpu],
            20_000,
        );
        (
            report.energy_j,
            report.avg_gips,
            report.stats.freq_transitions,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seeds, same everything");
}

#[test]
fn different_device_seeds_differ_noise_only() {
    let run = |seed| {
        let dev_cfg = DeviceConfig::nexus6().with_seed(seed);
        let mut device = Device::new(dev_cfg);
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        sim::run(&mut device, &mut app, &mut [], 20_000).energy_j
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "monitor noise differs across seeds");
    assert!(
        (a - b).abs() / a < 0.01,
        "...but only by measurement noise: {a} vs {b}"
    );
}

#[test]
fn profiles_are_reproducible() {
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 4_000,
        freq_stride: 4,
        interpolate: true,
    };
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    let p1 = profile_app(&dev_cfg, &mut app, &opts);
    let p2 = profile_app(&dev_cfg, &mut app, &opts);
    assert_eq!(p1, p2);
}

#[test]
fn paper_table1_anchor_points() {
    // Paper Table I: AngryBirds at (0.3 GHz, 762 MBps) draws ~1.62 W
    // whole-device; base speed 0.129 GIPS. Our calibration must stay in
    // the same neighbourhood (±35 %).
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let mut device = Device::new(dev_cfg);
    device.set_cpu_governor("userspace");
    device.set_bw_governor("userspace");
    device.set_tool_overhead(0.04, 0.015); // perf runs during profiling
    let report = sim::run(&mut device, &mut app, &mut [], 30_000);

    assert!(
        (1.05..=2.2).contains(&report.avg_power_w),
        "base-config power {} W vs the paper's 1.62 W",
        report.avg_power_w
    );
    assert!(
        (0.084..=0.175).contains(&report.avg_gips),
        "base speed {} GIPS vs the paper's 0.129",
        report.avg_gips
    );
}

#[test]
fn paper_vidcon_anchor_points() {
    // Paper: VidCon base speed 0.471 GIPS; default conversion ≈ 59 s.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::vidcon(BackgroundLoad::baseline(1));

    let mut device = Device::new(dev_cfg.clone());
    device.set_cpu_governor("userspace");
    device.set_bw_governor("userspace");
    let base = sim::run(&mut device, &mut app, &mut [], 20_000).avg_gips;
    assert!(
        (0.3..=0.71).contains(&base),
        "VidCon base speed {base} vs the paper's 0.471"
    );

    let default = measure_default(&dev_cfg, &mut app, 1, 200_000);
    assert!(default.reports[0].completed);
    assert!(
        (30_000.0..=90_000.0).contains(&default.duration_ms),
        "default conversion took {} ms vs the paper's ~59 s",
        default.duration_ms
    );
}
