//! Property-based tests of the LP substrate: the specialized
//! two-configuration solver must agree with the general simplex solver
//! on every well-formed instance, and its schedules must satisfy the
//! paper's constraints exactly.

use asgov_linprog::{simplex, two_point};
use proptest::prelude::*;

/// Strategy: a random profile table of 2–40 configurations with
/// positive speedups and powers, plus a target inside the achievable
/// speedup range.
fn instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (2usize..40)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.5f64..5.0, n),
                prop::collection::vec(0.5f64..6.0, n),
                0.0f64..1.0,
            )
        })
        .prop_map(|(speedups, powers, t)| {
            let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let target = lo + t * (hi - lo);
            (speedups, powers, target)
        })
}

proptest! {
    /// The schedule always fills the control period exactly and never
    /// uses negative dwell times.
    #[test]
    fn schedule_fills_period((speedups, powers, target) in instance()) {
        let period = 2.0;
        let sched = two_point::optimize(&speedups, &powers, target, period)
            .expect("well-formed instance must be solvable");
        prop_assert!(sched.tau_lower >= -1e-12);
        prop_assert!(sched.tau_upper >= -1e-12);
        prop_assert!((sched.tau_lower + sched.tau_upper - period).abs() < 1e-9);
    }

    /// The delivered speedup matches the target (up to the plateau
    /// tolerance clamping at the extremes).
    #[test]
    fn schedule_meets_target((speedups, powers, target) in instance()) {
        let sched = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        let achieved = sched.expected_speedup(&speedups);
        let hi = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        // Interior targets are met exactly; extreme targets clamp within
        // the plateau tolerance.
        let tol = (hi - lo).max(1.0) * two_point::PLATEAU_TOL + 1e-9;
        prop_assert!(
            (achieved - target).abs() <= tol.max(hi * two_point::PLATEAU_TOL),
            "target {target}, achieved {achieved}"
        );
    }

    /// The chosen pair brackets the target: 𝕊(l) ≤ s ≤ 𝕊(h) (within the
    /// plateau tolerance at the extremes).
    #[test]
    fn schedule_brackets_target((speedups, powers, target) in instance()) {
        let sched = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        let hi = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let slack = hi * two_point::PLATEAU_TOL + 1e-9;
        prop_assert!(speedups[sched.lower] <= target + slack);
        prop_assert!(speedups[sched.upper] >= target - slack);
    }

    /// The specialized solver is optimal: it never does worse than the
    /// general simplex solver on the same LP (and never better, either,
    /// apart from plateau-tolerance clamping).
    #[test]
    fn two_point_matches_simplex((speedups, powers, target) in instance()) {
        let period = 2.0;
        let sched = two_point::optimize(&speedups, &powers, target, period).unwrap();

        let a = vec![speedups.clone(), vec![1.0; speedups.len()]];
        let b = vec![target * period, period];
        let lp = simplex::solve(&a, &b, &powers).expect("interior target is feasible");

        // Clamped (plateau) schedules may deliver a slightly different
        // speedup; compare only when the schedule met the target exactly.
        let achieved = sched.expected_speedup(&speedups);
        if (achieved - target).abs() < 1e-9 {
            prop_assert!(
                (sched.energy_j - lp.objective).abs() < 1e-6 * lp.objective.max(1.0),
                "two-point {} vs simplex {}",
                sched.energy_j,
                lp.objective
            );
        }
    }

    /// Simplex solutions satisfy their constraints.
    #[test]
    fn simplex_feasible((speedups, powers, target) in instance()) {
        let period = 2.0;
        let a = vec![speedups.clone(), vec![1.0; speedups.len()]];
        let b = vec![target * period, period];
        let lp = simplex::solve(&a, &b, &powers).unwrap();
        let perf: f64 = lp.x.iter().zip(&speedups).map(|(u, s)| u * s).sum();
        let time: f64 = lp.x.iter().sum();
        prop_assert!(lp.x.iter().all(|&u| u >= -1e-9));
        prop_assert!((perf - target * period).abs() < 1e-6);
        prop_assert!((time - period).abs() < 1e-6);
    }

    /// Energy is monotone in the target: asking for more speedup never
    /// costs less (on monotone-power tables).
    #[test]
    fn energy_monotone_in_target(n in 3usize..20, seed in 0u64..1000) {
        // Build a monotone (speedup, power) table deterministically.
        let mut speedups = Vec::new();
        let mut powers = Vec::new();
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let wiggle = ((seed as f64 * 0.37 + i as f64) .sin() + 1.0) * 0.05;
            speedups.push(1.0 + 2.0 * x + wiggle * 0.1);
            powers.push(1.0 + 3.0 * x * x + wiggle);
        }
        speedups.sort_by(f64::total_cmp);
        powers.sort_by(f64::total_cmp);
        let lo = speedups[0];
        let hi = speedups[n - 1];
        let mut prev = 0.0;
        for k in 0..10 {
            let target = lo + (hi - lo) * k as f64 / 9.0;
            let e = two_point::optimize(&speedups, &powers, target, 2.0).unwrap().energy_j;
            prop_assert!(e >= prev - 1e-9, "energy regressed at target {target}");
            prev = e;
        }
    }
}
