//! Property-based tests of the LP substrate: the specialized
//! two-configuration solver must agree with the general simplex solver
//! on every well-formed instance, its schedules must satisfy the
//! paper's constraints exactly, and the convex-hull solver must agree
//! with the brute-force pair search on every table shape.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_linprog::{simplex, two_point, HullSolver};
use asgov_util::Rng;

/// A random profile table of 2–40 configurations with positive
/// speedups and powers, plus a target inside the achievable range.
fn instance(rng: &mut Rng) -> (Vec<f64>, Vec<f64>, f64) {
    let n = rng.gen_range_usize(2..40);
    let speedups: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..5.0)).collect();
    let powers: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..6.0)).collect();
    let lo = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let target = lo + rng.gen_range(0.0..1.0) * (hi - lo);
    (speedups, powers, target)
}

/// The schedule always fills the control period exactly and never
/// uses negative dwell times.
#[test]
fn schedule_fills_period() {
    let mut rng = Rng::seed_from_u64(0x19_0001);
    for case in 0..256 {
        let (speedups, powers, target) = instance(&mut rng);
        let period = 2.0;
        let sched = two_point::optimize(&speedups, &powers, target, period)
            .expect("well-formed instance must be solvable");
        assert!(sched.tau_lower >= -1e-12, "case {case}");
        assert!(sched.tau_upper >= -1e-12, "case {case}");
        assert!(
            (sched.tau_lower + sched.tau_upper - period).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// The delivered speedup matches the target (up to the plateau
/// tolerance clamping at the extremes).
#[test]
fn schedule_meets_target() {
    let mut rng = Rng::seed_from_u64(0x19_0002);
    for case in 0..256 {
        let (speedups, powers, target) = instance(&mut rng);
        let sched = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        let achieved = sched.expected_speedup(&speedups);
        let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        // Interior targets are met exactly; extreme targets clamp within
        // the plateau tolerance.
        let tol = (hi - lo).max(1.0) * two_point::PLATEAU_TOL + 1e-9;
        assert!(
            (achieved - target).abs() <= tol.max(hi * two_point::PLATEAU_TOL),
            "case {case}: target {target}, achieved {achieved}"
        );
    }
}

/// The chosen pair brackets the target: 𝕊(l) ≤ s ≤ 𝕊(h) (within the
/// plateau tolerance at the extremes).
#[test]
fn schedule_brackets_target() {
    let mut rng = Rng::seed_from_u64(0x19_0003);
    for case in 0..256 {
        let (speedups, powers, target) = instance(&mut rng);
        let sched = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let slack = hi * two_point::PLATEAU_TOL + 1e-9;
        assert!(speedups[sched.lower] <= target + slack, "case {case}");
        assert!(speedups[sched.upper] >= target - slack, "case {case}");
    }
}

/// The specialized solver is optimal: it never does worse than the
/// general simplex solver on the same LP (and never better, either,
/// apart from plateau-tolerance clamping).
#[test]
fn two_point_matches_simplex() {
    let mut rng = Rng::seed_from_u64(0x19_0004);
    for case in 0..128 {
        let (speedups, powers, target) = instance(&mut rng);
        let period = 2.0;
        let sched = two_point::optimize(&speedups, &powers, target, period).unwrap();

        let a = vec![speedups.clone(), vec![1.0; speedups.len()]];
        let b = vec![target * period, period];
        let lp = simplex::solve(&a, &b, &powers).expect("interior target is feasible");

        // Clamped (plateau) schedules may deliver a slightly different
        // speedup; compare only when the schedule met the target exactly.
        let achieved = sched.expected_speedup(&speedups);
        if (achieved - target).abs() < 1e-9 {
            assert!(
                (sched.energy_j - lp.objective).abs() < 1e-6 * lp.objective.max(1.0),
                "case {case}: two-point {} vs simplex {}",
                sched.energy_j,
                lp.objective
            );
        }
    }
}

/// Simplex solutions satisfy their constraints.
#[test]
fn simplex_feasible() {
    let mut rng = Rng::seed_from_u64(0x19_0005);
    for case in 0..128 {
        let (speedups, powers, target) = instance(&mut rng);
        let period = 2.0;
        let a = vec![speedups.clone(), vec![1.0; speedups.len()]];
        let b = vec![target * period, period];
        let lp = simplex::solve(&a, &b, &powers).unwrap();
        let perf: f64 = lp.x.iter().zip(&speedups).map(|(u, s)| u * s).sum();
        let time: f64 = lp.x.iter().sum();
        assert!(lp.x.iter().all(|&u| u >= -1e-9), "case {case}");
        assert!((perf - target * period).abs() < 1e-6, "case {case}");
        assert!((time - period).abs() < 1e-6, "case {case}");
    }
}

/// Energy is monotone in the target: asking for more speedup never
/// costs less (on monotone-power tables).
#[test]
fn energy_monotone_in_target() {
    let mut rng = Rng::seed_from_u64(0x19_0006);
    for case in 0..256 {
        let n = rng.gen_range_usize(3..20);
        let wiggle_seed = rng.gen_range(0.0..1000.0);
        // Build a monotone (speedup, power) table deterministically.
        let mut speedups = Vec::new();
        let mut powers = Vec::new();
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let wiggle = ((wiggle_seed * 0.37 + i as f64).sin() + 1.0) * 0.05;
            speedups.push(1.0 + 2.0 * x + wiggle * 0.1);
            powers.push(1.0 + 3.0 * x * x + wiggle);
        }
        speedups.sort_by(f64::total_cmp);
        powers.sort_by(f64::total_cmp);
        let lo = speedups[0];
        let hi = speedups[n - 1];
        let mut prev = 0.0;
        for k in 0..10 {
            let target = lo + (hi - lo) * k as f64 / 9.0;
            let e = two_point::optimize(&speedups, &powers, target, 2.0)
                .unwrap()
                .energy_j;
            assert!(
                e >= prev - 1e-9,
                "case {case}: energy regressed at target {target}"
            );
            prev = e;
        }
    }
}

// ---------------------------------------------------------------------
// Differential testing: hull solver vs brute-force oracle.
// ---------------------------------------------------------------------

/// Table shapes the hull solver must handle identically to the brute
/// force: speedup-sorted, randomly ordered, plateaued (duplicated and
/// near-equal speedups), and the single-entry degenerate case.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Sorted,
    Unsorted,
    Plateaued,
    Single,
}

fn random_table(rng: &mut Rng, shape: Shape) -> (Vec<f64>, Vec<f64>) {
    match shape {
        Shape::Single => (vec![rng.gen_range(0.5..5.0)], vec![rng.gen_range(0.5..6.0)]),
        Shape::Sorted => {
            let n = rng.gen_range_usize(2..40);
            let mut speedups: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..5.0)).collect();
            let mut powers: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..6.0)).collect();
            speedups.sort_by(f64::total_cmp);
            powers.sort_by(f64::total_cmp);
            (speedups, powers)
        }
        Shape::Unsorted => {
            let n = rng.gen_range_usize(2..40);
            (
                (0..n).map(|_| rng.gen_range(0.5..5.0)).collect(),
                (0..n).map(|_| rng.gen_range(0.5..6.0)).collect(),
            )
        }
        Shape::Plateaued => {
            // A few distinct speedup levels, each shared by several
            // configurations (exactly equal or within the 0.5 %
            // plateau tolerance), with random powers.
            let levels = rng.gen_range_usize(1..5);
            let level_speedups: Vec<f64> = (0..levels).map(|_| rng.gen_range(0.8..4.5)).collect();
            let n = rng.gen_range_usize(2..30);
            let mut speedups = Vec::with_capacity(n);
            let mut powers = Vec::with_capacity(n);
            for _ in 0..n {
                let base = level_speedups[rng.gen_range_usize(0..levels)];
                let s = if rng.gen_bool(0.5) {
                    base // exact duplicate
                } else {
                    base * (1.0 + rng.gen_range(-0.004..0.004)) // near-tie
                };
                speedups.push(s);
                powers.push(rng.gen_range(0.5..6.0));
            }
            (speedups, powers)
        }
    }
}

/// Targets stressing every solve path: far below/above range, at the
/// extremes, exactly on table entries, and spread through the interior.
fn targets_for(rng: &mut Rng, speedups: &[f64]) -> Vec<f64> {
    let lo = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut targets = vec![lo * 0.5, lo, hi, hi * 1.5];
    for _ in 0..6 {
        targets.push(lo + rng.gen_range(0.0..1.0) * (hi - lo));
    }
    // Exact table entries (single-configuration optima).
    targets.push(speedups[rng.gen_range_usize(0..speedups.len())]);
    targets
}

/// The hull solver and the brute-force pair search are the same
/// function: same solvability, same energy (±1e-9 J), same delivered
/// speedup, on >1000 random tables across all four shapes.
#[test]
fn hull_matches_two_point_exhaustively() {
    const TABLES_PER_SHAPE: usize = 300; // 4 shapes × 300 = 1200 tables
    let period = 2.0;
    let mut rng = Rng::seed_from_u64(0x19_0007);
    let mut solved = 0usize;
    for shape in [
        Shape::Sorted,
        Shape::Unsorted,
        Shape::Plateaued,
        Shape::Single,
    ] {
        for case in 0..TABLES_PER_SHAPE {
            let (speedups, powers) = random_table(&mut rng, shape);
            let hull =
                HullSolver::new(&speedups, &powers).expect("finite tables always build a hull");
            for target in targets_for(&mut rng, &speedups) {
                let fast = hull.solve(target, period);
                let oracle = two_point::optimize(&speedups, &powers, target, period);
                match (fast, oracle) {
                    (Some(a), Some(b)) => {
                        assert!(
                            (a.energy_j - b.energy_j).abs() < 1e-9,
                            "{shape:?} case {case} target {target}: \
                             hull energy {} vs oracle {}",
                            a.energy_j,
                            b.energy_j
                        );
                        let sa = a.expected_speedup(&speedups);
                        let sb = b.expected_speedup(&speedups);
                        assert!(
                            (sa - sb).abs() < 1e-9,
                            "{shape:?} case {case} target {target}: \
                             hull speedup {sa} vs oracle {sb}"
                        );
                        assert!(a.tau_lower >= -1e-12 && a.tau_upper >= -1e-12);
                        assert!((a.tau_lower + a.tau_upper - period).abs() < 1e-9);
                        solved += 1;
                    }
                    (None, None) => {}
                    (a, b) => panic!(
                        "{shape:?} case {case} target {target}: \
                         solvability disagrees (hull {a:?}, oracle {b:?})"
                    ),
                }
            }
        }
    }
    assert!(solved > 10_000, "only {solved} solves exercised");
}
