//! # asgov-linprog — linear programming for the energy optimizer
//!
//! The paper's energy optimizer (Eqns. 4–7) is the linear program
//!
//! ```text
//! min   uᵀ · ℙ                    (energy over the next cycle)
//! s.t.  𝕊ᵀ · u = s_n · T          (performance constraint)
//!       𝟙ᵀ · u = T                (time fills the cycle exactly)
//!       0 ≼ u ≼ T
//! ```
//!
//! whose optimum provably uses **at most two** system configurations
//! `c_l, c_h` bracketing the required speedup. This crate provides:
//!
//! - [`hull`] — the production solver: precompute the lower convex
//!   envelope of the (speedup, power) points once (`O(N log N)`), then
//!   answer every per-tick solve with a binary search + one
//!   interpolation (`O(log N)`),
//! - [`two_point`] — the specialized `O(N²)` pair-search solver the
//!   paper's controller runs online (kept as the brute-force oracle the
//!   hull solver is differentially tested against),
//! - [`simplex`] — a general dense two-phase simplex solver (the
//!   substrate; also used to *verify* the specialized solvers in tests),
//! - [`gradient`] — a CoScale-style greedy local search (paper §VI's
//!   point of comparison), provided to quantify why the paper prefers
//!   the exact LP.
//!
//! # Example
//!
//! ```
//! use asgov_linprog::two_point::{optimize, Schedule};
//!
//! let speedups = [1.0, 1.8, 2.5];
//! let powers = [1.6, 2.2, 3.1];
//! let sched = optimize(&speedups, &powers, 2.0, 2.0).unwrap();
//! // Bracket the target speedup 2.0 between configs 1 (s=1.8) and 2 (s=2.5).
//! assert_eq!((sched.lower, sched.upper), (1, 2));
//! let achieved = (sched.tau_lower * 1.8 + sched.tau_upper * 2.5) / 2.0;
//! assert!((achieved - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gradient;
pub mod hull;
pub mod simplex;
pub mod two_point;

pub use gradient::descend;
pub use hull::HullSolver;
pub use simplex::{solve, LpError, LpSolution};
pub use two_point::{optimize, Schedule};
