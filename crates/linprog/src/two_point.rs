//! The specialized two-configuration energy optimizer (paper Fig. 3).
//!
//! The LP of Eqns. 4–7 has two equality constraints, so its basic optimal
//! solutions have at most two nonzero `τ` values: the optimizer picks at
//! most two configurations `c_l, c_h` with `𝕊(l) ≤ s_n < 𝕊(h)` and time
//! shares `τ_l + τ_h = T`. This module implements the `O(N²)` pair
//! search the paper's controller runs online (N ≤ a few hundred, so this
//! is microseconds — see `asgov-bench`).

/// The optimizer's output: run configuration `lower` for `tau_lower`
/// seconds, then configuration `upper` for `tau_upper` seconds.
///
/// `lower == upper` (with `tau_upper == 0`) when a single configuration
/// meets the target exactly or the target is outside the achievable
/// speedup range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Index of the configuration with speedup ≤ target.
    pub lower: usize,
    /// Index of the configuration with speedup ≥ target.
    pub upper: usize,
    /// Time to spend in `lower`, seconds.
    pub tau_lower: f64,
    /// Time to spend in `upper`, seconds.
    pub tau_upper: f64,
    /// Expected energy over the cycle, joules (`τ_l·P_l + τ_h·P_h`).
    pub energy_j: f64,
}

impl Schedule {
    /// Expected average speedup delivered by this schedule.
    pub fn expected_speedup(&self, speedups: &[f64]) -> f64 {
        let total = self.tau_lower + self.tau_upper;
        if total <= 0.0 {
            return 0.0;
        }
        // asgov-analyze: allow(hot-path-transitive): lower/upper were produced by the solver as indices into this same speedup table; a schedule is only meaningful against the table that built it
        (self.tau_lower * speedups[self.lower] + self.tau_upper * speedups[self.upper]) / total
    }
}

/// Find the minimum-energy schedule delivering average speedup
/// `target_speedup` over a control cycle of `period_s` seconds.
///
/// `speedups[i]` and `powers[i]` are the profiled speedup and average
/// power of configuration `i` (paper Table I). Returns `None` when the
/// inputs are empty, have mismatched lengths, or contain non-finite or
/// non-positive periods.
///
/// Targets below the lowest achievable speedup clamp to the
/// minimum-power configuration among those with the lowest speedup;
/// targets above the highest clamp to the maximum-speedup configuration
/// (minimum power among near-ties) — matching the regulator's clamping.
///
/// Profiled speedups carry measurement noise, so configurations whose
/// speedups differ by less than `PLATEAU_TOL` (0.5 % relative) are
/// treated as performance-equivalent when clamping at the extremes:
/// among them, the cheapest one wins. Without this, a saturated
/// application (GIPS flat across most of the table) would be parked on
/// whichever config happened to measure epsilon-fastest — often a
/// needlessly expensive one.
pub fn optimize(
    speedups: &[f64],
    powers: &[f64],
    target_speedup: f64,
    period_s: f64,
) -> Option<Schedule> {
    let n = speedups.len();
    if n == 0
        || powers.len() != n
        || !period_s.is_finite()
        || period_s <= 0.0
        || !target_speedup.is_finite()
        || speedups.iter().chain(powers.iter()).any(|v| !v.is_finite())
    {
        return None;
    }

    // Clamp out-of-range targets to a single configuration, treating
    // near-equal speedups as a plateau and picking the cheapest member.
    // (Shared with `hull::HullSolver` so both solvers clamp identically.)
    if let Some(sched) = clamp_extremes(speedups, powers, target_speedup, period_s) {
        return Some(sched);
    }

    // O(N²) pair search. For each bracketing pair compute the unique
    // time split and its energy; keep the cheapest.
    let mut best: Option<Schedule> = None;
    for l in 0..n {
        // asgov-analyze: allow(hot-path-transitive): l and h range over 0..n with n == speedups.len() == powers.len(), checked at entry
        if speedups[l] > target_speedup {
            continue;
        }
        for h in 0..n {
            if speedups[h] < target_speedup || h == l {
                continue;
            }
            let span = speedups[h] - speedups[l];
            if span <= 0.0 {
                continue;
            }
            let tau_h = period_s * (target_speedup - speedups[l]) / span;
            let tau_l = period_s - tau_h;
            let energy = tau_l * powers[l] + tau_h * powers[h];
            if best.as_ref().is_none_or(|b| energy < b.energy_j) {
                best = Some(Schedule {
                    lower: l,
                    upper: h,
                    tau_lower: tau_l,
                    tau_upper: tau_h,
                    energy_j: energy,
                });
            }
        }
    }
    // An exact-match configuration may beat every strict pair.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if (speedups[i] - target_speedup).abs() < 1e-12 {
            let cand = single(i, powers, period_s);
            if best.as_ref().is_none_or(|b| cand.energy_j <= b.energy_j) {
                best = Some(cand);
            }
        }
    }
    best
}

/// Relative speedup tolerance below which two configurations count as
/// performance-equivalent at the extremes of the table.
pub const PLATEAU_TOL: f64 = 0.005;

pub(crate) fn single(i: usize, powers: &[f64], period_s: f64) -> Schedule {
    Schedule {
        lower: i,
        upper: i,
        tau_lower: period_s,
        tau_upper: 0.0,
        // asgov-analyze: allow(hot-path-transitive): every caller passes an index it derived from 0..powers.len()
        energy_j: period_s * powers[i],
    }
}

/// The cheapest configuration inside the low-speedup plateau (speedups
/// within `PLATEAU_TOL` of the minimum).
pub(crate) fn cheapest_low_plateau(speedups: &[f64], powers: &[f64], min_i: usize) -> usize {
    // asgov-analyze: allow(hot-path-transitive): min_i comes from extreme_speedup_indices over this table; filter indices range over 0..len of the same validated equal-length slices
    let cutoff = speedups[min_i] * (1.0 + PLATEAU_TOL);
    (0..speedups.len())
        .filter(|&i| speedups[i] <= cutoff)
        .min_by(|&a, &b| powers[a].total_cmp(&powers[b]))
        .unwrap_or(min_i)
}

/// The cheapest configuration inside the high-speedup plateau (speedups
/// within `PLATEAU_TOL` of the maximum).
pub(crate) fn cheapest_high_plateau(speedups: &[f64], powers: &[f64], max_i: usize) -> usize {
    // asgov-analyze: allow(hot-path-transitive): max_i comes from extreme_speedup_indices over this table; filter indices range over 0..len of the same validated equal-length slices
    let cutoff = speedups[max_i] * (1.0 - PLATEAU_TOL);
    (0..speedups.len())
        .filter(|&i| speedups[i] >= cutoff)
        .min_by(|&a, &b| powers[a].total_cmp(&powers[b]))
        .unwrap_or(max_i)
}

/// Out-of-range targets clamp to a single plateau configuration; an
/// interior target returns `None` and must go to a pair search. Both
/// the brute-force and the hull solver route through this so their
/// clamping is bit-identical.
pub(crate) fn clamp_extremes(
    speedups: &[f64],
    powers: &[f64],
    target_speedup: f64,
    period_s: f64,
) -> Option<Schedule> {
    let (min_i, max_i) = extreme_speedup_indices(speedups, powers);
    // asgov-analyze: allow(hot-path-transitive): min_i/max_i are 0 or loop indices over 0..len; both public entry points (optimize, HullSolver::new) reject empty or mismatched tables before calling
    if target_speedup <= speedups[min_i] * (1.0 + PLATEAU_TOL) {
        let cheapest = cheapest_low_plateau(speedups, powers, min_i);
        // Only clamp if the target really is at/below the bottom band —
        // a target in the interior must go to the pair search.
        if target_speedup <= speedups[cheapest].max(speedups[min_i]) {
            return Some(single(cheapest, powers, period_s));
        }
    }
    if target_speedup >= speedups[max_i] * (1.0 - PLATEAU_TOL) {
        let cheapest = cheapest_high_plateau(speedups, powers, max_i);
        return Some(single(cheapest, powers, period_s));
    }
    None
}

/// Indices of the lowest- and highest-speedup configurations, breaking
/// ties by lower power.
pub(crate) fn extreme_speedup_indices(speedups: &[f64], powers: &[f64]) -> (usize, usize) {
    let mut min_i = 0;
    let mut max_i = 0;
    for i in 1..speedups.len() {
        // asgov-analyze: allow(hot-path-transitive): i ranges over 1..len, min_i/max_i over previously visited indices; powers.len() == speedups.len() is checked by every entry point
        if speedups[i] < speedups[min_i]
            || (speedups[i] == speedups[min_i] && powers[i] < powers[min_i])
        {
            min_i = i;
        }
        if speedups[i] > speedups[max_i]
            || (speedups[i] == speedups[max_i] && powers[i] < powers[max_i])
        {
            max_i = i;
        }
    }
    (min_i, max_i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: f64 = 2.0;

    #[test]
    fn brackets_the_target() {
        let s = [1.0, 1.5, 2.0, 3.0];
        let p = [1.0, 1.4, 2.0, 3.5];
        let sched = optimize(&s, &p, 1.75, T).unwrap();
        assert!(s[sched.lower] <= 1.75 && s[sched.upper] >= 1.75);
        assert!((sched.tau_lower + sched.tau_upper - T).abs() < 1e-12);
        assert!((sched.expected_speedup(&s) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn picks_cheapest_bracket_not_nearest() {
        // Config 1 is power-inefficient; mixing 0 and 2 is cheaper than
        // any schedule through 1.
        let s = [1.0, 1.5, 2.0];
        let p = [1.0, 5.0, 2.0];
        let sched = optimize(&s, &p, 1.5, T).unwrap();
        assert_eq!((sched.lower, sched.upper), (0, 2));
        // energy = 1·1.0 + 1·2.0 = 3.0 < 2·5.0.
        assert!((sched.energy_j - 3.0).abs() < 1e-9);
    }

    #[test]
    fn exact_match_uses_single_config() {
        let s = [1.0, 2.0, 3.0];
        let p = [1.0, 1.5, 4.0];
        let sched = optimize(&s, &p, 2.0, T).unwrap();
        assert_eq!(sched.lower, sched.upper);
        assert_eq!(sched.lower, 1);
        assert!((sched.energy_j - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_below_and_above_range() {
        let s = [1.0, 2.0];
        let p = [1.0, 2.0];
        let below = optimize(&s, &p, 0.5, T).unwrap();
        assert_eq!((below.lower, below.upper), (0, 0));
        let above = optimize(&s, &p, 9.0, T).unwrap();
        assert_eq!((above.lower, above.upper), (1, 1));
        assert!((above.energy_j - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(optimize(&[], &[], 1.0, T).is_none());
        assert!(optimize(&[1.0], &[1.0, 2.0], 1.0, T).is_none());
        assert!(optimize(&[1.0], &[1.0], 1.0, 0.0).is_none());
        assert!(optimize(&[1.0], &[1.0], 1.0, -1.0).is_none());
        assert!(optimize(&[f64::NAN], &[1.0], 1.0, T).is_none());
        assert!(optimize(&[1.0], &[1.0], f64::INFINITY, T).is_none());
    }

    #[test]
    fn unsorted_tables_are_fine() {
        let s = [3.0, 1.0, 2.0];
        let p = [4.0, 1.0, 2.0];
        let sched = optimize(&s, &p, 1.5, T).unwrap();
        assert!((sched.expected_speedup(&s) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn matches_simplex_on_a_real_shape() {
        // Cross-check against the general solver.
        let s = [1.0, 1.3, 1.9, 2.4, 3.1, 3.8];
        let p = [1.5, 1.7, 2.4, 2.9, 3.8, 5.0];
        let target = 2.0;
        let sched = optimize(&s, &p, target, T).unwrap();

        let a = vec![s.to_vec(), vec![1.0; s.len()]];
        let b = vec![target * T, T];
        let lp = crate::simplex::solve(&a, &b, &p).unwrap();
        assert!(
            (sched.energy_j - lp.objective).abs() < 1e-6,
            "two-point {} vs simplex {}",
            sched.energy_j,
            lp.objective
        );
    }
}
