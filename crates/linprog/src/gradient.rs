//! CoScale-style gradient-descent configuration search.
//!
//! The paper's §VI compares against CoScale (Deng et al., MICRO'12),
//! which coordinates CPU and memory DVFS on servers using a
//! *gradient-descent heuristic* instead of a linear program. This module
//! implements that search style over the same profile vectors, so the
//! repository can quantify the paper's claim that LP-based selection is
//! preferable: the heuristic returns a *single* configuration (no
//! two-point time-mixing) and can stop in a local minimum of the
//! energy/performance trade-off.

use crate::two_point::Schedule;

/// Greedy local search: starting from `start`, repeatedly move to the
/// neighbouring index (±1 in the table order) that reduces power while
/// still meeting `target_speedup`; if the target is unmet, move toward
/// more speedup. Terminates at a local optimum.
///
/// The table should be sorted by increasing speedup for the neighbour
/// structure to be meaningful (the profiler emits tables in
/// configuration order, which is speedup-monotone per frequency column;
/// sort first if you need the global structure).
///
/// Returns `None` on malformed input (mismatched lengths, empty table,
/// out-of-range start, non-finite values).
pub fn descend(
    speedups: &[f64],
    powers: &[f64],
    target_speedup: f64,
    period_s: f64,
    start: usize,
) -> Option<Schedule> {
    let n = speedups.len();
    if n == 0
        || powers.len() != n
        || start >= n
        || !period_s.is_finite()
        || period_s <= 0.0
        || !target_speedup.is_finite()
        || speedups.iter().chain(powers.iter()).any(|v| !v.is_finite())
    {
        return None;
    }

    let mut cur = start;
    // Bounded iterations: each accepted move strictly improves either
    // feasibility or power, so n² is a generous cap.
    for _ in 0..n * n {
        // asgov-analyze: allow(hot-path-transitive): cur starts inside 0..n (validated at entry) and only moves via checked_sub / (cur + 1 < n) neighbors
        let feasible = speedups[cur] >= target_speedup;
        let mut best = cur;
        for cand in [cur.checked_sub(1), (cur + 1 < n).then_some(cur + 1)]
            .into_iter()
            .flatten()
        {
            if feasible {
                // Keep feasibility, reduce power.
                if speedups[cand] >= target_speedup && powers[cand] < powers[best] {
                    best = cand;
                }
            } else {
                // Climb toward feasibility.
                if speedups[cand] > speedups[best] {
                    best = cand;
                }
            }
        }
        if best == cur {
            break;
        }
        cur = best;
    }

    Some(Schedule {
        lower: cur,
        upper: cur,
        tau_lower: period_s,
        tau_upper: 0.0,
        energy_j: period_s * powers[cur],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_point;

    /// A smooth convex table: the heuristic finds the same *config* as
    /// the LP's bracketing pair but cannot time-mix, so it pays extra.
    #[test]
    fn single_config_answer_costs_at_least_the_lp() {
        let speedups: Vec<f64> = (0..20).map(|i| 1.0 + 0.15 * i as f64).collect();
        let powers: Vec<f64> = (0..20).map(|i| 1.0 + 0.02 * (i * i) as f64).collect();
        let target = 2.05;
        let gd = descend(&speedups, &powers, target, 2.0, 10).unwrap();
        let lp = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        assert!(speedups[gd.lower] >= target, "heuristic must be feasible");
        assert!(
            gd.energy_j >= lp.energy_j - 1e-9,
            "gradient descent ({}) cannot beat the LP ({})",
            gd.energy_j,
            lp.energy_j
        );
    }

    /// On a non-convex power curve the heuristic can strand in a local
    /// minimum that the exhaustive LP search avoids.
    #[test]
    fn local_minimum_trap() {
        // Speedups rise monotonically; power has a plateau the greedy
        // walk cannot cross, while the cheap global optimum sits at the
        // far end (index 6).
        let speedups = [1.0, 1.5, 2.0, 2.1, 2.2, 2.3, 2.4];
        let powers = [3.0, 2.5, 4.5, 4.0, 4.0, 4.0, 1.5];
        let target = 1.9;
        let gd = descend(&speedups, &powers, target, 2.0, 0).unwrap();
        assert_eq!(gd.lower, 3, "greedy walk strands on the plateau");
        let lp = two_point::optimize(&speedups, &powers, target, 2.0).unwrap();
        assert!(
            lp.energy_j < gd.energy_j,
            "LP ({}) escapes the trap GD ({}) is stuck in",
            lp.energy_j,
            gd.energy_j
        );
    }

    #[test]
    fn unreachable_target_climbs_to_the_top() {
        let speedups = [1.0, 2.0, 3.0];
        let powers = [1.0, 2.0, 3.0];
        let gd = descend(&speedups, &powers, 99.0, 2.0, 0).unwrap();
        assert_eq!(gd.lower, 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(descend(&[], &[], 1.0, 2.0, 0).is_none());
        assert!(descend(&[1.0], &[1.0, 2.0], 1.0, 2.0, 0).is_none());
        assert!(descend(&[1.0], &[1.0], 1.0, 2.0, 5).is_none());
        assert!(descend(&[1.0], &[1.0], 1.0, 0.0, 0).is_none());
        assert!(descend(&[f64::NAN], &[1.0], 1.0, 2.0, 0).is_none());
    }

    #[test]
    fn start_point_matters() {
        // Two feasible basins; different starts, different answers.
        let speedups = [2.0, 2.1, 2.2, 2.3, 2.4, 2.5];
        let powers = [1.0, 3.0, 3.0, 3.0, 3.0, 1.2];
        let from_left = descend(&speedups, &powers, 1.5, 2.0, 0).unwrap();
        let from_right = descend(&speedups, &powers, 1.5, 2.0, 5).unwrap();
        assert_eq!(from_left.lower, 0);
        assert_eq!(from_right.lower, 5);
    }
}
