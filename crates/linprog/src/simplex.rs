//! Dense two-phase simplex solver for small linear programs.
//!
//! Solves the standard-form problem
//!
//! ```text
//! min  cᵀx   s.t.  A·x = b,  x ≥ 0
//! ```
//!
//! with Bland's anti-cycling pivot rule. Designed for the optimizer's
//! problem sizes (a handful of constraints, tens of variables); clarity
//! over asymptotics.

use std::error::Error;
use std::fmt;

/// Failure modes of [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Dimensions of `a`, `b`, `c` are inconsistent or empty.
    BadShape(String),
    /// No feasible point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::BadShape(why) => write!(f, "malformed linear program: {why}"),
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
        }
    }
}

impl Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
}

const EPS: f64 = 1e-9;

/// Solve `min cᵀx s.t. A·x = b, x ≥ 0` by two-phase simplex.
///
/// `a` is row-major with `b.len()` rows of `c.len()` columns.
///
/// # Errors
///
/// Returns [`LpError::BadShape`] on dimension mismatch,
/// [`LpError::Infeasible`] or [`LpError::Unbounded`] as appropriate.
// Indexed loops keep the tableau arithmetic legible; iterator forms of
// these row operations obscure which column is being priced.
#[allow(clippy::needless_range_loop, clippy::manual_memcpy)]
pub fn solve(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> Result<LpSolution, LpError> {
    let m = b.len();
    let n = c.len();
    if m == 0 || n == 0 {
        return Err(LpError::BadShape("empty constraint or variable set".into()));
    }
    if a.len() != m || a.iter().any(|row| row.len() != n) {
        return Err(LpError::BadShape(format!(
            "A must be {m}×{n} to match b and c"
        )));
    }

    // Normalize rows so b ≥ 0.
    let mut a: Vec<Vec<f64>> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    for i in 0..m {
        if b[i] < 0.0 {
            b[i] = -b[i];
            for v in &mut a[i] {
                *v = -*v;
            }
        }
    }

    // Phase 1 tableau: variables x (n) + artificials (m).
    // tableau rows: m constraint rows + 1 objective row.
    // columns: n + m variables + 1 rhs.
    let cols = n + m + 1;
    let mut t = vec![vec![0.0; cols]; m + 1];
    for i in 0..m {
        t[i][..n].copy_from_slice(&a[i]);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = b[i];
    }
    // Phase-1 objective: minimize sum of artificials. Express objective
    // row in terms of non-basic variables (reduced costs).
    for j in 0..cols {
        let s: f64 = (0..m).map(|i| t[i][j]).sum();
        t[m][j] = -s;
    }
    for i in 0..m {
        t[m][n + i] = 0.0;
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    run_simplex(&mut t, &mut basis, n + m)?;

    let phase1_obj = -t[m][cols - 1];
    if phase1_obj > 1e-7 {
        return Err(LpError::Infeasible);
    }

    // Drive any artificial variables out of the basis (degenerate case).
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut basis, i, j);
            }
            // If no pivot column exists the row is all-zero: redundant
            // constraint, harmless to leave.
        }
    }

    // Phase 2: replace objective row with real costs (reduced form).
    for j in 0..cols {
        t[m][j] = 0.0;
    }
    for j in 0..n {
        t[m][j] = c[j];
    }
    // Subtract c_B * rows to express in reduced costs.
    for i in 0..m {
        if basis[i] < n {
            let cb = c[basis[i]];
            // asgov-analyze: allow(float-eq): exact-zero skip of a no-op row update, not a tolerance comparison
            if cb != 0.0 {
                for j in 0..cols {
                    t[m][j] -= cb * t[i][j];
                }
            }
        }
    }

    run_simplex(&mut t, &mut basis, n)?; // artificials excluded from pricing

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][cols - 1];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(LpSolution { x, objective })
}

/// Run simplex iterations on the tableau until optimal. `price_cols`
/// limits which columns may enter the basis (used to exclude
/// artificials in phase 2). Uses Bland's rule.
#[allow(clippy::needless_range_loop)]
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], price_cols: usize) -> Result<(), LpError> {
    let m = basis.len();
    let cols = t[0].len();
    let max_iters = 10_000;
    for _ in 0..max_iters {
        // Entering variable: first column with negative reduced cost.
        let Some(enter) = (0..price_cols).find(|&j| t[m][j] < -EPS) else {
            return Ok(());
        };
        // Leaving variable: min-ratio test, Bland tie-break on basis idx.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot_slice(t, basis, leave, enter);
    }
    Err(LpError::Unbounded) // cycling failsafe; unreachable with Bland
}

fn pivot(t: &mut Vec<Vec<f64>>, basis: &mut Vec<usize>, row: usize, col: usize) {
    pivot_slice(t.as_mut_slice(), basis.as_mut_slice(), row, col);
}

#[allow(clippy::needless_range_loop)]
fn pivot_slice(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let cols = t[0].len();
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS);
    for j in 0..cols {
        t[row][j] /= piv;
    }
    for i in 0..t.len() {
        if i != row && t[i][col].abs() > EPS {
            let factor = t[i][col];
            for j in 0..cols {
                t[i][j] -= factor * t[row][j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn solves_trivial_equality() {
        // min x0 + 2 x1  s.t.  x0 + x1 = 1  → x = (1, 0), obj 1.
        let sol = solve(&[vec![1.0, 1.0]], &[1.0], &[1.0, 2.0]).unwrap();
        assert_close(sol.objective, 1.0);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn solves_the_papers_optimizer_shape() {
        // Two constraints: Σ s_i u_i = s·T and Σ u_i = T.
        let speedups = [1.0, 2.0, 4.0];
        let powers = [1.0, 3.0, 5.0];
        let (s_target, t_period) = (3.0, 2.0);
        let a = vec![speedups.to_vec(), vec![1.0; 3]];
        let b = vec![s_target * t_period, t_period];
        let sol = solve(&a, &b, &powers).unwrap();
        // Optimal: mix configs 1 (s=2) and 2 (s=4) equally (τ=1 each):
        // energy = 3 + 5 = 8. Mixing 0 and 2 gives (2/3)·1+(4/3)·5 = 7.33
        // which is cheaper! Check the solver finds the true optimum.
        assert!(sol.objective <= 7.34);
        let perf: f64 = sol.x.iter().zip(&speedups).map(|(u, s)| u * s).sum();
        assert_close(perf, s_target * t_period);
        let time: f64 = sol.x.iter().sum();
        assert_close(time, t_period);
    }

    #[test]
    fn infeasible_detected() {
        // x0 = 1 and x0 = 2 simultaneously.
        let err = solve(&[vec![1.0], vec![1.0]], &[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x0 = -1 → x0 = 1.
        let sol = solve(&[vec![-1.0]], &[-1.0], &[1.0]).unwrap();
        assert_close(sol.x[0], 1.0);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert!(matches!(solve(&[], &[], &[1.0]), Err(LpError::BadShape(_))));
        assert!(matches!(
            solve(&[vec![1.0, 2.0]], &[1.0], &[1.0]),
            Err(LpError::BadShape(_))
        ));
    }

    #[test]
    fn at_most_two_nonzeros_for_two_constraints() {
        // Basic optimal solutions of an LP with 2 equality constraints
        // have ≤ 2 nonzero variables — the theorem behind the paper's
        // two-configuration schedule.
        let speedups = [1.0, 1.3, 1.9, 2.4, 3.1, 3.8];
        let powers = [1.5, 1.7, 2.4, 2.9, 3.8, 5.0];
        let a = vec![speedups.to_vec(), vec![1.0; 6]];
        let b = vec![2.0 * 2.0, 2.0];
        let sol = solve(&a, &b, &powers).unwrap();
        let nonzero = sol.x.iter().filter(|&&v| v > 1e-7).count();
        assert!(nonzero <= 2, "basic solution has {nonzero} nonzeros");
    }
}
