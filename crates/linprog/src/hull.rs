//! Convex-hull energy optimizer: `O(log N)` per solve.
//!
//! The brute-force [`two_point::optimize`] pair search is `O(N²)` per
//! control tick. But the minimum-energy two-configuration schedule for
//! a target speedup `s` is exactly the **lower convex envelope** of the
//! (speedup, power) point set evaluated at `s`: any chord through two
//! configurations bracketing `s` is a candidate schedule, and the
//! cheapest chord at `s` is, by definition, the envelope. Configurations
//! strictly above the envelope can never appear in an optimal schedule.
//!
//! [`HullSolver`] therefore precomputes the envelope once — `O(N log N)`
//! (sort + Andrew monotone chain) — and answers each solve with a
//! binary search over the hull vertices plus one interpolation:
//! `O(log H)` for `H ≤ N` hull vertices. For the paper's N = 234
//! configuration table this turns tens of thousands of pair evaluations
//! into ~8 comparisons (see `BENCH_optimizer.json`).
//!
//! Out-of-range targets clamp through the *same* plateau logic as the
//! brute-force solver (`two_point::clamp_extremes`), so the two paths
//! are differentially tested to produce equal energy on every table
//! (`tests/hull_differential.rs`).

use crate::two_point::{self, Schedule, PLATEAU_TOL};

/// Precomputed lower convex envelope of a (speedup, power) table.
///
/// Build once per profile table with [`HullSolver::new`], then call
/// [`HullSolver::solve`] every control tick.
///
/// # Example
///
/// ```
/// use asgov_linprog::hull::HullSolver;
/// use asgov_linprog::two_point;
///
/// let speedups = [1.0, 1.8, 2.0, 2.5];
/// let powers = [1.6, 2.2, 3.5, 3.1]; // config 2 is dominated
/// let hull = HullSolver::new(&speedups, &powers).unwrap();
/// let fast = hull.solve(2.0, 2.0).unwrap();
/// let brute = two_point::optimize(&speedups, &powers, 2.0, 2.0).unwrap();
/// assert!((fast.energy_j - brute.energy_j).abs() < 1e-12);
/// // The dominated config is never scheduled.
/// assert_ne!(fast.lower, 2);
/// assert_ne!(fast.upper, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HullSolver {
    /// Hull vertex speedups, strictly ascending.
    xs: Vec<f64>,
    /// Hull vertex powers.
    ys: Vec<f64>,
    /// Original configuration index of each hull vertex.
    idx: Vec<usize>,
    /// Lowest/highest speedup in the *full* table (clamp thresholds).
    s_min: f64,
    s_max: f64,
    /// Clamp targets: cheapest members of the low/high plateaus, with
    /// their speedup/power (identical selection to the brute force).
    low_i: usize,
    low_s: f64,
    low_p: f64,
    high_i: usize,
    high_p: f64,
}

impl HullSolver {
    /// Build the lower convex envelope of `(speedups[i], powers[i])`.
    /// `O(N log N)`. Returns `None` when the inputs are empty,
    /// mismatched, or contain non-finite values — the same rejections
    /// as [`two_point::optimize`].
    pub fn new(speedups: &[f64], powers: &[f64]) -> Option<Self> {
        let n = speedups.len();
        if n == 0
            || powers.len() != n
            || speedups.iter().chain(powers.iter()).any(|v| !v.is_finite())
        {
            return None;
        }

        // Clamp precomputation, shared with the brute-force path.
        let (min_i, max_i) = two_point::extreme_speedup_indices(speedups, powers);
        let low_i = two_point::cheapest_low_plateau(speedups, powers, min_i);
        let high_i = two_point::cheapest_high_plateau(speedups, powers, max_i);

        // Sort configuration indices by (speedup, power, index); for
        // duplicate speedups only the cheapest can be on the envelope.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            // asgov-analyze: allow(hot-path-transitive): comparator indices come from (0..n).collect() where n == speedups.len() == powers.len(), checked at entry
            speedups[a]
                .total_cmp(&speedups[b])
                .then(powers[a].total_cmp(&powers[b]))
                .then(a.cmp(&b))
        });

        // Andrew monotone chain, lower hull. `cross ≤ 0` also drops
        // collinear interior vertices — the envelope is unchanged.
        let mut stack: Vec<usize> = Vec::with_capacity(n);
        for &i in &order {
            if let Some(&last) = stack.last() {
                if speedups[i] == speedups[last] {
                    continue; // same speedup, equal or higher power
                }
            }
            while stack.len() >= 2 {
                let a = stack[stack.len() - 2];
                let b = stack[stack.len() - 1];
                let cross = (speedups[b] - speedups[a]) * (powers[i] - powers[a])
                    - (powers[b] - powers[a]) * (speedups[i] - speedups[a]);
                if cross <= 0.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(i);
        }

        Some(Self {
            xs: stack.iter().map(|&i| speedups[i]).collect(),
            ys: stack.iter().map(|&i| powers[i]).collect(),
            idx: stack,
            s_min: speedups[min_i],
            s_max: speedups[max_i],
            low_i,
            low_s: speedups[low_i],
            low_p: powers[low_i],
            high_i,
            high_p: powers[high_i],
        })
    }

    /// Number of envelope vertices (`H ≤ N`).
    pub fn num_vertices(&self) -> usize {
        self.idx.len()
    }

    /// Original configuration indices of the envelope vertices, in
    /// ascending speedup order.
    pub fn vertices(&self) -> &[usize] {
        &self.idx
    }

    /// Minimum-energy schedule delivering `target_speedup` over
    /// `period_s` seconds: `O(log H)`. Energy-equal to
    /// [`two_point::optimize`] on every
    /// input (differentially tested); `None` only for non-finite or
    /// non-positive `target_speedup`/`period_s`.
    pub fn solve(&self, target_speedup: f64, period_s: f64) -> Option<Schedule> {
        if !period_s.is_finite() || period_s <= 0.0 || !target_speedup.is_finite() {
            return None;
        }

        // Plateau clamping, in the same order as the brute force: low
        // band first (with the interior fall-through), then high band.
        if target_speedup <= self.s_min * (1.0 + PLATEAU_TOL)
            && target_speedup <= self.low_s.max(self.s_min)
        {
            return Some(single(self.low_i, self.low_p, period_s));
        }
        if target_speedup >= self.s_max * (1.0 - PLATEAU_TOL) {
            return Some(single(self.high_i, self.high_p, period_s));
        }

        // Interior target: the envelope segment bracketing it is the
        // cheapest two-configuration schedule. `partition_point` gives
        // the first vertex with speedup > target. For physical
        // (positive-speedup) tables the clamps above guarantee
        // s_min < target < s_max; the guards below cover degenerate
        // non-positive-speedup tables, where the relative-tolerance
        // clamps can miss and the brute force finds no bracketing pair.
        let up = self.xs.partition_point(|&s| s <= target_speedup);
        if up == 0 {
            return None; // target below every configuration
        }
        if up == self.xs.len() && self.xs[up - 1] < target_speedup {
            return None; // target above every configuration
        }
        if self.xs.len() == 1 {
            // Lone vertex reachable only by exact match.
            return Some(single(self.idx[0], self.ys[0], period_s));
        }
        let (l, h) = if up == self.xs.len() {
            (up - 2, up - 1) // target == s_max: last segment, τ_l = 0
        } else {
            (up - 1, up)
        };
        let span = self.xs[h] - self.xs[l];
        let tau_upper = period_s * (target_speedup - self.xs[l]) / span;
        let tau_lower = period_s - tau_upper;
        Some(Schedule {
            lower: self.idx[l],
            upper: self.idx[h],
            tau_lower,
            tau_upper,
            energy_j: tau_lower * self.ys[l] + tau_upper * self.ys[h],
        })
    }
}

fn single(i: usize, power_w: f64, period_s: f64) -> Schedule {
    Schedule {
        lower: i,
        upper: i,
        tau_lower: period_s,
        tau_upper: 0.0,
        energy_j: period_s * power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_point::optimize;

    const T: f64 = 2.0;

    #[test]
    fn dominated_points_leave_the_envelope() {
        // Point 1 sits above the chord 0–2: it must not be a vertex.
        let s = [1.0, 2.0, 3.0];
        let p = [1.0, 3.0, 3.5];
        let hull = HullSolver::new(&s, &p).unwrap();
        assert_eq!(hull.vertices(), &[0, 2]);
        // And the solver mixes 0 and 2 straight across the gap.
        let sched = hull.solve(2.0, T).unwrap();
        assert_eq!((sched.lower, sched.upper), (0, 2));
        assert!((sched.energy_j - (1.0 + 3.5)).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_cost_the_same() {
        let s = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 3.0];
        let hull = HullSolver::new(&s, &p).unwrap();
        let sched = hull.solve(1.5, T).unwrap();
        let brute = optimize(&s, &p, 1.5, T).unwrap();
        assert!((sched.energy_j - brute.energy_j).abs() < 1e-12);
    }

    #[test]
    fn duplicate_speedups_keep_the_cheapest() {
        let s = [1.0, 1.0, 3.0];
        let p = [2.0, 1.0, 3.0];
        let hull = HullSolver::new(&s, &p).unwrap();
        // Vertex at speedup 1.0 must be config 1 (power 1.0).
        assert_eq!(hull.vertices()[0], 1);
    }

    #[test]
    fn matches_brute_force_on_fixed_tables() {
        let s = [1.0, 1.3, 1.9, 2.4, 3.1, 3.8];
        let p = [1.5, 1.7, 2.4, 2.9, 3.8, 5.0];
        let hull = HullSolver::new(&s, &p).unwrap();
        for k in 0..=40 {
            let target = 0.8 + k as f64 * 0.1; // sweeps below, through, above
            let a = hull.solve(target, T).unwrap();
            let b = optimize(&s, &p, target, T).unwrap();
            assert!(
                (a.energy_j - b.energy_j).abs() < 1e-9,
                "target {target}: hull {} vs brute {}",
                a.energy_j,
                b.energy_j
            );
            assert!(
                (a.expected_speedup(&s) - b.expected_speedup(&s)).abs() < 1e-9,
                "target {target}: speedups diverge"
            );
        }
    }

    #[test]
    fn clamps_identically_to_brute_force() {
        // A plateaued table: the last three configs are within 0.5 % in
        // speedup but differ in power — the clamp must pick the cheapest.
        let s = [1.0, 2.0, 3.000, 3.004, 3.008];
        let p = [1.0, 2.0, 4.0, 3.6, 3.8];
        let hull = HullSolver::new(&s, &p).unwrap();
        for target in [0.2, 0.999, 1.0, 3.0, 3.01, 99.0] {
            let a = hull.solve(target, T).unwrap();
            let b = optimize(&s, &p, target, T).unwrap();
            assert_eq!(
                (a.lower, a.upper),
                (b.lower, b.upper),
                "clamp indices diverge at target {target}"
            );
            assert!((a.energy_j - b.energy_j).abs() < 1e-12);
        }
    }

    #[test]
    fn single_entry_table() {
        let hull = HullSolver::new(&[1.5], &[2.0]).unwrap();
        for target in [0.1, 1.5, 9.0] {
            let sched = hull.solve(target, T).unwrap();
            assert_eq!((sched.lower, sched.upper), (0, 0));
            assert!((sched.energy_j - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(HullSolver::new(&[], &[]).is_none());
        assert!(HullSolver::new(&[1.0], &[1.0, 2.0]).is_none());
        assert!(HullSolver::new(&[f64::NAN], &[1.0]).is_none());
        let hull = HullSolver::new(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!(hull.solve(f64::NAN, T).is_none());
        assert!(hull.solve(1.5, 0.0).is_none());
        assert!(hull.solve(1.5, -1.0).is_none());
        assert!(hull.solve(f64::INFINITY, T).is_none());
    }

    #[test]
    fn envelope_is_convex_and_sorted() {
        let s = [2.0, 1.0, 3.5, 2.5, 1.5, 3.0];
        let p = [2.5, 1.0, 4.0, 2.6, 2.2, 3.9];
        let hull = HullSolver::new(&s, &p).unwrap();
        let xs: Vec<f64> = hull.vertices().iter().map(|&i| s[i]).collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "vertices not sorted");
        // Slopes are non-decreasing along a lower convex envelope.
        let ys: Vec<f64> = hull.vertices().iter().map(|&i| p[i]).collect();
        let slopes: Vec<f64> = xs
            .windows(2)
            .zip(ys.windows(2))
            .map(|(x, y)| (y[1] - y[0]) / (x[1] - x[0]))
            .collect();
        assert!(
            slopes.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "envelope not convex: {slopes:?}"
        );
    }
}
