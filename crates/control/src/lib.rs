//! # asgov-control — control-theory building blocks
//!
//! The substrate for the paper's online controller (Section III-B):
//!
//! - [`AdaptiveIntegrator`] — the adaptive-gain integral performance
//!   regulator `s_n = s_{n-1} + e_{n-1} / b_{n-1}` (paper Eqn. 3), whose
//!   gain adapts through the base-speed estimate `b`.
//! - [`KalmanFilter`] — the scalar Kalman filter that continuously
//!   estimates the application *base speed* `b_n` from measurements
//!   `y_n = s_{n-1} · b_n + v` (paper §III-B3, following POET).
//! - [`Ewma`] — exponentially-weighted moving average, used for signal
//!   smoothing by the baseline governors.
//! - [`PidController`] — a classical fixed-gain PID, provided as a
//!   comparison baseline for the adaptive integrator.
//! - [`PhaseDetector`] — a variance-based application phase-change
//!   detector (paper §V-B discusses rapidly varying phases as the hard
//!   case; this hook lets the controller re-seed its estimator).
//!
//! All types are plain `f64` state machines with no allocation, suitable
//! for per-control-cycle invocation at negligible overhead.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ewma;
mod integrator;
mod kalman;
mod phase;
mod pid;

pub use ewma::Ewma;
pub use integrator::AdaptiveIntegrator;
pub use kalman::{KalmanEstimate, KalmanFilter};
pub use phase::{PhaseDetector, PhaseEvent};
pub use pid::PidController;
