//! Application phase-change detection.
//!
//! Section V-B of the paper identifies applications with multiple,
//! rapidly varying phases (e.g. the MobileBench browser benchmark) as
//! the hard case for the controller, and points to phase monitoring
//! (Isci et al., MICRO'06) as a remedy. [`PhaseDetector`] is that
//! remedy's hook: it watches the performance signal with two windowed
//! means and flags a phase change when they diverge, letting the
//! controller re-seed its Kalman filter instead of slewing slowly.

/// Event emitted by the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseEvent {
    /// The signal is statistically consistent with the current phase.
    Stable,
    /// A phase change was detected; the payload is the new short-window
    /// mean, a good re-seed value for estimators.
    Changed(f64),
}

/// Two-window mean-shift phase detector.
///
/// Keeps a short window (recent behaviour) and a long window (current
/// phase) of the signal. When the short-window mean departs from the
/// long-window mean by more than `threshold` (relative), a
/// [`PhaseEvent::Changed`] is emitted and the long window is re-seeded.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDetector {
    short: Vec<f64>,
    long: Vec<f64>,
    short_len: usize,
    long_len: usize,
    threshold: f64,
}

impl PhaseDetector {
    /// Create a detector with window lengths `short_len < long_len` and
    /// relative mean-shift `threshold` (e.g. `0.25` for 25 %).
    ///
    /// # Panics
    ///
    /// Panics if `short_len` is zero, `short_len >= long_len`, or the
    /// threshold is not positive.
    pub fn new(short_len: usize, long_len: usize, threshold: f64) -> Self {
        assert!(short_len > 0, "short window must be non-empty");
        assert!(short_len < long_len, "short window must be shorter");
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            short: Vec::with_capacity(short_len),
            long: Vec::with_capacity(long_len),
            short_len,
            long_len,
            threshold,
        }
    }

    fn mean(values: &[f64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Push a sample of the performance signal; returns whether a phase
    /// change is detected at this sample.
    pub fn push(&mut self, sample: f64) -> PhaseEvent {
        push_window(&mut self.short, self.short_len, sample);
        push_window(&mut self.long, self.long_len, sample);
        if self.short.len() < self.short_len || self.long.len() < self.long_len {
            return PhaseEvent::Stable;
        }
        let short_mean = Self::mean(&self.short);
        let long_mean = Self::mean(&self.long);
        let scale = long_mean.abs().max(f64::EPSILON);
        if (short_mean - long_mean).abs() / scale > self.threshold {
            // Re-seed the long window with the new phase.
            self.long.clear();
            self.long.extend_from_slice(&self.short);
            PhaseEvent::Changed(short_mean)
        } else {
            PhaseEvent::Stable
        }
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.short.clear();
        self.long.clear();
    }
}

fn push_window(window: &mut Vec<f64>, cap: usize, sample: f64) {
    if window.len() == cap {
        window.remove(0);
    }
    window.push(sample);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_signal_never_fires() {
        let mut d = PhaseDetector::new(4, 16, 0.25);
        for i in 0..200 {
            let s = 1.0 + 0.01 * ((i % 3) as f64); // tiny jitter
            assert_eq!(d.push(s), PhaseEvent::Stable);
        }
    }

    #[test]
    fn detects_step_change() {
        let mut d = PhaseDetector::new(4, 16, 0.25);
        for _ in 0..32 {
            d.push(1.0);
        }
        let mut fired = None;
        for i in 0..16 {
            if let PhaseEvent::Changed(m) = d.push(2.0) {
                fired = Some((i, m));
                break;
            }
        }
        let (latency, mean) = fired.expect("step change must be detected");
        assert!(latency < 8, "detection latency {latency} too high");
        assert!(mean >= 1.5, "re-seed mean {mean} reflects the new phase");
    }

    #[test]
    fn quiet_after_reseed() {
        let mut d = PhaseDetector::new(4, 16, 0.25);
        for _ in 0..32 {
            d.push(1.0);
        }
        // Step, then let it settle.
        let mut changes = 0;
        for _ in 0..64 {
            if matches!(d.push(2.0), PhaseEvent::Changed(_)) {
                changes += 1;
            }
        }
        assert_eq!(changes, 1, "a single step yields a single event");
    }

    #[test]
    fn warmup_period_is_quiet() {
        let mut d = PhaseDetector::new(2, 8, 0.1);
        for i in 0..7 {
            assert_eq!(d.push(i as f64), PhaseEvent::Stable, "warm-up sample {i}");
        }
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn rejects_bad_windows() {
        let _ = PhaseDetector::new(8, 8, 0.1);
    }
}
