//! The adaptive-gain integral performance regulator (paper Eqn. 2–3).

/// Adaptive-gain integral controller.
///
/// At the end of every control cycle, given the target performance `r`
/// and the measured performance `y_n`, the regulator computes the
/// required *speedup* for the next cycle:
///
/// ```text
/// e_n = r − y_n                      (Eqn. 2)
/// s_n = s_{n−1} + e_{n−1} / b_{n−1}  (Eqn. 3)
/// ```
///
/// The gain `1 / b_{n−1}` adapts with the application's base speed
/// `b` (the speed at the lowest system configuration), which is
/// estimated online by a [`crate::KalmanFilter`]. Because `s` is a
/// speedup relative to the base speed, at equilibrium
/// `s · b = r` — the integrator drives the error to zero (see the
/// stability analysis in Almoosa et al., "A power capping controller
/// for multicore processors", ACC 2012).
///
/// The speedup is clamped to a configurable range (the speedups
/// available in the profile table) to prevent wind-up when the target
/// is unreachable.
///
/// # Example
///
/// ```
/// use asgov_control::AdaptiveIntegrator;
///
/// let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 10.0);
/// // Plant: y = s * b with b = 2.0; target r = 6.0 → s* = 3.0.
/// let (r, b) = (6.0, 2.0);
/// let mut s = reg.speedup();
/// for _ in 0..50 {
///     let y = s * b;
///     s = reg.step(r, y, b);
/// }
/// assert!((reg.speedup() - 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveIntegrator {
    speedup: f64,
    min_speedup: f64,
    max_speedup: f64,
    gain: f64,
    last_error: f64,
}

impl AdaptiveIntegrator {
    /// Create a regulator with initial speedup `initial` clamped into
    /// `[min_speedup, max_speedup]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_speedup > max_speedup` or `min_speedup <= 0`.
    pub fn new(initial: f64, min_speedup: f64, max_speedup: f64) -> Self {
        assert!(
            min_speedup <= max_speedup,
            "min_speedup must not exceed max_speedup"
        );
        assert!(min_speedup > 0.0, "speedups must be positive");
        Self {
            speedup: initial.clamp(min_speedup, max_speedup),
            min_speedup,
            max_speedup,
            gain: 1.0,
            last_error: 0.0,
        }
    }

    /// Scale the integration gain: `s_n = s_{n-1} + g·e_{n-1}/b_{n-1}`.
    /// `g = 1` (the default) is the paper's deadbeat update; `g < 1`
    /// trades convergence speed for noise immunity (closed-loop pole at
    /// `1 − g`).
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not in `(0, 1]`.
    pub fn with_gain(mut self, gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        self.gain = gain;
        self
    }

    /// The current required speedup `s_n`.
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// The most recent tracking error `e_n`.
    pub fn last_error(&self) -> f64 {
        self.last_error
    }

    /// Update the clamping range (e.g. when a new profile table is
    /// loaded). The current speedup is re-clamped.
    pub fn set_range(&mut self, min_speedup: f64, max_speedup: f64) {
        assert!(min_speedup <= max_speedup && min_speedup > 0.0);
        self.min_speedup = min_speedup;
        self.max_speedup = max_speedup;
        self.speedup = self.speedup.clamp(min_speedup, max_speedup);
    }

    /// Advance one control cycle: `target` is `r`, `measured` is `y_n`,
    /// and `base_speed` is the estimate of `b_n`. Returns the new
    /// required speedup `s_{n+1}`.
    ///
    /// A non-positive `base_speed` (e.g. a Kalman filter still
    /// converging from a degenerate seed) leaves the speedup unchanged
    /// rather than dividing by zero.
    pub fn step(&mut self, target: f64, measured: f64, base_speed: f64) -> f64 {
        let error = target - measured;
        self.last_error = error;
        if base_speed > 0.0 {
            self.speedup = (self.speedup + self.gain * error / base_speed)
                .clamp(self.min_speedup, self.max_speedup);
        }
        self.speedup
    }

    /// Reset to a given speedup (used on phase changes).
    pub fn reset(&mut self, speedup: f64) {
        self.speedup = speedup.clamp(self.min_speedup, self.max_speedup);
        self.last_error = 0.0;
    }

    /// Restore the mutable state captured by [`Self::speedup`] and
    /// [`Self::last_error`] (checkpoint/restore support). A speedup that
    /// was read from this integrator round-trips bit-exactly, because
    /// re-clamping an already-clamped value is the identity.
    pub fn restore_state(&mut self, speedup: f64, last_error: f64) {
        self.speedup = speedup.clamp(self.min_speedup, self.max_speedup);
        self.last_error = last_error;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_required_speedup() {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 20.0);
        let b = 0.129; // AngryBirds base speed from the paper, GIPS
        let r = 0.20; // target GIPS
        for _ in 0..100 {
            let y = reg.speedup() * b;
            reg.step(r, y, b);
        }
        assert!((reg.speedup() * b - r).abs() < 1e-9);
    }

    #[test]
    fn clamps_unreachable_target_without_windup() {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 2.0);
        let b = 1.0;
        for _ in 0..1000 {
            let y = reg.speedup() * b;
            reg.step(100.0, y, b); // target far beyond reach
        }
        assert_eq!(reg.speedup(), 2.0);
        // After the target becomes reachable again, recovery is fast
        // because the integrator did not wind up beyond the clamp.
        let mut cycles = 0;
        loop {
            let y = reg.speedup() * b;
            reg.step(1.5, y, b);
            cycles += 1;
            if (reg.speedup() - 1.5).abs() < 1e-6 {
                break;
            }
            assert!(cycles < 10, "recovery should be immediate-ish");
        }
    }

    #[test]
    fn adapts_when_base_speed_changes() {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 20.0);
        let r = 1.0;
        let mut b = 0.5;
        for _ in 0..50 {
            let y = reg.speedup() * b;
            reg.step(r, y, b);
        }
        assert!((reg.speedup() - 2.0).abs() < 1e-6);
        // Application enters a faster phase: base speed doubles.
        b = 1.0;
        for _ in 0..50 {
            let y = reg.speedup() * b;
            reg.step(r, y, b);
        }
        assert!((reg.speedup() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_base_speed_is_safe() {
        let mut reg = AdaptiveIntegrator::new(2.0, 1.0, 10.0);
        reg.step(1.0, 0.5, 0.0);
        assert_eq!(reg.speedup(), 2.0);
        reg.step(1.0, 0.5, -1.0);
        assert_eq!(reg.speedup(), 2.0);
    }

    #[test]
    fn reset_restores_state() {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 10.0);
        reg.step(5.0, 1.0, 1.0);
        assert!(reg.last_error() > 0.0);
        reg.reset(3.0);
        assert_eq!(reg.speedup(), 3.0);
        assert_eq!(reg.last_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "min_speedup")]
    fn rejects_inverted_range() {
        let _ = AdaptiveIntegrator::new(1.0, 5.0, 2.0);
    }

    #[test]
    fn set_range_reclamps() {
        let mut reg = AdaptiveIntegrator::new(8.0, 1.0, 10.0);
        reg.set_range(1.0, 4.0);
        assert_eq!(reg.speedup(), 4.0);
    }
}
