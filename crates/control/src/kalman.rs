//! Scalar Kalman filter for online base-speed estimation (paper
//! §III-B3, following POET [Imes et al., RTAS'15]).

/// Output of one filter update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanEstimate {
    /// Posterior state estimate (the base speed `b_n`).
    pub value: f64,
    /// Posterior error variance.
    pub variance: f64,
    /// Kalman gain used for this update.
    pub gain: f64,
    /// Innovation `y − h·b⁻` (pre-update residual). Zero when the
    /// measurement was ignored (`h ≤ 0`). Large sustained magnitudes
    /// indicate model mismatch — the observability layer histograms it.
    pub innovation: f64,
}

/// Scalar Kalman filter with a random-walk process model and a
/// time-varying measurement coefficient.
///
/// The application's base speed `b` (its speed at the lowest system
/// configuration) drifts slowly as the application moves through
/// phases; the controller observes only the *scaled* performance
/// `y_n = s_{n−1} · b_n + v_n`, where `s_{n−1}` is the speedup it
/// applied during the last cycle. The filter is therefore driven with
/// `h = s_{n−1}` on each update:
///
/// ```text
/// predict:  b⁻ = b,            p⁻ = p + q
/// gain:     k  = p⁻·h / (h²·p⁻ + r)
/// update:   b  = b⁻ + k·(y − h·b⁻),   p = (1 − k·h)·p⁻
/// ```
///
/// # Example
///
/// ```
/// use asgov_control::KalmanFilter;
///
/// let mut kf = KalmanFilter::new(0.5, 1.0, 1e-4, 1e-2);
/// // True base speed 0.129 GIPS (AngryBirds), controller applied s=2.0.
/// for _ in 0..200 {
///     kf.update(2.0 * 0.129, 2.0);
/// }
/// assert!((kf.value() - 0.129).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    value: f64,
    variance: f64,
    process_var: f64,
    measurement_var: f64,
}

impl KalmanFilter {
    /// Create a filter with initial estimate `initial`, initial error
    /// variance `variance`, process-noise variance `process_var` (how
    /// fast the base speed is allowed to drift) and measurement-noise
    /// variance `measurement_var` (PMU reading noise).
    ///
    /// # Panics
    ///
    /// Panics if any variance is negative or `measurement_var` is zero.
    pub fn new(initial: f64, variance: f64, process_var: f64, measurement_var: f64) -> Self {
        assert!(variance >= 0.0, "initial variance must be non-negative");
        assert!(process_var >= 0.0, "process variance must be non-negative");
        assert!(
            measurement_var > 0.0,
            "measurement variance must be positive"
        );
        Self {
            value: initial,
            variance,
            process_var,
            measurement_var,
        }
    }

    /// Current state estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Current error variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Incorporate measurement `y = h · b + v`. Returns the posterior
    /// estimate. A measurement with `h ≤ 0` is ignored (the prediction
    /// step still runs) since it carries no information about `b`.
    pub fn update(&mut self, y: f64, h: f64) -> KalmanEstimate {
        // Predict.
        let prior_var = self.variance + self.process_var;
        if h <= 0.0 {
            self.variance = prior_var;
            return KalmanEstimate {
                value: self.value,
                variance: prior_var,
                gain: 0.0,
                innovation: 0.0,
            };
        }
        // Update.
        let gain = prior_var * h / (h * h * prior_var + self.measurement_var);
        let innovation = y - h * self.value;
        self.value += gain * innovation;
        self.variance = (1.0 - gain * h) * prior_var;
        KalmanEstimate {
            value: self.value,
            variance: self.variance,
            gain,
            innovation,
        }
    }

    /// Re-seed the filter (used on detected phase changes).
    pub fn reset(&mut self, value: f64, variance: f64) {
        assert!(variance >= 0.0);
        self.value = value;
        self.variance = variance;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_true_base_speed() {
        let mut kf = KalmanFilter::new(1.0, 1.0, 1e-5, 1e-3);
        let b_true = 0.471; // VidCon base speed from the paper
        for _ in 0..500 {
            kf.update(3.0 * b_true, 3.0);
        }
        assert!((kf.value() - b_true).abs() < 1e-3);
        assert!(kf.variance() < 1e-3);
    }

    #[test]
    fn tracks_drifting_base_speed() {
        let mut kf = KalmanFilter::new(0.2, 0.1, 1e-4, 1e-3);
        let mut b = 0.2;
        for i in 0..2000 {
            if i >= 1000 {
                b = 0.4; // phase change
            }
            kf.update(2.0 * b, 2.0);
        }
        assert!(
            (kf.value() - 0.4).abs() < 0.02,
            "filter should re-track after a phase change, got {}",
            kf.value()
        );
    }

    #[test]
    fn noisy_measurements_average_out() {
        use asgov_util::Rng;
        let mut rng = Rng::seed_from_u64(11);
        let mut kf = KalmanFilter::new(0.5, 1.0, 1e-6, 1e-2);
        let b_true = 0.129;
        for _ in 0..3000 {
            let noise: f64 = rng.gen_range(-0.05..0.05);
            kf.update(1.5 * b_true + noise, 1.5);
        }
        assert!((kf.value() - b_true).abs() < 0.01);
    }

    #[test]
    fn variance_shrinks_with_information() {
        let mut kf = KalmanFilter::new(1.0, 1.0, 0.0, 1e-2);
        let v0 = kf.variance();
        kf.update(0.5, 1.0);
        assert!(kf.variance() < v0);
    }

    #[test]
    fn zero_h_measurement_is_ignored_but_variance_grows() {
        let mut kf = KalmanFilter::new(0.3, 0.1, 1e-3, 1e-2);
        let before = kf.value();
        let est = kf.update(5.0, 0.0);
        assert_eq!(est.value, before);
        assert_eq!(est.gain, 0.0);
        assert!(kf.variance() > 0.1, "process noise accumulates");
    }

    #[test]
    fn innovation_is_the_pre_update_residual() {
        let mut kf = KalmanFilter::new(0.5, 1.0, 0.0, 1e-2);
        let est = kf.update(1.2, 2.0);
        assert!((est.innovation - (1.2 - 2.0 * 0.5)).abs() < 1e-12);
        assert_eq!(kf.update(5.0, 0.0).innovation, 0.0, "ignored measurement");
    }

    #[test]
    fn reset_reseeds() {
        let mut kf = KalmanFilter::new(1.0, 1.0, 1e-4, 1e-2);
        kf.update(0.2, 1.0);
        kf.reset(0.7, 0.5);
        assert_eq!(kf.value(), 0.7);
        assert_eq!(kf.variance(), 0.5);
    }

    #[test]
    #[should_panic(expected = "measurement variance")]
    fn zero_measurement_variance_rejected() {
        let _ = KalmanFilter::new(0.0, 1.0, 1e-4, 0.0);
    }
}
