//! Exponentially-weighted moving average.

/// Exponentially-weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (higher = more responsive).
///
/// Used by the baseline governors to smooth CPU-load and memory-traffic
/// signals, and available for smoothing PMU readings.
///
/// # Example
///
/// ```
/// use asgov_control::Ewma;
///
/// let mut avg = Ewma::new(0.5);
/// avg.push(1.0);
/// avg.push(3.0);
/// assert_eq!(avg.value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Push a sample; the first sample initializes the average exactly.
    /// Returns the updated average.
    pub fn push(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average (0 until the first sample).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Has at least one sample been pushed?
    pub fn is_initialized(&self) -> bool {
        self.value.is_some()
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_exactly() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_initialized());
        assert_eq!(e.push(5.0), 5.0);
        assert!(e.is_initialized());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.push(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_tracks_instantly() {
        let mut e = Ewma::new(1.0);
        e.push(1.0);
        e.push(9.0);
        assert_eq!(e.value(), 9.0);
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.5);
        e.push(4.0);
        e.reset();
        assert!(!e.is_initialized());
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
