//! Classical fixed-gain PID controller (comparison baseline).

/// A fixed-gain PID controller.
///
/// The paper argues for an *adaptive-gain* integral controller
/// ([`crate::AdaptiveIntegrator`]) because applications have base speeds
/// differing by an order of magnitude (AngryBirds 0.129 GIPS vs VidCon
/// 0.471 GIPS) and fixed gains tuned for one application misbehave on
/// another. This PID exists so ablation benchmarks can demonstrate that
/// trade-off.
///
/// # Example
///
/// ```
/// use asgov_control::PidController;
///
/// let mut pid = PidController::new(0.5, 0.2, 0.0, (0.0, 10.0));
/// // Plant: y follows u directly.
/// let mut y = 0.0;
/// for _ in 0..200 {
///     let u = pid.step(1.0, y, 1.0);
///     y = u;
/// }
/// assert!((y - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PidController {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    last_error: Option<f64>,
    output_range: (f64, f64),
}

impl PidController {
    /// Create a PID with gains `kp`, `ki`, `kd` and output clamped to
    /// `output_range` (anti-windup: the integral term is frozen while
    /// the output saturates).
    ///
    /// # Panics
    ///
    /// Panics if the output range is inverted.
    pub fn new(kp: f64, ki: f64, kd: f64, output_range: (f64, f64)) -> Self {
        assert!(output_range.0 <= output_range.1, "inverted output range");
        Self {
            kp,
            ki,
            kd,
            integral: 0.0,
            last_error: None,
            output_range,
        }
    }

    /// Advance one cycle of duration `dt`: returns the control output
    /// for tracking `target` given measurement `measured`.
    pub fn step(&mut self, target: f64, measured: f64, dt: f64) -> f64 {
        let error = target - measured;
        let derivative = match self.last_error {
            Some(prev) if dt > 0.0 => (error - prev) / dt,
            _ => 0.0,
        };
        self.last_error = Some(error);

        let candidate_integral = self.integral + error * dt;
        let unclamped = self.kp * error + self.ki * candidate_integral + self.kd * derivative;
        let output = unclamped.clamp(self.output_range.0, self.output_range.1);
        // Anti-windup: only commit the integral if not saturating, or if
        // the error drives the output back inside the range.
        if (unclamped - output).abs() < f64::EPSILON
            || (unclamped > output && error < 0.0)
            || (unclamped < output && error > 0.0)
        {
            self.integral = candidate_integral;
        }
        output
    }

    /// Reset the controller state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drives_error_to_zero_on_unit_plant() {
        let mut pid = PidController::new(0.4, 0.4, 0.0, (-100.0, 100.0));
        let mut y = 0.0;
        for _ in 0..500 {
            y = pid.step(2.0, y, 1.0);
        }
        assert!((y - 2.0).abs() < 1e-3);
    }

    #[test]
    fn output_respects_clamp() {
        let mut pid = PidController::new(10.0, 0.0, 0.0, (0.0, 1.0));
        let u = pid.step(100.0, 0.0, 1.0);
        assert_eq!(u, 1.0);
        let u = pid.step(-100.0, 0.0, 1.0);
        assert_eq!(u, 0.0);
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        let mut pid = PidController::new(0.0, 1.0, 0.0, (0.0, 1.0));
        // Saturate upward for a long time.
        for _ in 0..1000 {
            pid.step(10.0, 0.0, 1.0);
        }
        // Now target is below: should unwind within a few cycles, not 1000.
        let mut cycles = 0;
        loop {
            let u = pid.step(0.0, 1.0, 1.0);
            cycles += 1;
            if u < 0.5 {
                break;
            }
            assert!(cycles < 20, "integral wound up despite anti-windup");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::new(1.0, 1.0, 1.0, (-10.0, 10.0));
        pid.step(1.0, 0.0, 1.0);
        pid.reset();
        let u = pid.step(0.0, 0.0, 1.0);
        assert_eq!(u, 0.0);
    }
}
