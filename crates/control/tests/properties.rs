//! Property-based tests of the control-theory substrate: convergence,
//! stability and clamping of the regulator and estimator under random
//! plants and noise.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_control::{AdaptiveIntegrator, Ewma, KalmanFilter, PhaseDetector, PhaseEvent};
use asgov_util::Rng;

/// The adaptive integrator converges to the required speedup for any
/// reachable target on a linear plant, regardless of the initial
/// state and base speed.
#[test]
fn integrator_converges() {
    let mut rng = Rng::seed_from_u64(0xc0_0001);
    for case in 0..128 {
        let b = rng.gen_range(0.05..2.0);
        let target_frac = rng.gen_range(0.05..0.95);
        let initial = rng.gen_range(1.0..10.0);
        let (min_s, max_s) = (1.0, 10.0);
        let target = (min_s + target_frac * (max_s - min_s)) * b;
        let mut reg = AdaptiveIntegrator::new(initial, min_s, max_s);
        for _ in 0..200 {
            let y = reg.speedup() * b;
            reg.step(target, y, b);
        }
        assert!(
            (reg.speedup() * b - target).abs() < 1e-6 * target.max(1.0),
            "case {case}: speedup {} for target {target} at base {b}",
            reg.speedup()
        );
    }
}

/// The integrator's output is always within its clamp range, no
/// matter how wild the measurements are.
#[test]
fn integrator_always_clamped() {
    let mut rng = Rng::seed_from_u64(0xc0_0002);
    for case in 0..128 {
        let target = rng.gen_range(-5.0..5.0);
        let b = rng.gen_range(0.001..10.0);
        let len = rng.gen_range_usize(1..100);
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 3.0);
        for _ in 0..len {
            let y = rng.gen_range(-10.0..10.0);
            let s = reg.step(target, y, b);
            assert!(
                (1.0..=3.0).contains(&s),
                "case {case}: unclamped speedup {s}"
            );
        }
    }
}

/// The Kalman filter converges to the true base speed under
/// persistent excitation, for any positive h sequence.
#[test]
fn kalman_converges() {
    let mut rng = Rng::seed_from_u64(0xc0_0003);
    for case in 0..128 {
        let b_true = rng.gen_range(0.05..2.0);
        let h = rng.gen_range(0.5..5.0);
        let spread = rng.gen_range(0.0..1.0);
        let mut kf = KalmanFilter::new(b_true * (0.2 + 1.6 * spread), 1.0, 1e-6, 1e-3);
        for _ in 0..500 {
            kf.update(h * b_true, h);
        }
        assert!(
            (kf.value() - b_true).abs() < 0.01 * b_true.max(0.1),
            "case {case}: estimate {} vs true {b_true}",
            kf.value()
        );
    }
}

/// The filter's variance never becomes negative or NaN.
#[test]
fn kalman_variance_well_formed() {
    let mut rng = Rng::seed_from_u64(0xc0_0004);
    for case in 0..128 {
        let len = rng.gen_range_usize(1..200);
        let mut kf = KalmanFilter::new(0.5, 1.0, 1e-4, 1e-2);
        for _ in 0..len {
            let y = rng.gen_range(0.0..5.0);
            let h = rng.gen_range(0.0..5.0);
            kf.update(y, h);
            assert!(kf.variance() >= 0.0, "case {case}");
            assert!(kf.variance().is_finite(), "case {case}");
            assert!(kf.value().is_finite(), "case {case}");
        }
    }
}

/// EWMA output is always inside the convex hull of its inputs.
#[test]
fn ewma_stays_in_hull() {
    let mut rng = Rng::seed_from_u64(0xc0_0005);
    for case in 0..128 {
        let alpha = rng.gen_range(0.01..1.0);
        let len = rng.gen_range_usize(1..100);
        let samples: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let mut e = Ewma::new(alpha);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in &samples {
            let v = e.push(s);
            assert!(
                v >= lo - 1e-9 && v <= hi + 1e-9,
                "case {case}: {v} outside [{lo}, {hi}]"
            );
        }
    }
}

/// The phase detector never fires on a constant signal.
#[test]
fn phase_detector_quiet_on_constant() {
    let mut rng = Rng::seed_from_u64(0xc0_0006);
    for case in 0..128 {
        let value = rng.gen_range(0.01..100.0);
        let n = rng.gen_range_usize(20..200);
        let mut d = PhaseDetector::new(4, 16, 0.2);
        for _ in 0..n {
            assert_eq!(d.push(value), PhaseEvent::Stable, "case {case}");
        }
    }
}

/// The phase detector always fires on a sufficiently large step.
#[test]
fn phase_detector_fires_on_big_step() {
    let mut rng = Rng::seed_from_u64(0xc0_0007);
    for case in 0..128 {
        let base = rng.gen_range(1.0..10.0);
        let factor = rng.gen_range(2.0..5.0);
        let mut d = PhaseDetector::new(4, 16, 0.25);
        for _ in 0..32 {
            d.push(base);
        }
        let mut fired = false;
        for _ in 0..16 {
            if matches!(d.push(base * factor), PhaseEvent::Changed(_)) {
                fired = true;
                break;
            }
        }
        assert!(
            fired,
            "case {case}: step {base} -> {} missed",
            base * factor
        );
    }
}
