//! Property-based tests of the control-theory substrate: convergence,
//! stability and clamping of the regulator and estimator under random
//! plants and noise.

use asgov_control::{AdaptiveIntegrator, Ewma, KalmanFilter, PhaseDetector, PhaseEvent};
use proptest::prelude::*;

proptest! {
    /// The adaptive integrator converges to the required speedup for any
    /// reachable target on a linear plant, regardless of the initial
    /// state and base speed.
    #[test]
    fn integrator_converges(
        b in 0.05f64..2.0,
        target_frac in 0.05f64..0.95,
        initial in 1.0f64..10.0,
    ) {
        let (min_s, max_s) = (1.0, 10.0);
        let target = (min_s + target_frac * (max_s - min_s)) * b;
        let mut reg = AdaptiveIntegrator::new(initial, min_s, max_s);
        for _ in 0..200 {
            let y = reg.speedup() * b;
            reg.step(target, y, b);
        }
        prop_assert!(
            (reg.speedup() * b - target).abs() < 1e-6 * target.max(1.0),
            "speedup {} for target {target} at base {b}",
            reg.speedup()
        );
    }

    /// The integrator's output is always within its clamp range, no
    /// matter how wild the measurements are.
    #[test]
    fn integrator_always_clamped(
        measurements in prop::collection::vec(-10.0f64..10.0, 1..100),
        target in -5.0f64..5.0,
        b in 0.001f64..10.0,
    ) {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 3.0);
        for y in measurements {
            let s = reg.step(target, y, b);
            prop_assert!((1.0..=3.0).contains(&s));
        }
    }

    /// The Kalman filter converges to the true base speed under
    /// persistent excitation, for any positive h sequence.
    #[test]
    fn kalman_converges(
        b_true in 0.05f64..2.0,
        h in 0.5f64..5.0,
        seed in 0.0f64..1.0,
    ) {
        let mut kf = KalmanFilter::new(b_true * (0.2 + 1.6 * seed), 1.0, 1e-6, 1e-3);
        for _ in 0..500 {
            kf.update(h * b_true, h);
        }
        prop_assert!(
            (kf.value() - b_true).abs() < 0.01 * b_true.max(0.1),
            "estimate {} vs true {b_true}",
            kf.value()
        );
    }

    /// The filter's variance never becomes negative or NaN.
    #[test]
    fn kalman_variance_well_formed(
        updates in prop::collection::vec((0.0f64..5.0, 0.0f64..5.0), 1..200),
    ) {
        let mut kf = KalmanFilter::new(0.5, 1.0, 1e-4, 1e-2);
        for (y, h) in updates {
            kf.update(y, h);
            prop_assert!(kf.variance() >= 0.0);
            prop_assert!(kf.variance().is_finite());
            prop_assert!(kf.value().is_finite());
        }
    }

    /// EWMA output is always inside the convex hull of its inputs.
    #[test]
    fn ewma_stays_in_hull(
        alpha in 0.01f64..1.0,
        samples in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let mut e = Ewma::new(alpha);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &s in &samples {
            let v = e.push(s);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// The phase detector never fires on a constant signal.
    #[test]
    fn phase_detector_quiet_on_constant(
        value in 0.01f64..100.0,
        n in 20usize..200,
    ) {
        let mut d = PhaseDetector::new(4, 16, 0.2);
        for _ in 0..n {
            prop_assert_eq!(d.push(value), PhaseEvent::Stable);
        }
    }

    /// The phase detector always fires on a sufficiently large step.
    #[test]
    fn phase_detector_fires_on_big_step(base in 1.0f64..10.0, factor in 2.0f64..5.0) {
        let mut d = PhaseDetector::new(4, 16, 0.25);
        for _ in 0..32 {
            d.push(base);
        }
        let mut fired = false;
        for _ in 0..16 {
            if matches!(d.push(base * factor), PhaseEvent::Changed(_)) {
                fired = true;
                break;
            }
        }
        prop_assert!(fired, "step {base} -> {} missed", base * factor);
    }
}
