//! Network radio model (WiFi) with a controllable packet-rate setting —
//! the paper's other named future-work axis (§VII: "include GPU
//! frequencies, network packet rate, etc. into the control system
//! framework").
//!
//! The tunable is the *packet service rate*: how often the radio wakes
//! to move packets. A high rate gives low latency at high idle/poll
//! power; a low rate coalesces packets cheaply but throttles
//! packet-rate-hungry traffic (video calls, aggressive streaming).

/// The packet service-rate ladder, packets per second.
pub const PACKET_RATES_PPS: [f64; 5] = [100.0, 500.0, 1_000.0, 5_000.0, 10_000.0];

/// Index into the packet-rate ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetRateIndex(pub usize);

impl std::fmt::Display for NetRateIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0 + 1)
    }
}

/// The radio: ladder, current setting, and power model.
#[derive(Debug, Clone, PartialEq)]
pub struct Radio {
    rates_pps: Vec<f64>,
    cur: NetRateIndex,
    /// Poll power per packet-per-second of the *setting*, watts.
    poll_w_per_pps: f64,
    /// Energy per actually-serviced packet, joules.
    energy_per_packet_j: f64,
    serviced_packets: f64,
}

impl Radio {
    /// A Nexus 6-like WiFi radio.
    pub fn wifi() -> Self {
        Self {
            rates_pps: PACKET_RATES_PPS.to_vec(),
            cur: NetRateIndex(2),
            poll_w_per_pps: 2.0e-5,
            energy_per_packet_j: 8.0e-6,
            serviced_packets: 0.0,
        }
    }

    /// Number of rate settings.
    pub fn num_rates(&self) -> usize {
        self.rates_pps.len()
    }

    /// Rate at `idx`, packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rate_pps(&self, idx: NetRateIndex) -> f64 {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; indices come from this ladder
        self.rates_pps[idx.0]
    }

    /// Current setting.
    pub fn rate(&self) -> NetRateIndex {
        self.cur
    }

    /// Set the packet service rate.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_rate(&mut self, idx: NetRateIndex) {
        assert!(idx.0 < self.rates_pps.len(), "rate index out of range");
        self.cur = idx;
    }

    /// Smallest index servicing at least `pps` (max index if beyond).
    pub fn rate_at_least(&self, pps: f64) -> NetRateIndex {
        match self.rates_pps.iter().position(|&r| r >= pps) {
            Some(i) => NetRateIndex(i),
            None => NetRateIndex(self.rates_pps.len() - 1),
        }
    }

    /// Total packets serviced (for rate managers sampling demand).
    pub fn serviced_packets(&self) -> f64 {
        self.serviced_packets
    }

    /// Service one tick of traffic demanding `offered_pps` packets per
    /// second. Returns `(fraction, power_w)`: the fraction of offered
    /// packets serviced this tick (1.0 when the setting suffices) and
    /// the radio power.
    pub fn tick(&mut self, offered_pps: f64) -> (f64, f64) {
        let cap = self.rate_pps(self.cur);
        let serviced = offered_pps.min(cap);
        let fraction = if offered_pps <= 0.0 {
            1.0
        } else {
            serviced / offered_pps
        };
        self.serviced_packets += serviced * 1e-3; // per 1 ms tick
        let power = self.poll_w_per_pps * cap + self.energy_per_packet_j * serviced;
        (fraction, power)
    }

    /// Service `span_ms` consecutive ticks of constant `offered_pps` in
    /// one call — bit-identical to calling [`Radio::tick`] `span_ms`
    /// times (the serviced-packet accumulator receives the same
    /// per-millisecond additions).
    pub(crate) fn tick_span(&mut self, offered_pps: f64, span_ms: u64) -> (f64, f64) {
        let cap = self.rate_pps(self.cur);
        let serviced = offered_pps.min(cap);
        let fraction = if offered_pps <= 0.0 {
            1.0
        } else {
            serviced / offered_pps
        };
        for _ in 0..span_ms {
            self.serviced_packets += serviced * 1e-3; // per 1 ms tick
        }
        let power = self.poll_w_per_pps * cap + self.energy_per_packet_j * serviced;
        (fraction, power)
    }
}

impl Default for Radio {
    fn default() -> Self {
        Self::wifi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_increasing() {
        let r = Radio::wifi();
        for i in 1..r.num_rates() {
            assert!(r.rate_pps(NetRateIndex(i)) > r.rate_pps(NetRateIndex(i - 1)));
        }
    }

    #[test]
    fn services_within_the_setting() {
        let mut r = Radio::wifi();
        r.set_rate(NetRateIndex(0)); // 100 pps
        let (fraction, _) = r.tick(50.0);
        assert_eq!(fraction, 1.0);
        let (fraction, _) = r.tick(400.0);
        assert!((fraction - 0.25).abs() < 1e-12, "100 of 400 pps serviced");
    }

    #[test]
    fn higher_settings_cost_more_poll_power() {
        let mut lo = Radio::wifi();
        lo.set_rate(NetRateIndex(0));
        let mut hi = Radio::wifi();
        hi.set_rate(NetRateIndex(4));
        let (_, p_lo) = lo.tick(50.0);
        let (_, p_hi) = hi.tick(50.0);
        assert!(
            p_hi > p_lo + 0.1,
            "idle poll power dominates at high settings: {p_lo} vs {p_hi}"
        );
    }

    #[test]
    fn rate_at_least_brackets() {
        let r = Radio::wifi();
        assert_eq!(r.rate_at_least(0.0), NetRateIndex(0));
        assert_eq!(r.rate_at_least(600.0), NetRateIndex(2));
        assert_eq!(r.rate_at_least(1e9), NetRateIndex(4));
    }

    #[test]
    fn serviced_counter_accumulates() {
        let mut r = Radio::wifi();
        r.set_rate(NetRateIndex(2));
        for _ in 0..1000 {
            r.tick(800.0);
        }
        assert!((r.serviced_packets() - 800.0).abs() < 1e-6);
    }
}
