//! The simulated device: clock, CPU, memory bus, counters and actuation.
//!
//! [`Device`] advances in 1 ms ticks. Each tick it takes the foreground
//! application's [`Demand`], runs the roofline performance model at the
//! current (frequency, bandwidth) operating point, retires instructions
//! into the [`Pmu`], computes whole-device power through the
//! [`PowerModel`] and integrates it in the [`PowerMonitor`] and
//! [`Battery`].
//!
//! Governors and controllers actuate the device either through the
//! in-kernel driver interface ([`Device::set_cpu_freq`] /
//! [`Device::set_mem_bw`]) or through the virtual sysfs tree
//! ([`Device::sysfs_write`]), which enforces the Linux rule that
//! `scaling_setspeed` only works under the `userspace` governor.

use crate::battery::Battery;
use crate::dvfs::{BwIndex, DvfsTable, FreqIndex};
use crate::faults::{FaultInjector, PerfFault};
use crate::gpu::{Gpu, GpuFreqIndex};
use crate::monitor::PowerMonitor;
use crate::net::{NetRateIndex, Radio};
use crate::pmu::Pmu;
use crate::power::{PowerBreakdown, PowerModel, PowerModelParams};
use crate::trace::{Trace, TraceEvent};
use crate::workload::{Demand, Executed};
use asgov_obs::{CycleRecord, TraceSink};
use std::cell::RefCell;
use std::rc::Rc;

/// Duration of one simulation tick, milliseconds.
pub const TICK_MS: u64 = 1;

/// Energy charged per DVFS transition (driver + PLL relock), joules.
/// The paper reports ~14 mW of actuation power at the controller's
/// 200 ms-minimum switching cadence, i.e. ≈ 2.8 mJ per switch.
const TRANSITION_ENERGY_J: f64 = 2.8e-3;

/// Construction-time parameters of a [`Device`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// DVFS operating points.
    pub table: DvfsTable,
    /// Power model constants.
    pub power: PowerModelParams,
    /// Monsoon measurement noise, watts (σ).
    pub monitor_noise_w: f64,
    /// Number of online cores. `mpdecision` (hotplugging) is disabled in
    /// the paper's experiments, so all four Krait cores stay online.
    pub online_cores: f64,
    /// RNG seed for measurement noise.
    pub seed: u64,
    /// Fraction of memory-stall time the core overlaps with useful
    /// compute (0 = fully serialized, 1 = perfect overlap). Out-of-order
    /// Krait cores hide most but not all memory latency.
    pub mem_overlap: f64,
    /// Enable cpuidle-style deep sleep: idle core time sheds this
    /// fraction of CPU leakage (§I lists "greedily entering low power
    /// states" alongside DVFS; the paper's experiments leave it to the
    /// kernel, so the Table III calibration keeps it off — enable it
    /// for the corresponding ablation).
    pub cpuidle_leak_reduction: f64,
}

impl DeviceConfig {
    /// The Nexus 6 configuration used throughout the paper.
    pub fn nexus6() -> Self {
        Self {
            table: DvfsTable::nexus6(),
            power: PowerModelParams::nexus6(),
            monitor_noise_w: 0.004,
            online_cores: 4.0,
            seed: 0x6e657875, // "nexu"
            mem_overlap: 0.7,
            cpuidle_leak_reduction: 0.0,
        }
    }

    /// Same device, different noise seed (for averaging over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::nexus6()
    }
}

/// What happened during one tick (returned to the harness and forwarded
/// to the workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// Foreground execution results.
    pub executed: Executed,
    /// Power breakdown for the tick.
    pub power: PowerBreakdown,
}

/// Cumulative statistics snapshot (see [`Device::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Simulation time, ms.
    pub elapsed_ms: u64,
    /// Measured (Monsoon) energy, joules.
    pub energy_j: f64,
    /// Measured average power, watts.
    pub avg_power_w: f64,
    /// Retired foreground instructions.
    pub instructions: f64,
    /// Average foreground performance over the window, GIPS.
    pub avg_gips: f64,
    /// Milliseconds spent at each CPU frequency index.
    pub time_in_freq_ms: Vec<u64>,
    /// Milliseconds spent at each bandwidth index.
    pub time_in_bw_ms: Vec<u64>,
    /// Number of CPU frequency transitions.
    pub freq_transitions: u64,
    /// Number of bandwidth transitions.
    pub bw_transitions: u64,
}

impl DeviceStats {
    /// Fraction of time spent at each CPU frequency (sums to 1).
    pub fn freq_histogram(&self) -> Vec<f64> {
        normalize(&self.time_in_freq_ms)
    }

    /// Fraction of time spent at each bandwidth (sums to 1).
    pub fn bw_histogram(&self) -> Vec<f64> {
        normalize(&self.time_in_bw_ms)
    }
}

fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// The simulated mobile device. See the module docs.
///
/// # Example
///
/// ```
/// use asgov_soc::{Device, DeviceConfig, Demand, FreqIndex};
///
/// let mut device = Device::new(DeviceConfig::nexus6());
/// device.set_cpu_governor("userspace");
/// device.set_cpu_freq(FreqIndex(9)); // the paper's f10, 1.4976 GHz
/// let out = device.tick(&Demand {
///     ipc0: 1.5,
///     desired_gips: Some(0.3),
///     active_cores: 2.0,
///     ..Demand::default()
/// });
/// assert!((out.executed.gips - 0.3).abs() < 1e-9);
/// assert!(out.power.total_w() > 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    table: DvfsTable,
    power_model: PowerModel,
    online_cores: f64,
    mem_overlap: f64,
    cpuidle_leak_reduction: f64,
    now_ms: u64,
    freq: FreqIndex,
    bw: BwIndex,
    cpu_governor: String,
    bw_governor: String,
    gpu: Gpu,
    radio: Radio,
    pmu: Pmu,
    monitor: PowerMonitor,
    battery: Battery,
    // cumulative signals governors sample and difference
    busy_core_ms: f64,
    busy_ms: f64,
    bg_util_ms: f64,
    bg_traffic_mb: f64,
    // statistics
    stats_start_ms: u64,
    instr_at_stats_start: f64,
    time_in_freq_ms: Vec<u64>,
    time_in_bw_ms: Vec<u64>,
    freq_transitions: u64,
    bw_transitions: u64,
    pending_transition_energy_j: f64,
    last_touch_ms: Option<u64>,
    last_busy_frac: f64,
    tool_load: f64,
    tool_power_w: f64,
    trace: Trace,
    faults: Option<FaultInjector>,
    pending_kill: bool,
    obs: Option<Rc<RefCell<dyn TraceSink>>>,
    default_online_cores: f64,
}

impl Device {
    /// Create a device in its boot state: lowest frequency and bandwidth,
    /// `interactive` + `cpubw_hwmon` governors selected.
    pub fn new(cfg: DeviceConfig) -> Self {
        let nf = cfg.table.num_freqs();
        let nb = cfg.table.num_bws();
        Self {
            power_model: PowerModel::new(cfg.power),
            online_cores: cfg.online_cores,
            mem_overlap: cfg.mem_overlap.clamp(0.0, 1.0),
            cpuidle_leak_reduction: cfg.cpuidle_leak_reduction.clamp(0.0, 1.0),
            now_ms: 0,
            freq: FreqIndex(0),
            bw: BwIndex(0),
            cpu_governor: "interactive".to_string(),
            bw_governor: "cpubw_hwmon".to_string(),
            gpu: Gpu::adreno420(),
            radio: Radio::wifi(),
            pmu: Pmu::new(),
            monitor: PowerMonitor::new(cfg.monitor_noise_w, cfg.seed),
            battery: Battery::nexus6(),
            busy_core_ms: 0.0,
            busy_ms: 0.0,
            bg_util_ms: 0.0,
            bg_traffic_mb: 0.0,
            stats_start_ms: 0,
            instr_at_stats_start: 0.0,
            time_in_freq_ms: vec![0; nf],
            time_in_bw_ms: vec![0; nb],
            freq_transitions: 0,
            bw_transitions: 0,
            pending_transition_energy_j: 0.0,
            last_touch_ms: None,
            last_busy_frac: 0.0,
            tool_load: 0.0,
            tool_power_w: 0.0,
            trace: Trace::default(),
            faults: None,
            pending_kill: false,
            obs: None,
            default_online_cores: cfg.online_cores,
            table: cfg.table,
        }
    }

    // ---- observation -------------------------------------------------

    /// Current simulation time, ms.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// The DVFS table.
    pub fn table(&self) -> &DvfsTable {
        &self.table
    }

    /// Current CPU frequency index.
    pub fn freq(&self) -> FreqIndex {
        self.freq
    }

    /// Current memory bandwidth index.
    pub fn bw(&self) -> BwIndex {
        self.bw
    }

    /// The PMU counters.
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// The GPU.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The network radio.
    pub fn radio(&self) -> &Radio {
        &self.radio
    }

    /// Set the radio's packet service rate (paper §VII network axis).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of the ladder's range.
    pub fn set_net_rate(&mut self, idx: NetRateIndex) {
        self.radio.set_rate(idx);
    }

    /// The power monitor.
    pub fn monitor(&self) -> &PowerMonitor {
        &self.monitor
    }

    /// Mutable access to the power monitor (enable tracing, reset).
    pub fn monitor_mut(&mut self) -> &mut PowerMonitor {
        &mut self.monitor
    }

    /// The battery.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The event trace (disabled by default; see [`Device::trace_mut`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the event trace (enable, clear, export).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Number of online cores (all four unless hotplugging changed it).
    pub fn online_cores(&self) -> f64 {
        self.online_cores
    }

    /// Set the number of online cores (the `mpdecision` hotplug path).
    /// The paper disables hotplugging during its experiments because it
    /// perturbs measurements; it is available here for the same ablation.
    ///
    /// # Panics
    ///
    /// Panics unless `1.0 ≤ cores ≤ 4.0`.
    pub fn set_online_cores(&mut self, cores: f64) {
        assert!(
            (1.0..=4.0).contains(&cores),
            "online cores must be within 1..=4"
        );
        self.online_cores = cores;
    }

    /// Cumulative busy core-milliseconds (for load computation by
    /// sampling governors; analogous to `/proc/stat` busy time).
    pub fn busy_core_ms(&self) -> f64 {
        self.busy_core_ms
    }

    /// Cumulative busy milliseconds (time any runnable work occupied the
    /// CPU, memory stalls included) — the utilization signal sampled by
    /// load-based governors such as `interactive` and `ondemand`.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Cumulative background-thread utilization, util·ms (the per-task
    /// accounting a controller can read from `/proc` to estimate the
    /// background load — paper §V-C envisions load-adaptive profiles).
    pub fn bg_util_ms(&self) -> f64 {
        self.bg_util_ms
    }

    /// Cumulative background bus traffic, MB.
    pub fn bg_traffic_mb(&self) -> f64 {
        self.bg_traffic_mb
    }

    /// CPU busy fraction of the most recent tick (0–1).
    pub fn last_busy_frac(&self) -> f64 {
        self.last_busy_frac
    }

    /// Time of the most recent touch event, if any.
    pub fn last_touch_ms(&self) -> Option<u64> {
        self.last_touch_ms
    }

    /// Currently selected cpufreq governor name.
    pub fn cpu_governor(&self) -> &str {
        &self.cpu_governor
    }

    /// Currently selected devfreq (memory bus) governor name.
    pub fn bw_governor(&self) -> &str {
        &self.bw_governor
    }

    // ---- fault injection ------------------------------------------------

    /// Install a deterministic fault injector (see [`crate::faults`]).
    /// Without one — or with an empty plan — the device behaves exactly
    /// as if the fault layer did not exist.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// The installed fault injector, if any (for inspecting its
    /// [`stats`](FaultInjector::stats) after a run).
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Remove and return the installed fault injector.
    pub fn take_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// Consume a pending [`FaultKind::ControllerKill`](crate::FaultKind::ControllerKill)
    /// event: `true` exactly once per fired kill, after which the latch
    /// clears. A supervising harness polls this after each tick to
    /// learn that the controller process it shepherds has just died;
    /// with no injector (or no kill window) it is always `false` and
    /// touches nothing.
    pub fn take_pending_kill(&mut self) -> bool {
        std::mem::take(&mut self.pending_kill)
    }

    /// Whether a checkpoint image written at the current millisecond is
    /// corrupted by an active
    /// [`FaultKind::CheckpointCorrupt`](crate::FaultKind::CheckpointCorrupt)
    /// window. Probability-gated from the injector's RNG stream — call
    /// it only when a checkpoint is actually written, so replays stay
    /// aligned.
    pub fn draw_checkpoint_corrupt(&mut self) -> bool {
        let now = self.now_ms;
        self.faults
            .as_mut()
            .is_some_and(|f| f.checkpoint_corrupt(now))
    }

    /// Whether a snapshot restore attempted at the current millisecond
    /// observes a clock jump
    /// ([`FaultKind::ClockJump`](crate::FaultKind::ClockJump) window) —
    /// the checkpoint's time anchor cannot be trusted and a supervisor
    /// must fall back to a cold restart. Probability-gated from the
    /// injector's RNG stream — call it only when a restore is actually
    /// attempted.
    pub fn draw_clock_jump(&mut self) -> bool {
        let now = self.now_ms;
        self.faults.as_mut().is_some_and(|f| f.clock_jump(now))
    }

    // ---- observability ------------------------------------------------

    /// Install an observability sink (see [`asgov_obs`]). The sink is
    /// shared — clones of the device emit into the same sink. Without
    /// one, the observability layer costs nothing; with a
    /// [`asgov_obs::NullSink`], simulation outputs are bit-identical to
    /// no sink at all (asserted in `tests/observability.rs`).
    pub fn install_obs_sink(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.obs = Some(sink);
    }

    /// Whether a sink is installed. Controllers gate record
    /// construction (and the wall-clock reads that feed it) on this so
    /// un-instrumented runs pay nothing.
    pub fn has_obs_sink(&self) -> bool {
        self.obs.is_some()
    }

    /// The installed sink, if any.
    pub fn obs_sink(&self) -> Option<&Rc<RefCell<dyn TraceSink>>> {
        self.obs.as_ref()
    }

    /// Remove and return the installed sink.
    pub fn take_obs_sink(&mut self) -> Option<Rc<RefCell<dyn TraceSink>>> {
        self.obs.take()
    }

    /// Emit one control-cycle record into the sink, if present. Called
    /// by the controller at the end of every control cycle.
    pub fn emit_cycle(&self, rec: &CycleRecord) {
        if let Some(sink) = &self.obs {
            sink.borrow_mut().record_cycle(rec);
        }
    }

    /// Emit a device-level actuation event into the sink, if present.
    fn obs_event(&self, kind: &'static str) {
        if let Some(sink) = &self.obs {
            sink.borrow_mut().device_event(self.now_ms, kind);
        }
    }

    /// Draw the fault (if any) afflicting a perf reading produced now.
    /// Called by [`crate::PerfReader::poll`].
    pub(crate) fn draw_perf_fault(&mut self) -> Option<PerfFault> {
        let now = self.now_ms;
        self.faults.as_mut().and_then(|f| f.perf_fault(now))
    }

    // ---- actuation (in-kernel driver path) ----------------------------

    /// Set the CPU frequency (all four cores — the paper pins them to a
    /// common frequency). This is the in-kernel driver path used by
    /// governor implementations; user-space code should go through
    /// [`Device::sysfs_write`] instead.
    pub fn set_cpu_freq(&mut self, idx: FreqIndex) {
        assert!(
            idx.0 < self.table.num_freqs(),
            "frequency index out of range"
        );
        // msm-thermal-style mitigation: requests above the active
        // ceiling are silently pulled down to it.
        let mut idx = idx;
        let now = self.now_ms;
        if let Some(f) = self.faults.as_mut() {
            if let Some(ceiling) = f.thermal_ceiling(now) {
                if idx.0 > ceiling {
                    idx = FreqIndex(ceiling);
                    f.note_thermal_clamp();
                }
            }
        }
        if idx != self.freq {
            self.trace
                .record(self.now_ms, TraceEvent::CpuFreq(self.freq.0, idx.0));
            self.obs_event("cpu-freq");
            self.freq = idx;
            self.freq_transitions += 1;
            self.pending_transition_energy_j += TRANSITION_ENERGY_J;
        }
    }

    /// Set the GPU frequency. In-kernel driver path (the kgsl driver).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of the GPU ladder's range.
    pub fn set_gpu_freq(&mut self, idx: GpuFreqIndex) {
        if idx != self.gpu.freq() {
            self.trace
                .record(self.now_ms, TraceEvent::GpuFreq(self.gpu.freq().0, idx.0));
            self.obs_event("gpu-freq");
            self.gpu.set_freq(idx);
            self.pending_transition_energy_j += TRANSITION_ENERGY_J;
        }
    }

    /// Select the GPU devfreq governor.
    pub fn set_gpu_governor(&mut self, name: &str) {
        self.gpu.set_governor(name);
    }

    /// Set the memory-bus bandwidth. In-kernel driver path.
    pub fn set_mem_bw(&mut self, idx: BwIndex) {
        assert!(idx.0 < self.table.num_bws(), "bandwidth index out of range");
        if idx != self.bw {
            self.trace
                .record(self.now_ms, TraceEvent::MemBw(self.bw.0, idx.0));
            self.obs_event("mem-bw");
            self.bw = idx;
            self.bw_transitions += 1;
            self.pending_transition_energy_j += TRANSITION_ENERGY_J;
        }
    }

    /// Select the cpufreq governor (kernel path; sysfs writes route here).
    pub fn set_cpu_governor(&mut self, name: &str) {
        self.trace.record(
            self.now_ms,
            TraceEvent::Governor {
                subsystem: "cpufreq",
                name: name.to_string(),
            },
        );
        self.obs_event("cpufreq-governor");
        self.cpu_governor = name.to_string();
        match name {
            "performance" => self.set_cpu_freq(self.table.max_freq()),
            "powersave" => self.set_cpu_freq(self.table.min_freq()),
            _ => {}
        }
    }

    /// Select the devfreq governor (kernel path; sysfs writes route here).
    pub fn set_bw_governor(&mut self, name: &str) {
        self.trace.record(
            self.now_ms,
            TraceEvent::Governor {
                subsystem: "devfreq",
                name: name.to_string(),
            },
        );
        self.obs_event("devfreq-governor");
        self.bw_governor = name.to_string();
        match name {
            "performance" => self.set_mem_bw(self.table.max_bw()),
            "powersave" => self.set_mem_bw(self.table.min_bw()),
            _ => {}
        }
    }

    /// Inject measurement-tool CPU load and power (models the `perf`
    /// overhead: 40 % at a 100 ms sampling period, 4 % at 1 s, 15 mW).
    pub fn set_tool_overhead(&mut self, load: f64, power_w: f64) {
        self.tool_load = load.clamp(0.0, 1.0);
        self.tool_power_w = power_w.max(0.0);
    }

    // ---- statistics ----------------------------------------------------

    /// Snapshot of cumulative statistics since the last
    /// [`Device::reset_stats`].
    pub fn stats(&self) -> DeviceStats {
        let elapsed_ms = self.now_ms - self.stats_start_ms;
        let instructions = self.pmu.instructions() - self.instr_at_stats_start;
        let avg_gips = if elapsed_ms == 0 {
            0.0
        } else {
            instructions / (elapsed_ms as f64 * 1e-3) / 1e9
        };
        DeviceStats {
            elapsed_ms,
            energy_j: self.monitor.energy_j(),
            avg_power_w: self.monitor.average_power_w(),
            instructions,
            avg_gips,
            time_in_freq_ms: self.time_in_freq_ms.clone(),
            time_in_bw_ms: self.time_in_bw_ms.clone(),
            freq_transitions: self.freq_transitions,
            bw_transitions: self.bw_transitions,
        }
    }

    /// Reset statistics (histograms, energy integrator, transition
    /// counters) without touching device state.
    pub fn reset_stats(&mut self) {
        self.gpu.reset_stats();
        self.stats_start_ms = self.now_ms;
        self.instr_at_stats_start = self.pmu.instructions();
        self.time_in_freq_ms.iter_mut().for_each(|c| *c = 0);
        self.time_in_bw_ms.iter_mut().for_each(|c| *c = 0);
        self.freq_transitions = 0;
        self.bw_transitions = 0;
        self.monitor.reset();
    }

    // ---- execution -----------------------------------------------------

    /// Execute one 1 ms tick under the given foreground demand.
    pub fn tick(&mut self, demand: &Demand) -> TickOutcome {
        // Fault-plan side effects scheduled for this tick (external
        // governor resets, hotplug churn, thermal force-down). The
        // branch is free when no injector is installed.
        let now = self.now_ms;
        if let Some(actions) = self.faults.as_mut().map(|f| f.on_tick(now)) {
            if let Some(gov) = actions.governor_reset {
                self.set_cpu_governor(&gov);
            }
            if let Some(cores) = actions.set_cores {
                self.online_cores = cores.clamp(1.0, 4.0);
            } else if actions.restore_cores {
                self.online_cores = self.default_online_cores;
            }
            if let Some(ceiling) = actions.thermal_ceiling {
                if self.freq.0 > ceiling {
                    self.set_cpu_freq(FreqIndex(ceiling));
                    if let Some(f) = self.faults.as_mut() {
                        f.note_thermal_clamp();
                    }
                }
            }
            if actions.controller_kill {
                self.pending_kill = true;
                self.obs_event("controller-kill");
            }
        }
        let dt_s = TICK_MS as f64 * 1e-3;
        let f_hz = self.table.freq(self.freq).hz();
        let bw_bps = self.table.bw(self.bw).bytes_per_sec();

        // --- contention: background + tool activity steal core time and
        // bus bandwidth from the foreground application.
        let stolen_util = (demand.bg.cpu_util + self.tool_load).min(0.9);
        let cores_avail = (self.online_cores * (1.0 - stolen_util)).max(0.1);
        let fg_cores = demand.active_cores.clamp(0.0, cores_avail);
        let bg_traffic_bps = demand.bg.traffic_mbps * 1e6;
        // Bus arbitration guarantees the foreground a minimum share.
        let bus_avail_bps = (bw_bps - bg_traffic_bps).max(0.4 * bw_bps);

        // --- roofline performance model.
        let ips_cpu = demand.ipc0 * fg_cores * f_hz;
        let ips_mem = if demand.bytes_per_instr > 0.0 {
            bus_avail_bps / demand.bytes_per_instr
        } else {
            f64::INFINITY
        };
        // Partial-overlap roofline: a fraction `mem_overlap` of memory
        // stall time hides under compute.
        let ips_hw = if ips_cpu <= 0.0 {
            0.0
        } else if ips_mem.is_finite() && ips_mem > 0.0 {
            1.0 / (1.0 / ips_cpu + (1.0 - self.mem_overlap) / ips_mem)
        } else {
            ips_cpu
        };
        // GPU-bound throttling: when the GPU cannot keep up with the
        // demanded render work, the render thread blocks on the fence
        // and CPU-side throughput scales down with it.
        let ips_cpu_side = ips_hw;
        let (gpu_fraction, gpu_power_w) = self.gpu.tick(demand.gpu_work);
        // Network-bound throttling: coalesced packets delay
        // network-paced work the same way GPU fences delay render work.
        let (net_fraction, net_power_w) = self.radio.tick(demand.net_pps);
        let ips_hw = ips_hw * gpu_fraction * net_fraction;
        let ips_capped = match demand.gips_cap {
            Some(cap) => ips_hw.min(cap * 1e9),
            None => ips_hw,
        };
        let ips_run = match demand.desired_gips {
            Some(want) => ips_capped.min(want.max(0.0) * 1e9),
            None => ips_capped,
        };

        let instructions = ips_run * dt_s;
        // Fraction of the tick the foreground app occupies the CPU
        // (memory stalls count as busy time, as cpufreq sees them).
        // When the pipeline cap binds: a dependency-stalled pipeline
        // (`cap_busy`) still occupies the cores; an I/O- or
        // hardware-wait lets them idle. GPU waits always idle the CPU.
        let busy_denominator = if demand.cap_busy {
            ips_capped
        } else {
            ips_cpu_side
        };
        let fg_busy = if busy_denominator > 0.0 {
            (ips_run / busy_denominator).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let busy_frac = (fg_busy + stolen_util).clamp(0.0, 1.0);
        let fg_busy_cores = fg_busy * fg_cores;
        let busy_cores = (fg_busy_cores + stolen_util * self.online_cores).min(self.online_cores);

        // The bus physically cannot carry more than its configured
        // bandwidth, whatever the overlap model credits the cores with.
        let fg_traffic_bps = (instructions * demand.bytes_per_instr / dt_s).min(bus_avail_bps);
        let traffic_mbps = (fg_traffic_bps + bg_traffic_bps) / 1e6;

        // --- accounting.
        let cycles = fg_busy_cores * f_hz * dt_s;
        self.pmu.record(
            instructions,
            cycles,
            (fg_traffic_bps + bg_traffic_bps) * dt_s,
        );
        self.busy_core_ms += busy_cores * TICK_MS as f64;
        self.busy_ms += busy_frac * TICK_MS as f64;
        self.bg_util_ms += demand.bg.cpu_util * TICK_MS as f64;
        self.bg_traffic_mb += demand.bg.traffic_mbps * dt_s;

        // --- power. With cpuidle enabled, idle core time sheds part of
        // its leakage (deep C-states power-gate the core).
        let idle_cores = (self.online_cores - busy_cores).max(0.0);
        let effective_cores = self.online_cores - idle_cores * self.cpuidle_leak_reduction;
        let mut power = self.power_model.power(
            &self.table,
            self.freq,
            self.bw,
            effective_cores,
            busy_cores,
            traffic_mbps,
            demand.extra_power_w + self.tool_power_w,
            demand.bg.power_w,
        );
        power.gpu_w = gpu_power_w;
        power.extra_w += net_power_w;
        if self.pending_transition_energy_j > 0.0 {
            power.extra_w += self.pending_transition_energy_j / dt_s;
            self.pending_transition_energy_j = 0.0;
        }
        let total_w = power.total_w();
        self.monitor.record(self.now_ms, total_w);
        self.battery.drain(total_w * dt_s);

        // --- statistics.
        if let Some(t) = self.time_in_freq_ms.get_mut(self.freq.0) {
            *t += TICK_MS;
        }
        if let Some(t) = self.time_in_bw_ms.get_mut(self.bw.0) {
            *t += TICK_MS;
        }
        if demand.touch {
            self.last_touch_ms = Some(self.now_ms);
        }
        self.last_busy_frac = busy_frac;
        self.now_ms += TICK_MS;

        TickOutcome {
            executed: Executed {
                instructions,
                gips: ips_run / 1e9,
                busy_frac,
                traffic_mb: traffic_mbps * dt_s,
            },
            power,
        }
    }

    /// Execute `span_ms` consecutive 1 ms ticks under a demand that is
    /// constant over the span, in a single call — the event engine's
    /// time-advance primitive ([`crate::event::run`]).
    ///
    /// Bit-identical to calling [`Device::tick`] `span_ms` times with
    /// the same demand, provided no fault boundary falls strictly inside
    /// the span (the caller bounds spans by
    /// [`Device::next_fault_boundary_ms`]): the expensive contention /
    /// roofline / power model is evaluated once, and every
    /// per-millisecond accumulator (PMU counters, busy time, monitor
    /// energy — including its per-sample noise draws — battery, GPU and
    /// radio counters) then receives the exact same sequence of
    /// floating-point additions a 1 ms loop would produce. Pending DVFS
    /// transition energy is charged into the first millisecond only,
    /// exactly as the tick core does. The returned outcome is that of
    /// the first millisecond of the span (the remaining milliseconds are
    /// identical except for the transition-energy surcharge).
    pub fn tick_span(&mut self, demand: &Demand, span_ms: u64) -> TickOutcome {
        if span_ms <= 1 {
            return self.tick(demand);
        }
        // Fault side effects fire at span start; interior milliseconds
        // would be no-ops because the caller never lets a span cross or
        // sit inside a fault window (see `FaultInjector::next_event_ms`).
        let now = self.now_ms;
        if let Some(actions) = self.faults.as_mut().map(|f| f.on_tick(now)) {
            if let Some(gov) = actions.governor_reset {
                self.set_cpu_governor(&gov);
            }
            if let Some(cores) = actions.set_cores {
                self.online_cores = cores.clamp(1.0, 4.0);
            } else if actions.restore_cores {
                self.online_cores = self.default_online_cores;
            }
            if let Some(ceiling) = actions.thermal_ceiling {
                if self.freq.0 > ceiling {
                    self.set_cpu_freq(FreqIndex(ceiling));
                    if let Some(f) = self.faults.as_mut() {
                        f.note_thermal_clamp();
                    }
                }
            }
            if actions.controller_kill {
                self.pending_kill = true;
                self.obs_event("controller-kill");
            }
        }
        // --- model evaluation: identical arithmetic to `tick`, done once.
        let dt_s = TICK_MS as f64 * 1e-3;
        let f_hz = self.table.freq(self.freq).hz();
        let bw_bps = self.table.bw(self.bw).bytes_per_sec();

        let stolen_util = (demand.bg.cpu_util + self.tool_load).min(0.9);
        let cores_avail = (self.online_cores * (1.0 - stolen_util)).max(0.1);
        let fg_cores = demand.active_cores.clamp(0.0, cores_avail);
        let bg_traffic_bps = demand.bg.traffic_mbps * 1e6;
        let bus_avail_bps = (bw_bps - bg_traffic_bps).max(0.4 * bw_bps);

        let ips_cpu = demand.ipc0 * fg_cores * f_hz;
        let ips_mem = if demand.bytes_per_instr > 0.0 {
            bus_avail_bps / demand.bytes_per_instr
        } else {
            f64::INFINITY
        };
        let ips_hw = if ips_cpu <= 0.0 {
            0.0
        } else if ips_mem.is_finite() && ips_mem > 0.0 {
            1.0 / (1.0 / ips_cpu + (1.0 - self.mem_overlap) / ips_mem)
        } else {
            ips_cpu
        };
        let ips_cpu_side = ips_hw;
        let (gpu_fraction, gpu_power_w) = self.gpu.tick_span(demand.gpu_work, span_ms);
        let (net_fraction, net_power_w) = self.radio.tick_span(demand.net_pps, span_ms);
        let ips_hw = ips_hw * gpu_fraction * net_fraction;
        let ips_capped = match demand.gips_cap {
            Some(cap) => ips_hw.min(cap * 1e9),
            None => ips_hw,
        };
        let ips_run = match demand.desired_gips {
            Some(want) => ips_capped.min(want.max(0.0) * 1e9),
            None => ips_capped,
        };

        let instructions = ips_run * dt_s;
        let busy_denominator = if demand.cap_busy {
            ips_capped
        } else {
            ips_cpu_side
        };
        let fg_busy = if busy_denominator > 0.0 {
            (ips_run / busy_denominator).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let busy_frac = (fg_busy + stolen_util).clamp(0.0, 1.0);
        let fg_busy_cores = fg_busy * fg_cores;
        let busy_cores = (fg_busy_cores + stolen_util * self.online_cores).min(self.online_cores);

        let fg_traffic_bps = (instructions * demand.bytes_per_instr / dt_s).min(bus_avail_bps);
        let traffic_mbps = (fg_traffic_bps + bg_traffic_bps) / 1e6;

        // --- power: the model is pure, so per-millisecond re-evaluation
        // would produce the same value; evaluate once.
        let idle_cores = (self.online_cores - busy_cores).max(0.0);
        let effective_cores = self.online_cores - idle_cores * self.cpuidle_leak_reduction;
        let mut power = self.power_model.power(
            &self.table,
            self.freq,
            self.bw,
            effective_cores,
            busy_cores,
            traffic_mbps,
            demand.extra_power_w + self.tool_power_w,
            demand.bg.power_w,
        );
        power.gpu_w = gpu_power_w;
        power.extra_w += net_power_w;
        // Pending transition energy is charged into the first
        // millisecond only, exactly as a 1 ms loop would.
        let mut first = power;
        if self.pending_transition_energy_j > 0.0 {
            first.extra_w += self.pending_transition_energy_j / dt_s;
            self.pending_transition_energy_j = 0.0;
        }
        let total_first_w = first.total_w();
        let total_rest_w = power.total_w();

        // --- accounting: one fused residue loop replaying the tick
        // core's per-millisecond statements in the tick core's own
        // order. Each accumulator receives the identical sequence of
        // additions a 1 ms loop would produce (f64 addition is not
        // associative, so the per-ms adds must not be hoisted; fusing
        // is safe because the accumulators are independent and the
        // monitor's noise-RNG call order is unchanged). The first
        // millisecond is peeled: it carries the transition surcharge.
        let cycles = fg_busy_cores * f_hz * dt_s;
        let bus_bytes = (fg_traffic_bps + bg_traffic_bps) * dt_s;
        self.pmu.record(instructions, cycles, bus_bytes);
        self.busy_core_ms += busy_cores * TICK_MS as f64;
        self.busy_ms += busy_frac * TICK_MS as f64;
        self.bg_util_ms += demand.bg.cpu_util * TICK_MS as f64;
        self.bg_traffic_mb += demand.bg.traffic_mbps * dt_s;
        self.monitor.record(now, total_first_w);
        self.battery.drain(total_first_w * dt_s);
        for j in 1..span_ms {
            self.pmu.record(instructions, cycles, bus_bytes);
            self.busy_core_ms += busy_cores * TICK_MS as f64;
            self.busy_ms += busy_frac * TICK_MS as f64;
            self.bg_util_ms += demand.bg.cpu_util * TICK_MS as f64;
            self.bg_traffic_mb += demand.bg.traffic_mbps * dt_s;
            self.monitor.record(now + j, total_rest_w);
            self.battery.drain(total_rest_w * dt_s);
        }

        // --- statistics: integer counters hoist exactly.
        if let Some(t) = self.time_in_freq_ms.get_mut(self.freq.0) {
            *t += TICK_MS * span_ms;
        }
        if let Some(t) = self.time_in_bw_ms.get_mut(self.bw.0) {
            *t += TICK_MS * span_ms;
        }
        if demand.touch {
            // The tick core latches the touch each millisecond; the
            // surviving value is the last millisecond of the span.
            self.last_touch_ms = Some(now + span_ms - 1);
        }
        self.last_busy_frac = busy_frac;
        self.now_ms += TICK_MS * span_ms;

        TickOutcome {
            executed: Executed {
                instructions,
                gips: ips_run / 1e9,
                busy_frac,
                traffic_mb: traffic_mbps * dt_s,
            },
            power: first,
        }
    }

    /// Earliest millisecond after `now_ms` at which the installed fault
    /// plan's behaviour may change ([`u64::MAX`] when no injector is
    /// installed or the plan is exhausted) — the event engine's fault
    /// clock domain. See [`FaultInjector::next_event_ms`].
    pub fn next_fault_boundary_ms(&self, now_ms: u64) -> u64 {
        self.faults
            .as_ref()
            .map_or(u64::MAX, |f| f.next_event_ms(now_ms))
    }

    // ---- sysfs ----------------------------------------------------------

    /// Read a virtual sysfs file. See [`crate::sysfs`] for the tree.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SocError::NoSuchFile`] for unknown paths.
    pub fn sysfs_read(&self, path: &str) -> Result<String, crate::SocError> {
        crate::sysfs::read(self, path)
    }

    /// Write a virtual sysfs file. See [`crate::sysfs`] for the tree and
    /// its semantics.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SocError`] for unknown paths, read-only files,
    /// unparsable values, `scaling_setspeed` writes while the active
    /// governor is not `userspace`, or [`crate::SocError::Busy`] when an
    /// installed fault injector transiently rejects the write.
    pub fn sysfs_write(&mut self, path: &str, value: &str) -> Result<(), crate::SocError> {
        let now = self.now_ms;
        if let Some(f) = &mut self.faults {
            if let Some(err) = f.intercept_write(now, path) {
                return Err(err);
            }
        }
        crate::sysfs::write(self, path, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::BackgroundDemand;

    fn quiet_device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn cpu_demand(gips: f64) -> Demand {
        Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.5,
            desired_gips: Some(gips),
            active_cores: 2.0,
            ..Demand::default()
        }
    }

    #[test]
    fn boot_state_is_lowest_config() {
        let d = quiet_device();
        assert_eq!(d.freq(), FreqIndex(0));
        assert_eq!(d.bw(), BwIndex(0));
        assert_eq!(d.cpu_governor(), "interactive");
        assert_eq!(d.bw_governor(), "cpubw_hwmon");
    }

    #[test]
    fn tick_advances_time_and_counts() {
        let mut d = quiet_device();
        let out = d.tick(&cpu_demand(0.2));
        assert_eq!(d.now_ms(), 1);
        assert!(out.executed.instructions > 0.0);
        assert!(d.pmu().instructions() > 0.0);
        assert!(d.monitor().energy_j() > 0.0);
    }

    #[test]
    fn higher_frequency_executes_faster_for_compute_bound() {
        let mut d = quiet_device();
        // Unbounded batch demand, compute bound.
        let demand = Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.05,
            desired_gips: None,
            active_cores: 2.0,
            ..Demand::default()
        };
        let low = d.tick(&demand).executed.gips;
        d.set_cpu_freq(FreqIndex(17));
        let high = d.tick(&demand).executed.gips;
        assert!(
            high > low * 4.0,
            "compute-bound work should scale strongly with frequency ({low} -> {high})"
        );
    }

    #[test]
    fn memory_bound_work_saturates_with_frequency() {
        let mut d = quiet_device();
        let demand = Demand {
            ipc0: 1.5,
            bytes_per_instr: 16.0, // heavily memory bound at bw1 = 762 MBps
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        };
        d.set_cpu_freq(FreqIndex(9));
        let mid = d.tick(&demand).executed.gips;
        d.set_cpu_freq(FreqIndex(17));
        let high = d.tick(&demand).executed.gips;
        assert!(
            high < mid * 1.3,
            "memory-bound work should barely scale with frequency ({mid} -> {high})"
        );
        // ... but scales with bandwidth.
        d.set_mem_bw(BwIndex(12));
        let high_bw = d.tick(&demand).executed.gips;
        assert!(high_bw > high * 2.0);
    }

    #[test]
    fn gips_cap_limits_execution() {
        let mut d = quiet_device();
        d.set_cpu_freq(FreqIndex(17));
        d.set_mem_bw(BwIndex(12));
        let demand = Demand {
            ipc0: 2.0,
            bytes_per_instr: 0.5,
            gips_cap: Some(0.3),
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        };
        let out = d.tick(&demand);
        assert!((out.executed.gips - 0.3).abs() < 1e-9);
    }

    #[test]
    fn rate_limited_app_reduces_busy_fraction_at_high_freq() {
        let mut d = quiet_device();
        let demand = cpu_demand(0.3);
        d.set_cpu_freq(FreqIndex(0));
        let low = d.tick(&demand).executed.busy_frac;
        d.set_cpu_freq(FreqIndex(17));
        let high = d.tick(&demand).executed.busy_frac;
        assert!(
            high < low,
            "same work rate should be less busy at high frequency ({low} vs {high})"
        );
    }

    #[test]
    fn background_load_steals_throughput() {
        let mut d = quiet_device();
        let mut demand = Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.5,
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        };
        let clean = d.tick(&demand).executed.gips;
        demand.bg = BackgroundDemand {
            cpu_util: 0.5,
            traffic_mbps: 300.0,
            power_w: 0.1,
        };
        let loaded = d.tick(&demand).executed.gips;
        assert!(loaded < clean);
    }

    #[test]
    fn transitions_counted_and_cost_energy() {
        let mut d = quiet_device();
        let base = {
            let mut d2 = quiet_device();
            d2.tick(&cpu_demand(0.1));
            d2.monitor().energy_j()
        };
        d.set_cpu_freq(FreqIndex(5));
        d.set_cpu_freq(FreqIndex(5)); // no-op, same freq
        assert_eq!(d.stats().freq_transitions, 1);
        d.set_mem_bw(BwIndex(3));
        assert_eq!(d.stats().bw_transitions, 1);
        d.set_cpu_freq(FreqIndex(0));
        d.set_mem_bw(BwIndex(0));
        d.tick(&cpu_demand(0.1));
        assert!(d.monitor().energy_j() > base, "transition energy charged");
    }

    #[test]
    fn governor_performance_pins_max() {
        let mut d = quiet_device();
        d.set_cpu_governor("performance");
        assert_eq!(d.freq(), FreqIndex(17));
        d.set_bw_governor("performance");
        assert_eq!(d.bw(), BwIndex(12));
        d.set_cpu_governor("powersave");
        assert_eq!(d.freq(), FreqIndex(0));
    }

    #[test]
    fn stats_reset_zeroes_histograms() {
        let mut d = quiet_device();
        for _ in 0..10 {
            d.tick(&cpu_demand(0.1));
        }
        assert_eq!(d.stats().elapsed_ms, 10);
        d.reset_stats();
        let s = d.stats();
        assert_eq!(s.elapsed_ms, 0);
        assert_eq!(s.energy_j, 0.0);
        assert!(s.time_in_freq_ms.iter().all(|&c| c == 0));
    }

    #[test]
    fn histogram_mass_sums_to_one() {
        let mut d = quiet_device();
        for i in 0..100u64 {
            if i == 50 {
                d.set_cpu_freq(FreqIndex(9));
            }
            d.tick(&cpu_demand(0.1));
        }
        let h = d.stats().freq_histogram();
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((h[0] - 0.5).abs() < 1e-9);
        assert!((h[9] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn touch_events_are_latched() {
        let mut d = quiet_device();
        let mut demand = cpu_demand(0.1);
        d.tick(&demand);
        assert_eq!(d.last_touch_ms(), None);
        demand.touch = true;
        d.tick(&demand);
        assert_eq!(d.last_touch_ms(), Some(1));
    }

    #[test]
    fn cpuidle_sheds_idle_leakage() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        let without = Device::new(cfg.clone())
            .tick(&Demand::idle())
            .power
            .total_w();
        cfg.cpuidle_leak_reduction = 0.8;
        let with = Device::new(cfg.clone())
            .tick(&Demand::idle())
            .power
            .total_w();
        assert!(with < without, "idle power must drop: {without} -> {with}");
        // Fully-busy power is unaffected.
        let busy = Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.1,
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        };
        let mut clean = Device::new({
            let mut c = DeviceConfig::nexus6();
            c.monitor_noise_w = 0.0;
            c
        });
        let p_clean = clean.tick(&busy).power.total_w();
        let mut idled = Device::new(cfg);
        let p_idled = idled.tick(&busy).power.total_w();
        assert!((p_clean - p_idled).abs() < 1e-9);
    }

    #[test]
    fn fault_injector_busy_rejects_writes_only_in_window() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut d = quiet_device();
        d.set_cpu_governor("userspace");
        let plan = FaultPlan::new()
            .window(5, 10, FaultKind::SysfsBusy)
            .expect("valid window");
        d.install_faults(FaultInjector::new(plan, 1));
        let path = format!("{}/scaling_setspeed", crate::sysfs::CPUFREQ);
        assert!(d.sysfs_write(&path, "1497600").is_ok());
        for _ in 0..5 {
            d.tick(&Demand::idle());
        }
        let err = d.sysfs_write(&path, "300000").unwrap_err();
        assert_eq!(err.kind(), crate::SocErrorKind::Busy);
        for _ in 0..5 {
            d.tick(&Demand::idle());
        }
        assert!(d.sysfs_write(&path, "300000").is_ok());
        assert_eq!(d.faults().unwrap().stats().sysfs_busy, 1);
    }

    #[test]
    fn thermal_clamp_silently_limits_and_forces_down() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut d = quiet_device();
        d.set_cpu_governor("userspace");
        d.set_cpu_freq(FreqIndex(17));
        let plan = FaultPlan::new()
            .window(10, 20, FaultKind::ThermalClamp(5))
            .expect("valid window");
        d.install_faults(FaultInjector::new(plan, 1));
        for _ in 0..11 {
            d.tick(&Demand::idle());
        }
        assert_eq!(d.freq(), FreqIndex(5), "running freq forced to ceiling");
        // A write above the ceiling succeeds but is clamped.
        let khz = d.table().freq(FreqIndex(15)).khz();
        d.sysfs_write(
            &format!("{}/scaling_setspeed", crate::sysfs::CPUFREQ),
            &khz.to_string(),
        )
        .unwrap();
        assert_eq!(d.freq(), FreqIndex(5));
        // After the window the same write takes full effect.
        for _ in 0..10 {
            d.tick(&Demand::idle());
        }
        d.sysfs_write(
            &format!("{}/scaling_setspeed", crate::sysfs::CPUFREQ),
            &khz.to_string(),
        )
        .unwrap();
        assert_eq!(d.freq(), FreqIndex(15));
        assert!(d.faults().unwrap().stats().thermal_clamps >= 2);
    }

    #[test]
    fn governor_reset_and_hotplug_fire_from_the_plan() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut d = quiet_device();
        d.set_cpu_governor("userspace");
        let plan = FaultPlan::new()
            .window(3, 4, FaultKind::GovernorReset("interactive".into()))
            .and_then(|p| p.window(5, 8, FaultKind::Hotplug(2.0)))
            .expect("valid windows");
        d.install_faults(FaultInjector::new(plan, 1));
        for _ in 0..4 {
            d.tick(&Demand::idle());
        }
        assert_eq!(d.cpu_governor(), "interactive", "external reset applied");
        for _ in 0..2 {
            d.tick(&Demand::idle());
        }
        assert_eq!(d.online_cores(), 2.0, "hotplug window active");
        for _ in 0..4 {
            d.tick(&Demand::idle());
        }
        assert_eq!(d.online_cores(), 4.0, "cores restored after the window");
    }

    #[test]
    fn controller_kill_is_latched_until_taken() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut d = quiet_device();
        let plan = FaultPlan::new()
            .window(3, 5, FaultKind::ControllerKill)
            .expect("valid window");
        d.install_faults(FaultInjector::new(plan, 1));
        assert!(!d.take_pending_kill(), "nothing pending before the window");
        for _ in 0..3 {
            d.tick(&Demand::idle());
        }
        // The kill fired at t = 3 but was not consumed: it stays latched
        // across later ticks until a supervisor takes it, exactly once.
        d.tick(&Demand::idle());
        assert!(d.take_pending_kill());
        assert!(!d.take_pending_kill(), "the latch clears after take");
        for _ in 0..10 {
            d.tick(&Demand::idle());
        }
        assert!(!d.take_pending_kill(), "one-shot window fires once");
        assert_eq!(d.faults().expect("installed").stats().controller_kills, 1);
    }

    #[test]
    fn checkpoint_corrupt_and_clock_jump_draws_respect_windows() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut d = quiet_device();
        let plan = FaultPlan::new()
            .window(2, 4, FaultKind::CheckpointCorrupt)
            .and_then(|p| p.window(6, 8, FaultKind::ClockJump))
            .expect("valid windows");
        d.install_faults(FaultInjector::new(plan, 1));
        assert!(!d.draw_checkpoint_corrupt());
        assert!(!d.draw_clock_jump());
        while d.now_ms() < 2 {
            d.tick(&Demand::idle());
        }
        assert!(d.draw_checkpoint_corrupt());
        assert!(!d.draw_clock_jump());
        while d.now_ms() < 6 {
            d.tick(&Demand::idle());
        }
        assert!(!d.draw_checkpoint_corrupt());
        assert!(d.draw_clock_jump());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        use crate::faults::{FaultInjector, FaultPlan};
        let demand = cpu_demand(0.2);
        let run = |with_empty_injector: bool| {
            let mut d = Device::new(DeviceConfig::nexus6());
            if with_empty_injector {
                d.install_faults(FaultInjector::new(FaultPlan::new(), 99));
            }
            d.set_cpu_governor("userspace");
            for i in 0..500u64 {
                if i == 250 {
                    d.set_cpu_freq(FreqIndex(9));
                }
                d.tick(&demand);
            }
            (d.monitor().energy_j(), d.pmu().instructions())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tool_overhead_adds_load_and_power() {
        let mut d = quiet_device();
        let p0 = d.tick(&cpu_demand(0.0)).power.total_w();
        d.set_tool_overhead(0.04, 0.015);
        let out = d.tick(&cpu_demand(0.0));
        assert!(out.power.total_w() > p0);
        assert!(out.executed.busy_frac >= 0.04);
    }
}
