//! GPU model (Adreno 420) — the paper's first "future work" axis
//! (§VII: "include GPU frequencies … into the control system
//! framework").
//!
//! The GPU renders the frames games demand. Its operating point scales
//! like the CPU's: utilization-dependent dynamic power on a voltage
//! ladder, plus a rate limit — a GPU-bound application cannot render
//! faster than the GPU executes, which caps its CPU-side instruction
//! rate too (the render thread blocks on the GPU fence).

/// The Adreno 420 frequency ladder, GHz.
pub const ADRENO420_FREQS_GHZ: [f64; 5] = [0.20, 0.30, 0.42, 0.50, 0.60];

/// Index into the GPU frequency ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuFreqIndex(pub usize);

impl std::fmt::Display for GpuFreqIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0 + 1)
    }
}

/// The GPU: ladder, current operating point, and power model.
#[derive(Debug, Clone, PartialEq)]
pub struct Gpu {
    freqs_ghz: Vec<f64>,
    cur: GpuFreqIndex,
    governor: String,
    /// Dynamic power coefficient, W per (V² · GHz) at full utilization.
    dyn_w_per_v2ghz: f64,
    /// Leakage, W per volt.
    leak_w_per_v: f64,
    busy_ms: f64,
    time_in_freq_ms: Vec<u64>,
}

impl Gpu {
    /// An Adreno 420-like GPU.
    pub fn adreno420() -> Self {
        Self {
            freqs_ghz: ADRENO420_FREQS_GHZ.to_vec(),
            cur: GpuFreqIndex(0),
            governor: "msm-adreno-tz".to_string(),
            dyn_w_per_v2ghz: 1.6,
            leak_w_per_v: 0.04,
            busy_ms: 0.0,
            time_in_freq_ms: vec![0; ADRENO420_FREQS_GHZ.len()],
        }
    }

    /// Number of operating points.
    pub fn num_freqs(&self) -> usize {
        self.freqs_ghz.len()
    }

    /// Frequency at `idx`, GHz.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn freq_ghz(&self, idx: GpuFreqIndex) -> f64 {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; indices come from this ladder
        self.freqs_ghz[idx.0]
    }

    /// Voltage at `idx` (Adreno-like ladder).
    pub fn voltage(&self, idx: GpuFreqIndex) -> f64 {
        0.8 + 0.5 * self.freq_ghz(idx)
    }

    /// Current operating point.
    pub fn freq(&self) -> GpuFreqIndex {
        self.cur
    }

    /// Set the operating point.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_freq(&mut self, idx: GpuFreqIndex) {
        assert!(idx.0 < self.freqs_ghz.len(), "gpu frequency out of range");
        self.cur = idx;
    }

    /// Smallest index with frequency ≥ `ghz` (max index if beyond).
    pub fn freq_at_least(&self, ghz: f64) -> GpuFreqIndex {
        match self.freqs_ghz.iter().position(|&f| f >= ghz) {
            Some(i) => GpuFreqIndex(i),
            None => GpuFreqIndex(self.freqs_ghz.len() - 1),
        }
    }

    /// Selected devfreq governor for the GPU.
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Select the GPU governor.
    pub fn set_governor(&mut self, name: &str) {
        self.governor = name.to_string();
        match name {
            "performance" => self.cur = GpuFreqIndex(self.freqs_ghz.len() - 1),
            "powersave" => self.cur = GpuFreqIndex(0),
            _ => {}
        }
    }

    /// Cumulative GPU busy time, ms (for the tz governor's load signal).
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Milliseconds spent at each operating point.
    pub fn time_in_freq_ms(&self) -> &[u64] {
        &self.time_in_freq_ms
    }

    /// Reset residency statistics.
    pub fn reset_stats(&mut self) {
        self.time_in_freq_ms.iter_mut().for_each(|c| *c = 0);
    }

    /// Execute one tick: `gpu_work` is the render work demanded this
    /// tick, expressed in GHz-equivalents of GPU time (0 = GPU idle).
    /// Returns `(throughput_fraction, power_w)` where the fraction is
    /// 1.0 when the GPU keeps up and < 1.0 when it is the bottleneck.
    pub fn tick(&mut self, gpu_work: f64) -> (f64, f64) {
        let f = self.freq_ghz(self.cur);
        let v = self.voltage(self.cur);
        let util = if gpu_work <= 0.0 {
            0.0
        } else {
            (gpu_work / f).min(1.0)
        };
        let fraction = if gpu_work <= f || gpu_work <= 0.0 {
            1.0
        } else {
            f / gpu_work
        };
        self.busy_ms += util;
        if let Some(t) = self.time_in_freq_ms.get_mut(self.cur.0) {
            *t += 1;
        }
        let power = self.leak_w_per_v * v + self.dyn_w_per_v2ghz * v * v * f * util;
        (fraction, power)
    }

    /// Execute `span_ms` consecutive ticks under constant `gpu_work` in
    /// one call — bit-identical to calling [`Gpu::tick`] `span_ms`
    /// times: the busy accumulator receives the exact same sequence of
    /// per-millisecond additions, and the (time-invariant) fraction and
    /// power of the first tick are returned.
    pub(crate) fn tick_span(&mut self, gpu_work: f64, span_ms: u64) -> (f64, f64) {
        let f = self.freq_ghz(self.cur);
        let v = self.voltage(self.cur);
        let util = if gpu_work <= 0.0 {
            0.0
        } else {
            (gpu_work / f).min(1.0)
        };
        let fraction = if gpu_work <= f || gpu_work <= 0.0 {
            1.0
        } else {
            f / gpu_work
        };
        for _ in 0..span_ms {
            self.busy_ms += util;
        }
        if let Some(t) = self.time_in_freq_ms.get_mut(self.cur.0) {
            *t += span_ms;
        }
        let power = self.leak_w_per_v * v + self.dyn_w_per_v2ghz * v * v * f * util;
        (fraction, power)
    }
}

impl Default for Gpu {
    fn default() -> Self {
        Self::adreno420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_and_voltages_monotone() {
        let g = Gpu::adreno420();
        assert_eq!(g.num_freqs(), 5);
        for i in 1..g.num_freqs() {
            assert!(g.freq_ghz(GpuFreqIndex(i)) > g.freq_ghz(GpuFreqIndex(i - 1)));
            assert!(g.voltage(GpuFreqIndex(i)) > g.voltage(GpuFreqIndex(i - 1)));
        }
    }

    #[test]
    fn keeps_up_when_fast_enough() {
        let mut g = Gpu::adreno420();
        g.set_freq(GpuFreqIndex(4)); // 600 MHz
        let (fraction, power) = g.tick(0.3);
        assert_eq!(fraction, 1.0);
        assert!(power > 0.1, "busy GPU draws real power, got {power}");
    }

    #[test]
    fn bottlenecks_when_too_slow() {
        let mut g = Gpu::adreno420();
        g.set_freq(GpuFreqIndex(0)); // 200 MHz
        let (fraction, _) = g.tick(0.4);
        assert!((fraction - 0.5).abs() < 1e-12, "200 MHz vs 0.4 GHz work");
    }

    #[test]
    fn idle_gpu_draws_only_leakage() {
        let mut g = Gpu::adreno420();
        g.set_freq(GpuFreqIndex(4));
        let (fraction, power) = g.tick(0.0);
        assert_eq!(fraction, 1.0);
        assert!(power < 0.06, "idle GPU draws ~leakage, got {power}");
    }

    #[test]
    fn governor_pins() {
        let mut g = Gpu::adreno420();
        g.set_governor("performance");
        assert_eq!(g.freq(), GpuFreqIndex(4));
        g.set_governor("powersave");
        assert_eq!(g.freq(), GpuFreqIndex(0));
        g.set_governor("userspace");
        assert_eq!(g.governor(), "userspace");
    }

    #[test]
    fn residency_and_busy_accumulate() {
        let mut g = Gpu::adreno420();
        g.set_freq(GpuFreqIndex(2));
        for _ in 0..10 {
            g.tick(0.21); // half utilization at 0.42 GHz
        }
        assert_eq!(g.time_in_freq_ms()[2], 10);
        assert!((g.busy_ms() - 5.0).abs() < 1e-9);
        g.reset_stats();
        assert_eq!(g.time_in_freq_ms()[2], 0);
    }
}
