//! Controller health reporting: per-fault-class counters and the
//! degradation ladder level.
//!
//! The hardened controller runtime (`asgov-core::resilience`) fills a
//! [`HealthReport`] while it runs; the simulation harness attaches it
//! to [`RunReport`](crate::sim::RunReport) via
//! [`Policy::health`](crate::Policy::health) so experiment binaries and
//! the CLI can print a failure summary instead of a bare counter.

use std::fmt;

/// The controller's degradation ladder (most capable first).
///
/// `Full` runs the paper's two-configuration schedule; `SafeConfig`
/// pins one safe configuration (no optimization); `FallbackGovernor`
/// hands the device back to the stock governors and only probes for
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradationLevel {
    /// Full two-configuration control (normal operation).
    #[default]
    Full,
    /// Single safe configuration, feedback suspended.
    SafeConfig,
    /// Device handed back to the fallback (stock) governor.
    FallbackGovernor,
}

impl DegradationLevel {
    /// One step less capable (saturates at `FallbackGovernor`).
    pub fn down(self) -> Self {
        match self {
            DegradationLevel::Full => DegradationLevel::SafeConfig,
            _ => DegradationLevel::FallbackGovernor,
        }
    }

    /// One step more capable (saturates at `Full`).
    pub fn up(self) -> Self {
        match self {
            DegradationLevel::FallbackGovernor => DegradationLevel::SafeConfig,
            _ => DegradationLevel::Full,
        }
    }

    /// Stable one-byte wire code for checkpoint serialization.
    pub fn wire_code(self) -> u8 {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::SafeConfig => 1,
            DegradationLevel::FallbackGovernor => 2,
        }
    }

    /// Decode a [`DegradationLevel::wire_code`] (`None` for unknown
    /// codes).
    pub fn from_wire(code: u8) -> Option<Self> {
        match code {
            0 => Some(DegradationLevel::Full),
            1 => Some(DegradationLevel::SafeConfig),
            2 => Some(DegradationLevel::FallbackGovernor),
            _ => None,
        }
    }
}

impl From<DegradationLevel> for asgov_obs::Level {
    fn from(level: DegradationLevel) -> Self {
        match level {
            DegradationLevel::Full => asgov_obs::Level::Full,
            DegradationLevel::SafeConfig => asgov_obs::Level::SafeConfig,
            DegradationLevel::FallbackGovernor => asgov_obs::Level::FallbackGovernor,
        }
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DegradationLevel::Full => "full",
            DegradationLevel::SafeConfig => "safe-config",
            DegradationLevel::FallbackGovernor => "fallback-governor",
        };
        f.write_str(s)
    }
}

/// Per-run health summary of a hardened controller: what faults it
/// observed, how it degraded and how fast it recovered.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthReport {
    /// Degradation level at the end of the run.
    pub level: DegradationLevel,
    /// Sysfs writes rejected with `Busy`.
    pub sysfs_busy: u64,
    /// Sysfs writes rejected with `WrongGovernor`.
    pub wrong_governor: u64,
    /// Sysfs writes of any other failure cause.
    pub other_write_errors: u64,
    /// Writes that still failed after retries were exhausted.
    pub actuation_failures: u64,
    /// Actuation retries performed.
    pub retries: u64,
    /// Times the `userspace` governor was re-asserted.
    pub governor_reasserts: u64,
    /// Actuations observed (via read-back) to be clamped below the
    /// requested frequency (thermal mitigation).
    pub thermal_clamps_detected: u64,
    /// Perf readings rejected by the sanity gate (non-finite or
    /// outlier).
    pub perf_rejected: u64,
    /// Control cycles that ended with no accepted perf reading.
    pub perf_droughts: u64,
    /// Kalman estimator re-seeds forced by the divergence guard.
    pub kalman_reseeds: u64,
    /// Control cycles classified as failed.
    pub failed_cycles: u64,
    /// Steps taken down the degradation ladder.
    pub degradations: u64,
    /// Steps taken back up the ladder.
    pub recoveries: u64,
    /// Control cycles between the *first* failed cycle of the most
    /// recent fault episode and the return to `Full` operation — i.e.
    /// how long the whole episode (faults included) kept the controller
    /// away from full closed-loop control. `None` if the controller
    /// never returned from a degraded level, or never left `Full`.
    pub recovery_latency_cycles: Option<u64>,
    /// Control cycles between the *last* failed cycle and the most
    /// recent return to `Full` — the climb-out time once the fault
    /// cleared. This is the quantity bounded by the chaos suite's
    /// M = 5 contract.
    pub climb_latency_cycles: Option<u64>,
    /// Controller restarts performed by a supervisor after injected
    /// crashes (0 when unsupervised or never killed).
    pub restarts: u64,
    /// Restarts that successfully resumed from a checkpoint (the rest
    /// were cold restarts from the safe configuration).
    pub warm_restarts: u64,
    /// Checkpoints that could not be used at restart: corrupt,
    /// truncated, version-mismatched, or invalidated by a clock jump.
    pub snapshot_errors: u64,
    /// Total milliseconds the controller was dead (kill to restart).
    pub downtime_ms: u64,
    /// Worst-case milliseconds from a restart back to `Full` operation
    /// (`None` if never restarted, or not yet recovered).
    pub restart_recovery_ms: Option<u64>,
}

impl HealthReport {
    /// `true` when nothing abnormal was observed over the run.
    pub fn is_clean(&self) -> bool {
        *self == HealthReport::default()
    }

    /// Total sysfs write failures, by any cause.
    pub fn write_failures(&self) -> u64 {
        self.sysfs_busy + self.wrong_governor + self.other_write_errors
    }

    /// One-line human-readable summary (for CLI/experiment reports).
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "healthy: no faults observed".to_string();
        }
        let mut parts = Vec::new();
        if self.write_failures() > 0 {
            parts.push(format!(
                "{} write failures (busy {}, wrong-governor {}, other {}; {} unrecovered)",
                self.write_failures(),
                self.sysfs_busy,
                self.wrong_governor,
                self.other_write_errors,
                self.actuation_failures
            ));
        }
        if self.retries > 0 || self.governor_reasserts > 0 {
            parts.push(format!(
                "{} retries, {} governor re-asserts",
                self.retries, self.governor_reasserts
            ));
        }
        if self.thermal_clamps_detected > 0 {
            parts.push(format!(
                "{} thermally clamped actuations",
                self.thermal_clamps_detected
            ));
        }
        if self.perf_rejected > 0 || self.perf_droughts > 0 {
            parts.push(format!(
                "{} perf readings rejected, {} measurement droughts",
                self.perf_rejected, self.perf_droughts
            ));
        }
        if self.kalman_reseeds > 0 {
            parts.push(format!("{} estimator re-seeds", self.kalman_reseeds));
        }
        if self.degradations > 0 {
            let latency = match (self.recovery_latency_cycles, self.climb_latency_cycles) {
                (Some(c), Some(k)) => format!("recovered in {c} cycles, climb-out {k}"),
                (Some(c), None) => format!("recovered in {c} cycles"),
                _ => "not recovered".to_string(),
            };
            parts.push(format!(
                "{} degradations / {} recoveries ({latency})",
                self.degradations, self.recoveries
            ));
        }
        if self.restarts > 0 || self.snapshot_errors > 0 {
            let recovery = self
                .restart_recovery_ms
                .map_or_else(|| "not recovered".to_string(), |ms| format!("{ms} ms"));
            parts.push(format!(
                "{} restarts ({} warm, {} snapshot errors), {} ms downtime, back to full in {recovery}",
                self.restarts, self.warm_restarts, self.snapshot_errors, self.downtime_ms
            ));
        }
        format!("level {}: {}", self.level, parts.join("; "))
    }

    /// Aggregate two runs' reports: counters add, the level and
    /// recovery latency take the worst case. Used by experiment
    /// harnesses that average several runs per measurement.
    pub fn merge(&self, other: &HealthReport) -> HealthReport {
        HealthReport {
            level: self.level.max(other.level),
            sysfs_busy: self.sysfs_busy + other.sysfs_busy,
            wrong_governor: self.wrong_governor + other.wrong_governor,
            other_write_errors: self.other_write_errors + other.other_write_errors,
            actuation_failures: self.actuation_failures + other.actuation_failures,
            retries: self.retries + other.retries,
            governor_reasserts: self.governor_reasserts + other.governor_reasserts,
            thermal_clamps_detected: self.thermal_clamps_detected + other.thermal_clamps_detected,
            perf_rejected: self.perf_rejected + other.perf_rejected,
            perf_droughts: self.perf_droughts + other.perf_droughts,
            kalman_reseeds: self.kalman_reseeds + other.kalman_reseeds,
            failed_cycles: self.failed_cycles + other.failed_cycles,
            degradations: self.degradations + other.degradations,
            recoveries: self.recoveries + other.recoveries,
            recovery_latency_cycles: match (
                self.recovery_latency_cycles,
                other.recovery_latency_cycles,
            ) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            climb_latency_cycles: match (self.climb_latency_cycles, other.climb_latency_cycles) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            restarts: self.restarts + other.restarts,
            warm_restarts: self.warm_restarts + other.warm_restarts,
            snapshot_errors: self.snapshot_errors + other.snapshot_errors,
            downtime_ms: self.downtime_ms + other.downtime_ms,
            restart_recovery_ms: match (self.restart_recovery_ms, other.restart_recovery_ms) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Machine-readable form for result artifacts.
    pub fn to_json(&self) -> asgov_util::Json {
        let mut doc = asgov_util::Json::object();
        doc.set("level", self.level.to_string().as_str());
        doc.set("sysfs_busy", self.sysfs_busy as f64);
        doc.set("wrong_governor", self.wrong_governor as f64);
        doc.set("other_write_errors", self.other_write_errors as f64);
        doc.set("actuation_failures", self.actuation_failures as f64);
        doc.set("retries", self.retries as f64);
        doc.set("governor_reasserts", self.governor_reasserts as f64);
        doc.set(
            "thermal_clamps_detected",
            self.thermal_clamps_detected as f64,
        );
        doc.set("perf_rejected", self.perf_rejected as f64);
        doc.set("perf_droughts", self.perf_droughts as f64);
        doc.set("kalman_reseeds", self.kalman_reseeds as f64);
        doc.set("failed_cycles", self.failed_cycles as f64);
        doc.set("degradations", self.degradations as f64);
        doc.set("recoveries", self.recoveries as f64);
        match self.recovery_latency_cycles {
            Some(c) => doc.set("recovery_latency_cycles", c as f64),
            None => doc.set("recovery_latency_cycles", asgov_util::Json::Null),
        }
        match self.climb_latency_cycles {
            Some(c) => doc.set("climb_latency_cycles", c as f64),
            None => doc.set("climb_latency_cycles", asgov_util::Json::Null),
        }
        doc.set("restarts", self.restarts as f64);
        doc.set("warm_restarts", self.warm_restarts as f64);
        doc.set("snapshot_errors", self.snapshot_errors as f64);
        doc.set("downtime_ms", self.downtime_ms as f64);
        match self.restart_recovery_ms {
            Some(ms) => doc.set("restart_recovery_ms", ms as f64),
            None => doc.set("restart_recovery_ms", asgov_util::Json::Null),
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_steps_saturate() {
        assert_eq!(DegradationLevel::Full.down(), DegradationLevel::SafeConfig);
        assert_eq!(
            DegradationLevel::SafeConfig.down(),
            DegradationLevel::FallbackGovernor
        );
        assert_eq!(
            DegradationLevel::FallbackGovernor.down(),
            DegradationLevel::FallbackGovernor
        );
        assert_eq!(
            DegradationLevel::FallbackGovernor.up(),
            DegradationLevel::SafeConfig
        );
        assert_eq!(DegradationLevel::SafeConfig.up(), DegradationLevel::Full);
        assert_eq!(DegradationLevel::Full.up(), DegradationLevel::Full);
        assert!(DegradationLevel::Full < DegradationLevel::FallbackGovernor);
    }

    #[test]
    fn clean_report_summarizes_as_healthy() {
        let r = HealthReport::default();
        assert!(r.is_clean());
        assert!(r.summary().contains("healthy"));
    }

    #[test]
    fn summary_mentions_every_observed_class() {
        let r = HealthReport {
            level: DegradationLevel::SafeConfig,
            sysfs_busy: 3,
            wrong_governor: 1,
            retries: 4,
            governor_reasserts: 1,
            thermal_clamps_detected: 2,
            perf_rejected: 5,
            perf_droughts: 2,
            kalman_reseeds: 1,
            failed_cycles: 3,
            degradations: 1,
            recoveries: 0,
            ..HealthReport::default()
        };
        let s = r.summary();
        for needle in [
            "safe-config",
            "busy 3",
            "wrong-governor 1",
            "retries",
            "clamped",
            "rejected",
            "re-seeds",
            "not recovered",
        ] {
            assert!(s.contains(needle), "summary {s:?} misses {needle:?}");
        }
    }

    #[test]
    fn merge_adds_counters_and_takes_worst_level() {
        let a = HealthReport {
            level: DegradationLevel::SafeConfig,
            sysfs_busy: 2,
            recovery_latency_cycles: Some(3),
            ..HealthReport::default()
        };
        let b = HealthReport {
            sysfs_busy: 1,
            retries: 4,
            recovery_latency_cycles: Some(5),
            ..HealthReport::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.level, DegradationLevel::SafeConfig);
        assert_eq!(m.sysfs_busy, 3);
        assert_eq!(m.retries, 4);
        assert_eq!(m.recovery_latency_cycles, Some(5));
        assert!(HealthReport::default()
            .merge(&HealthReport::default())
            .is_clean());
    }

    #[test]
    fn degradation_wire_codes_round_trip_and_reject_unknowns() {
        for level in [
            DegradationLevel::Full,
            DegradationLevel::SafeConfig,
            DegradationLevel::FallbackGovernor,
        ] {
            assert_eq!(DegradationLevel::from_wire(level.wire_code()), Some(level));
        }
        assert_eq!(DegradationLevel::from_wire(3), None);
        assert_eq!(DegradationLevel::from_wire(255), None);
    }

    #[test]
    fn restart_fields_flow_through_summary_merge_and_json() {
        let a = HealthReport {
            restarts: 2,
            warm_restarts: 1,
            snapshot_errors: 1,
            downtime_ms: 350,
            restart_recovery_ms: Some(4000),
            ..HealthReport::default()
        };
        let s = a.summary();
        for needle in [
            "2 restarts",
            "1 warm",
            "1 snapshot errors",
            "350 ms downtime",
            "4000 ms",
        ] {
            assert!(s.contains(needle), "summary {s:?} misses {needle:?}");
        }
        assert!(!a.is_clean());

        let b = HealthReport {
            restarts: 1,
            downtime_ms: 100,
            restart_recovery_ms: Some(6000),
            ..HealthReport::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.restarts, 3);
        assert_eq!(m.warm_restarts, 1);
        assert_eq!(m.snapshot_errors, 1);
        assert_eq!(m.downtime_ms, 450);
        assert_eq!(m.restart_recovery_ms, Some(6000));

        let json = m.to_json();
        assert_eq!(
            json.get("restarts").and_then(asgov_util::Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            json.get("downtime_ms").and_then(asgov_util::Json::as_f64),
            Some(450.0)
        );
        assert_eq!(
            json.get("restart_recovery_ms")
                .and_then(asgov_util::Json::as_f64),
            Some(6000.0)
        );
        // Never-restarted runs serialize a null recovery time.
        let clean = HealthReport::default().to_json();
        assert!(matches!(
            clean.get("restart_recovery_ms"),
            Some(asgov_util::Json::Null)
        ));
    }

    #[test]
    fn json_round_trips_the_counters() {
        let r = HealthReport {
            sysfs_busy: 2,
            recovery_latency_cycles: Some(3),
            ..HealthReport::default()
        };
        let json = r.to_json();
        assert_eq!(
            json.get("sysfs_busy").and_then(asgov_util::Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            json.get("recovery_latency_cycles")
                .and_then(asgov_util::Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            json.get("level").and_then(asgov_util::Json::as_str),
            Some("full")
        );
    }
}
