//! Virtual sysfs tree.
//!
//! The paper's controller actuates the Nexus 6 exclusively by writing
//! sysfs files: it first sets the `cpufreq` and `devfreq` governors to
//! `userspace`, then writes the desired frequency and bandwidth. This
//! module reproduces that interface — including the kernel's semantics
//! that `scaling_setspeed` is rejected unless the `userspace` governor is
//! active.
//!
//! # Supported paths
//!
//! | path | r/w | meaning |
//! |------|-----|---------|
//! | `/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor` | rw | cpufreq governor |
//! | `/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed` | rw | CPU frequency, kHz (userspace only) |
//! | `/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq` | r | current CPU frequency, kHz |
//! | `/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies` | r | ladder, kHz |
//! | `/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_governors` | r | governor names |
//! | `/sys/devices/system/cpu/cpu0/cpufreq/stats/time_in_state` | r | `khz ms` lines |
//! | `/sys/class/devfreq/qcom,cpubw/governor` | rw | devfreq governor |
//! | `/sys/class/devfreq/qcom,cpubw/userspace/set_freq` | rw | bandwidth, MBps (userspace only) |
//! | `/sys/class/devfreq/qcom,cpubw/cur_freq` | r | current bandwidth, MBps |
//! | `/sys/class/devfreq/qcom,cpubw/available_frequencies` | r | ladder, MBps |

use crate::device::Device;
use crate::error::SocError;

/// cpufreq directory prefix (all four cores share one policy).
pub const CPUFREQ: &str = "/sys/devices/system/cpu/cpu0/cpufreq";
/// devfreq directory prefix for the CPU-to-memory bus.
pub const DEVFREQ: &str = "/sys/class/devfreq/qcom,cpubw";
/// kgsl directory prefix for the GPU.
pub const KGSL: &str = "/sys/class/kgsl/kgsl-3d0";

/// Governors selectable through the cpufreq `scaling_governor` file.
pub const CPU_GOVERNORS: [&str; 6] = [
    "interactive",
    "ondemand",
    "conservative",
    "userspace",
    "performance",
    "powersave",
];

/// Governors selectable through the devfreq `governor` file.
pub const BW_GOVERNORS: [&str; 4] = ["cpubw_hwmon", "userspace", "performance", "powersave"];

/// Governors selectable for the GPU.
pub const GPU_GOVERNORS: [&str; 4] = ["msm-adreno-tz", "userspace", "performance", "powersave"];

pub(crate) fn read(dev: &Device, path: &str) -> Result<String, SocError> {
    if let Some(file) = path.strip_prefix(KGSL).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "governor" => Ok(dev.gpu().governor().to_string()),
            "gpuclk" => {
                Ok(((dev.gpu().freq_ghz(dev.gpu().freq()) * 1e9).round() as u64).to_string())
            }
            "available_frequencies" => Ok((0..dev.gpu().num_freqs())
                .map(|i| {
                    ((dev.gpu().freq_ghz(crate::gpu::GpuFreqIndex(i)) * 1e9).round() as u64)
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")),
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    if let Some(file) = path.strip_prefix(CPUFREQ).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "scaling_governor" => Ok(dev.cpu_governor().to_string()),
            "scaling_cur_freq" | "scaling_setspeed" => {
                Ok(dev.table().freq(dev.freq()).khz().to_string())
            }
            "scaling_available_frequencies" => Ok(dev
                .table()
                .freq_indices()
                .map(|i| dev.table().freq(i).khz().to_string())
                .collect::<Vec<_>>()
                .join(" ")),
            "scaling_available_governors" => Ok(CPU_GOVERNORS.join(" ")),
            "stats/time_in_state" => {
                let stats = dev.stats();
                Ok(dev
                    .table()
                    .freq_indices()
                    .map(|i| {
                        format!(
                            "{} {}",
                            dev.table().freq(i).khz(),
                            stats.time_in_freq_ms.get(i.0).copied().unwrap_or(0)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    if let Some(file) = path.strip_prefix(DEVFREQ).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "governor" => Ok(dev.bw_governor().to_string()),
            "cur_freq" | "userspace/set_freq" => {
                Ok((dev.table().bw(dev.bw()).0.round() as u64).to_string())
            }
            "available_frequencies" => Ok(dev
                .table()
                .bw_indices()
                .map(|i| (dev.table().bw(i).0.round() as u64).to_string())
                .collect::<Vec<_>>()
                .join(" ")),
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    Err(SocError::NoSuchFile(path.to_string()))
}

pub(crate) fn write(dev: &mut Device, path: &str, value: &str) -> Result<(), SocError> {
    let value = value.trim();
    if let Some(file) = path.strip_prefix(KGSL).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "governor" => {
                if GPU_GOVERNORS.contains(&value) {
                    dev.set_gpu_governor(value);
                    Ok(())
                } else {
                    Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    })
                }
            }
            "gpuclk" => {
                if dev.gpu().governor() != "userspace" {
                    return Err(SocError::WrongGovernor {
                        path: path.to_string(),
                        active: dev.gpu().governor().to_string(),
                    });
                }
                let hz: u64 = value.parse().map_err(|_| SocError::InvalidValue {
                    path: path.to_string(),
                    value: value.to_string(),
                })?;
                let idx = (0..dev.gpu().num_freqs())
                    .map(crate::gpu::GpuFreqIndex)
                    .find(|&i| (dev.gpu().freq_ghz(i) * 1e9).round() as u64 == hz);
                match idx {
                    Some(i) => {
                        dev.set_gpu_freq(i);
                        Ok(())
                    }
                    None => Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    }),
                }
            }
            "available_frequencies" => Err(SocError::ReadOnly(path.to_string())),
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    if let Some(file) = path.strip_prefix(CPUFREQ).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "scaling_governor" => {
                if CPU_GOVERNORS.contains(&value) {
                    dev.set_cpu_governor(value);
                    Ok(())
                } else {
                    Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    })
                }
            }
            "scaling_setspeed" => {
                if dev.cpu_governor() != "userspace" {
                    return Err(SocError::WrongGovernor {
                        path: path.to_string(),
                        active: dev.cpu_governor().to_string(),
                    });
                }
                let khz: u64 = value.parse().map_err(|_| SocError::InvalidValue {
                    path: path.to_string(),
                    value: value.to_string(),
                })?;
                match dev.table().freq_from_khz(khz) {
                    Some(idx) => {
                        dev.set_cpu_freq(idx);
                        Ok(())
                    }
                    None => Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    }),
                }
            }
            "scaling_cur_freq"
            | "scaling_available_frequencies"
            | "scaling_available_governors"
            | "stats/time_in_state" => Err(SocError::ReadOnly(path.to_string())),
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    if let Some(file) = path.strip_prefix(DEVFREQ).and_then(|p| p.strip_prefix('/')) {
        return match file {
            "governor" => {
                if BW_GOVERNORS.contains(&value) {
                    dev.set_bw_governor(value);
                    Ok(())
                } else {
                    Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    })
                }
            }
            "userspace/set_freq" => {
                if dev.bw_governor() != "userspace" {
                    return Err(SocError::WrongGovernor {
                        path: path.to_string(),
                        active: dev.bw_governor().to_string(),
                    });
                }
                let mbps: u64 = value.parse().map_err(|_| SocError::InvalidValue {
                    path: path.to_string(),
                    value: value.to_string(),
                })?;
                match dev.table().bw_from_mbps(mbps) {
                    Some(idx) => {
                        dev.set_mem_bw(idx);
                        Ok(())
                    }
                    None => Err(SocError::InvalidValue {
                        path: path.to_string(),
                        value: value.to_string(),
                    }),
                }
            }
            "cur_freq" | "available_frequencies" => Err(SocError::ReadOnly(path.to_string())),
            _ => Err(SocError::NoSuchFile(path.to_string())),
        };
    }
    Err(SocError::NoSuchFile(path.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::dvfs::{BwIndex, FreqIndex};

    fn dev() -> Device {
        Device::new(DeviceConfig::nexus6())
    }

    #[test]
    fn read_governor_and_frequency() {
        let d = dev();
        assert_eq!(
            d.sysfs_read(&format!("{CPUFREQ}/scaling_governor"))
                .unwrap(),
            "interactive"
        );
        assert_eq!(
            d.sysfs_read(&format!("{CPUFREQ}/scaling_cur_freq"))
                .unwrap(),
            "300000"
        );
        assert_eq!(d.sysfs_read(&format!("{DEVFREQ}/cur_freq")).unwrap(), "762");
    }

    #[test]
    fn setspeed_rejected_under_interactive() {
        let mut d = dev();
        let err = d
            .sysfs_write(&format!("{CPUFREQ}/scaling_setspeed"), "1497600")
            .unwrap_err();
        assert!(matches!(err, SocError::WrongGovernor { .. }));
    }

    #[test]
    fn userspace_flow_sets_frequency_and_bandwidth() {
        let mut d = dev();
        d.sysfs_write(&format!("{CPUFREQ}/scaling_governor"), "userspace")
            .unwrap();
        d.sysfs_write(&format!("{CPUFREQ}/scaling_setspeed"), "1497600")
            .unwrap();
        assert_eq!(d.freq(), FreqIndex(9));

        d.sysfs_write(&format!("{DEVFREQ}/governor"), "userspace")
            .unwrap();
        d.sysfs_write(&format!("{DEVFREQ}/userspace/set_freq"), "8056")
            .unwrap();
        assert_eq!(d.bw(), BwIndex(9));
    }

    #[test]
    fn invalid_frequency_rejected() {
        let mut d = dev();
        d.sysfs_write(&format!("{CPUFREQ}/scaling_governor"), "userspace")
            .unwrap();
        let err = d
            .sysfs_write(&format!("{CPUFREQ}/scaling_setspeed"), "123456")
            .unwrap_err();
        assert!(matches!(err, SocError::InvalidValue { .. }));
        let err = d
            .sysfs_write(&format!("{CPUFREQ}/scaling_setspeed"), "fast")
            .unwrap_err();
        assert!(matches!(err, SocError::InvalidValue { .. }));
    }

    #[test]
    fn unknown_governor_rejected() {
        let mut d = dev();
        let err = d
            .sysfs_write(&format!("{CPUFREQ}/scaling_governor"), "warp-speed")
            .unwrap_err();
        assert!(matches!(err, SocError::InvalidValue { .. }));
    }

    #[test]
    fn read_only_files_reject_writes() {
        let mut d = dev();
        let err = d
            .sysfs_write(&format!("{CPUFREQ}/scaling_cur_freq"), "300000")
            .unwrap_err();
        assert!(matches!(err, SocError::ReadOnly(_)));
    }

    #[test]
    fn unknown_path_errors() {
        let d = dev();
        assert!(matches!(
            d.sysfs_read("/sys/nope").unwrap_err(),
            SocError::NoSuchFile(_)
        ));
    }

    #[test]
    fn available_frequencies_lists_whole_ladder() {
        let d = dev();
        let freqs = d
            .sysfs_read(&format!("{CPUFREQ}/scaling_available_frequencies"))
            .unwrap();
        assert_eq!(freqs.split_whitespace().count(), 18);
        assert!(freqs.starts_with("300000"));
        assert!(freqs.ends_with("2649600"));
        let bws = d
            .sysfs_read(&format!("{DEVFREQ}/available_frequencies"))
            .unwrap();
        assert_eq!(bws.split_whitespace().count(), 13);
    }

    #[test]
    fn time_in_state_reflects_ticks() {
        let mut d = dev();
        let demand = crate::workload::Demand::idle();
        for _ in 0..5 {
            d.tick(&demand);
        }
        let tis = d
            .sysfs_read(&format!("{CPUFREQ}/stats/time_in_state"))
            .unwrap();
        let first = tis.lines().next().unwrap();
        assert_eq!(first, "300000 5");
    }

    #[test]
    fn gpu_sysfs_flow() {
        let mut d = dev();
        assert_eq!(
            d.sysfs_read(&format!("{KGSL}/governor")).unwrap(),
            "msm-adreno-tz"
        );
        let err = d
            .sysfs_write(&format!("{KGSL}/gpuclk"), "600000000")
            .unwrap_err();
        assert!(matches!(err, SocError::WrongGovernor { .. }));
        d.sysfs_write(&format!("{KGSL}/governor"), "userspace")
            .unwrap();
        d.sysfs_write(&format!("{KGSL}/gpuclk"), "600000000")
            .unwrap();
        assert_eq!(
            d.sysfs_read(&format!("{KGSL}/gpuclk")).unwrap(),
            "600000000"
        );
        let freqs = d
            .sysfs_read(&format!("{KGSL}/available_frequencies"))
            .unwrap();
        assert_eq!(freqs.split_whitespace().count(), 5);
    }

    #[test]
    fn governor_sysfs_write_performance_pins_max() {
        let mut d = dev();
        d.sysfs_write(&format!("{CPUFREQ}/scaling_governor"), "performance")
            .unwrap();
        assert_eq!(d.freq(), FreqIndex(17));
    }
}
