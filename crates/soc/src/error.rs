//! Error types for the SoC substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by device operations (chiefly the virtual sysfs tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// The sysfs path does not exist.
    NoSuchFile(String),
    /// The sysfs file exists but is read-only.
    ReadOnly(String),
    /// The value written could not be parsed or is not a supported
    /// operating point.
    InvalidValue {
        /// Path written to.
        path: String,
        /// The offending value.
        value: String,
    },
    /// `scaling_setspeed` (or its devfreq analogue) was written while the
    /// active governor is not `userspace` — the kernel rejects this.
    WrongGovernor {
        /// Path written to.
        path: String,
        /// The governor that is currently active.
        active: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::NoSuchFile(p) => write!(f, "no such sysfs file: {p}"),
            SocError::ReadOnly(p) => write!(f, "sysfs file is read-only: {p}"),
            SocError::InvalidValue { path, value } => {
                write!(f, "invalid value {value:?} written to {path}")
            }
            SocError::WrongGovernor { path, active } => write!(
                f,
                "cannot write {path}: active governor is {active:?}, not \"userspace\""
            ),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SocError::NoSuchFile("/sys/foo".into());
        assert!(e.to_string().contains("/sys/foo"));
        let e = SocError::WrongGovernor {
            path: "x".into(),
            active: "interactive".into(),
        };
        assert!(e.to_string().contains("interactive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
