//! Error types for the SoC substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by device operations (chiefly the virtual sysfs tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// The sysfs path does not exist.
    NoSuchFile(String),
    /// The sysfs file exists but is read-only.
    ReadOnly(String),
    /// The value written could not be parsed or is not a supported
    /// operating point.
    InvalidValue {
        /// Path written to.
        path: String,
        /// The offending value.
        value: String,
    },
    /// `scaling_setspeed` (or its devfreq analogue) was written while the
    /// active governor is not `userspace` — the kernel rejects this.
    WrongGovernor {
        /// Path written to.
        path: String,
        /// The governor that is currently active.
        active: String,
    },
    /// The write was transiently rejected (the kernel's `-EBUSY`, e.g.
    /// while a DVFS transition or thermal mitigation holds the policy
    /// lock). Retrying later may succeed. Only raised by an installed
    /// [`crate::faults::FaultInjector`].
    Busy(String),
}

/// A field-free classification of [`SocError`] — small and `Copy`, so
/// per-cycle diagnostic logs and health counters can record a failure
/// cause without carrying path strings around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocErrorKind {
    /// [`SocError::NoSuchFile`].
    NoSuchFile,
    /// [`SocError::ReadOnly`].
    ReadOnly,
    /// [`SocError::InvalidValue`].
    InvalidValue,
    /// [`SocError::WrongGovernor`].
    WrongGovernor,
    /// [`SocError::Busy`].
    Busy,
}

impl SocErrorKind {
    /// Stable one-byte wire code for checkpoint serialization. Codes
    /// are append-only: existing values never change meaning.
    pub fn wire_code(self) -> u8 {
        match self {
            SocErrorKind::NoSuchFile => 0,
            SocErrorKind::ReadOnly => 1,
            SocErrorKind::InvalidValue => 2,
            SocErrorKind::WrongGovernor => 3,
            SocErrorKind::Busy => 4,
        }
    }

    /// Decode a [`SocErrorKind::wire_code`] (`None` for unknown codes —
    /// a corrupt or future snapshot, never a panic).
    pub fn from_wire(code: u8) -> Option<Self> {
        match code {
            0 => Some(SocErrorKind::NoSuchFile),
            1 => Some(SocErrorKind::ReadOnly),
            2 => Some(SocErrorKind::InvalidValue),
            3 => Some(SocErrorKind::WrongGovernor),
            4 => Some(SocErrorKind::Busy),
            _ => None,
        }
    }
}

impl fmt::Display for SocErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SocErrorKind::NoSuchFile => "no-such-file",
            SocErrorKind::ReadOnly => "read-only",
            SocErrorKind::InvalidValue => "invalid-value",
            SocErrorKind::WrongGovernor => "wrong-governor",
            SocErrorKind::Busy => "busy",
        };
        f.write_str(s)
    }
}

impl From<SocErrorKind> for asgov_obs::FaultClass {
    fn from(kind: SocErrorKind) -> Self {
        match kind {
            SocErrorKind::NoSuchFile => asgov_obs::FaultClass::NoSuchFile,
            SocErrorKind::ReadOnly => asgov_obs::FaultClass::ReadOnly,
            SocErrorKind::InvalidValue => asgov_obs::FaultClass::InvalidValue,
            SocErrorKind::WrongGovernor => asgov_obs::FaultClass::WrongGovernor,
            SocErrorKind::Busy => asgov_obs::FaultClass::Busy,
        }
    }
}

impl SocError {
    /// The field-free kind of this error.
    pub fn kind(&self) -> SocErrorKind {
        match self {
            SocError::NoSuchFile(_) => SocErrorKind::NoSuchFile,
            SocError::ReadOnly(_) => SocErrorKind::ReadOnly,
            SocError::InvalidValue { .. } => SocErrorKind::InvalidValue,
            SocError::WrongGovernor { .. } => SocErrorKind::WrongGovernor,
            SocError::Busy(_) => SocErrorKind::Busy,
        }
    }
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::NoSuchFile(p) => write!(f, "no such sysfs file: {p}"),
            SocError::ReadOnly(p) => write!(f, "sysfs file is read-only: {p}"),
            SocError::InvalidValue { path, value } => {
                write!(f, "invalid value {value:?} written to {path}")
            }
            SocError::WrongGovernor { path, active } => write!(
                f,
                "cannot write {path}: active governor is {active:?}, not \"userspace\""
            ),
            SocError::Busy(p) => write!(f, "device or resource busy writing {p}"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SocError::NoSuchFile("/sys/foo".into());
        assert!(e.to_string().contains("/sys/foo"));
        let e = SocError::WrongGovernor {
            path: "x".into(),
            active: "interactive".into(),
        };
        assert!(e.to_string().contains("interactive"));
    }

    #[test]
    fn kind_maps_every_variant() {
        assert_eq!(
            SocError::NoSuchFile("x".into()).kind(),
            SocErrorKind::NoSuchFile
        );
        assert_eq!(
            SocError::ReadOnly("x".into()).kind(),
            SocErrorKind::ReadOnly
        );
        assert_eq!(
            SocError::InvalidValue {
                path: "x".into(),
                value: "y".into()
            }
            .kind(),
            SocErrorKind::InvalidValue
        );
        assert_eq!(
            SocError::WrongGovernor {
                path: "x".into(),
                active: "interactive".into()
            }
            .kind(),
            SocErrorKind::WrongGovernor
        );
        let busy = SocError::Busy("/sys/x".into());
        assert_eq!(busy.kind(), SocErrorKind::Busy);
        assert!(busy.to_string().contains("busy"));
        assert_eq!(SocErrorKind::Busy.to_string(), "busy");
    }

    #[test]
    fn wire_codes_round_trip_and_reject_unknowns() {
        for kind in [
            SocErrorKind::NoSuchFile,
            SocErrorKind::ReadOnly,
            SocErrorKind::InvalidValue,
            SocErrorKind::WrongGovernor,
            SocErrorKind::Busy,
        ] {
            assert_eq!(SocErrorKind::from_wire(kind.wire_code()), Some(kind));
        }
        assert_eq!(SocErrorKind::from_wire(5), None);
        assert_eq!(SocErrorKind::from_wire(255), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
