//! Simulation harness: runs a workload on a device under a set of
//! policies and reports energy/performance statistics.

use crate::device::{Device, DeviceStats};
use crate::health::HealthReport;
use crate::workload::Workload;
use crate::Policy;

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Names of the policies that governed the run, joined with `+`
    /// (`"none"` when the run used no policies).
    pub policy: String,
    /// Wall-clock duration actually simulated, ms.
    pub duration_ms: u64,
    /// Requested time limit, ms (`duration_ms < max_ms` means the
    /// workload completed early).
    pub max_ms: u64,
    /// Measured (Monsoon) energy over the run, joules.
    pub energy_j: f64,
    /// Average device power, watts.
    pub avg_power_w: f64,
    /// Foreground instructions retired.
    pub instructions: f64,
    /// Average foreground performance, GIPS.
    pub avg_gips: f64,
    /// Whether the workload reported completion before the time limit
    /// (fixed-work applications such as VidCon).
    pub completed: bool,
    /// Full device statistics (histograms, transitions).
    pub stats: DeviceStats,
    /// Health summary of the first policy that reports one (hardened
    /// controllers do; plain governors don't).
    pub health: Option<HealthReport>,
}

impl RunReport {
    /// Execution time in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_ms as f64 * 1e-3
    }

    /// Machine-readable summary of the run as a JSON object (the
    /// hand-rolled `asgov-util` surface — the workspace carries no
    /// serde). Histograms are omitted; this is the scalar summary that
    /// result files and the bench harness persist.
    pub fn to_json(&self) -> asgov_util::Json {
        let mut doc = asgov_util::Json::object();
        doc.set("app", self.app.as_str());
        doc.set("policy", self.policy.as_str());
        doc.set("duration_ms", self.duration_ms as f64);
        doc.set("elapsed_ms", self.duration_ms as f64);
        doc.set("max_ms", self.max_ms as f64);
        doc.set("energy_j", self.energy_j);
        doc.set("avg_power_w", self.avg_power_w);
        doc.set("instructions", self.instructions);
        doc.set("avg_gips", self.avg_gips);
        doc.set("completed", self.completed);
        if let Some(h) = &self.health {
            doc.set("health", h.to_json());
        }
        doc
    }
}

/// Run `workload` on `device` under `policies` for at most `max_ms`
/// simulated milliseconds (stopping earlier if the workload finishes).
///
/// Device statistics are reset at the start of the run, so the returned
/// report covers exactly this run. Policies receive `start`, one `tick`
/// per millisecond (after the device tick) and `finish`.
pub fn run(
    device: &mut Device,
    workload: &mut dyn Workload,
    policies: &mut [&mut dyn Policy],
    max_ms: u64,
) -> RunReport {
    for p in policies.iter_mut() {
        p.start(device);
    }
    device.reset_stats();
    let start_ms = device.now_ms();

    let mut completed = false;
    while device.now_ms() - start_ms < max_ms {
        let now = device.now_ms();
        let demand = workload.demand(now);
        let outcome = device.tick(&demand);
        workload.deliver(now, outcome.executed);
        for p in policies.iter_mut() {
            p.tick(device);
        }
        if workload.finished() {
            completed = true;
            break;
        }
    }

    collect_report(device, workload, policies, max_ms, completed)
}

/// Finish the policies and assemble the [`RunReport`] — shared by the
/// tick core ([`run`]) and the event core ([`crate::event::run`]) so
/// both produce structurally identical reports.
pub(crate) fn collect_report(
    device: &mut Device,
    workload: &dyn Workload,
    policies: &mut [&mut dyn Policy],
    max_ms: u64,
    completed: bool,
) -> RunReport {
    for p in policies.iter_mut() {
        p.finish(device);
    }
    let health = policies.iter().find_map(super::Policy::health);
    let policy = if policies.is_empty() {
        "none".to_string()
    } else {
        policies
            .iter()
            .map(super::Policy::name)
            .collect::<Vec<_>>()
            .join("+")
    };

    let stats = device.stats();
    RunReport {
        app: workload.name().to_string(),
        policy,
        duration_ms: stats.elapsed_ms,
        max_ms,
        energy_j: stats.energy_j,
        avg_power_w: stats.avg_power_w,
        instructions: stats.instructions,
        avg_gips: stats.avg_gips,
        completed,
        stats,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::dvfs::FreqIndex;
    use crate::workload::{ConstantWorkload, Demand, Executed};

    /// A policy that pins a frequency at start (for testing the harness).
    struct PinFreq(FreqIndex);
    impl Policy for PinFreq {
        fn name(&self) -> &str {
            "pin"
        }
        fn start(&mut self, device: &mut Device) {
            device.set_cpu_governor("userspace");
            device.set_cpu_freq(self.0);
        }
        fn tick(&mut self, _device: &mut Device) {}
    }

    /// Fixed-work workload for completion testing.
    struct Batch {
        remaining: f64,
    }
    impl Workload for Batch {
        fn name(&self) -> &str {
            "batch"
        }
        fn demand(&mut self, _now_ms: u64) -> Demand {
            Demand {
                ipc0: 1.5,
                bytes_per_instr: 0.1,
                desired_gips: None,
                active_cores: 2.0,
                ..Demand::default()
            }
        }
        fn deliver(&mut self, _now_ms: u64, executed: Executed) {
            self.remaining -= executed.instructions;
        }
        fn finished(&self) -> bool {
            self.remaining <= 0.0
        }
        fn reset(&mut self) {
            self.remaining = 1e9;
        }
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        let mut device = Device::new(cfg);
        let mut app = ConstantWorkload::new("toy", 0.3, 1.5, 1.0);
        let report = run(&mut device, &mut app, &mut [], 1_000);
        assert_eq!(report.duration_ms, 1000);
        assert!(!report.completed);
        assert!(report.energy_j > 0.5 && report.energy_j < 5.0);
        assert!((report.avg_power_w - report.energy_j / 1.0).abs() < 1e-9);
        assert!(report.avg_gips > 0.0);

        // The JSON summary carries the same scalars.
        let json = report.to_json();
        assert_eq!(
            json.get("app").and_then(asgov_util::Json::as_str),
            Some("toy")
        );
        assert_eq!(
            json.get("energy_j").and_then(asgov_util::Json::as_f64),
            Some(report.energy_j)
        );
    }

    #[test]
    fn batch_workload_finishes_faster_at_high_frequency() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;

        let mut dev_lo = Device::new(cfg.clone());
        let mut app = Batch { remaining: 1e9 };
        let slow = run(
            &mut dev_lo,
            &mut app,
            &mut [&mut PinFreq(FreqIndex(0))],
            60_000,
        );
        assert!(slow.completed);

        let mut dev_hi = Device::new(cfg);
        app.reset();
        let fast = run(
            &mut dev_hi,
            &mut app,
            &mut [&mut PinFreq(FreqIndex(17))],
            60_000,
        );
        assert!(fast.completed);
        assert!(
            fast.duration_ms * 3 < slow.duration_ms,
            "high frequency should finish much faster ({} vs {})",
            fast.duration_ms,
            slow.duration_ms
        );
    }

    #[test]
    fn back_to_back_runs_reset_statistics() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        let mut device = Device::new(cfg);
        let mut app = ConstantWorkload::new("toy", 0.3, 1.5, 1.0);
        let first = run(&mut device, &mut app, &mut [], 500);
        app.reset();
        let second = run(&mut device, &mut app, &mut [], 500);
        assert_eq!(first.duration_ms, second.duration_ms);
        assert!((first.energy_j - second.energy_j).abs() < 0.05);
    }
}
