//! A simple battery drain model.
//!
//! The paper's motivation is battery life: energy (not power) correlates
//! with it. The battery integrates true (noise-free) device power and
//! reports remaining charge, letting examples demonstrate battery-life
//! extensions from energy savings.

/// Battery with a fixed energy capacity, drained by the device.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A battery holding `capacity_j` joules. The Nexus 6 ships a
    /// 3220 mAh / 3.8 V pack ≈ 44 kJ; see [`Battery::nexus6`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "battery capacity must be positive");
        Self {
            capacity_j,
            drained_j: 0.0,
        }
    }

    /// The Nexus 6 battery (3220 mAh at 3.8 V nominal ≈ 44 050 J).
    pub fn nexus6() -> Self {
        Self::new(3.220 * 3.8 * 3600.0)
    }

    /// Drain `joules` of charge (saturates at empty).
    #[inline]
    pub fn drain(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0);
        self.drained_j = (self.drained_j + joules).min(self.capacity_j);
    }

    /// Total capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Energy drained so far, joules.
    pub fn drained_j(&self) -> f64 {
        self.drained_j
    }

    /// Remaining charge, joules.
    pub fn remaining_j(&self) -> f64 {
        self.capacity_j - self.drained_j
    }

    /// State of charge in [0, 1].
    pub fn soc(&self) -> f64 {
        self.remaining_j() / self.capacity_j
    }

    /// Is the battery empty?
    pub fn empty(&self) -> bool {
        self.remaining_j() <= 0.0
    }
}

impl Default for Battery {
    fn default() -> Self {
        Self::nexus6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus6_capacity_is_about_44_kj() {
        let b = Battery::nexus6();
        assert!((b.capacity_j() - 44050.0).abs() < 100.0);
    }

    #[test]
    fn drain_reduces_soc() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.soc(), 1.0);
        b.drain(25.0);
        assert_eq!(b.remaining_j(), 75.0);
        assert!((b.soc() - 0.75).abs() < 1e-12);
        assert!(!b.empty());
    }

    #[test]
    fn drain_saturates_at_empty() {
        let mut b = Battery::new(10.0);
        b.drain(25.0);
        assert_eq!(b.remaining_j(), 0.0);
        assert!(b.empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0);
    }
}
