//! Deterministic fault injection for the simulated device.
//!
//! The paper's controller runs as a userspace daemon on a rooted phone
//! and the device is *not* cooperative: sysfs writes get transiently
//! rejected, other agents (an updater, `thermal-engine`, a curious
//! user) reset the cpufreq governor, `perf` drops or corrupts samples,
//! `msm-thermal` silently clamps `scaling_setspeed`, and `mpdecision`
//! hotplugs cores. This module models those pathologies as a
//! [`FaultPlan`] — a set of time windows, each injecting one
//! [`FaultKind`] — executed by a [`FaultInjector`] that is installed
//! into a [`Device`](crate::Device) with
//! [`Device::install_faults`](crate::Device::install_faults).
//!
//! Everything is **replayable bit-for-bit from `(seed, plan)`**: all
//! stochastic decisions draw from one vendored [`asgov_util::Rng`]
//! owned by the injector, in device-tick order. A device with no
//! injector — or an injector with an empty plan — behaves *identically*
//! to one built before this module existed: the fault layer draws no
//! randomness and intercepts nothing unless a window is configured.
//!
//! # Example
//!
//! ```
//! use asgov_soc::faults::{FaultInjector, FaultKind, FaultPlan};
//! use asgov_soc::{Device, DeviceConfig};
//!
//! // Between t = 5 s and t = 8 s, every sysfs write fails with EBUSY.
//! let plan = FaultPlan::new().window(5_000, 8_000, FaultKind::SysfsBusy);
//! let mut device = Device::new(DeviceConfig::nexus6());
//! device.install_faults(FaultInjector::new(plan, 0xfau64));
//! ```

use crate::error::SocError;

use asgov_util::Rng;

/// What a fault window injects while active.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Every sysfs write fails with [`SocError::Busy`] (the kernel's
    /// transient `-EBUSY`), subject to the window's probability.
    SysfsBusy,
    /// One-shot: at the window start an external agent writes this
    /// governor into `scaling_governor`, kicking the controller off the
    /// `userspace` policy (e.g. `"interactive"`).
    GovernorReset(String),
    /// Perf readings are lost (the sampling window closes with no
    /// sample delivered).
    PerfDropout,
    /// Perf readings come back NaN (a torn read of the counter file).
    PerfNan,
    /// Perf readings come back zero (counter reset underneath the
    /// reader).
    PerfZero,
    /// Perf readings are multiplied by this factor (wrap/scaling bug;
    /// use a large factor for spikes, a tiny one for dips).
    PerfSpike(f64),
    /// msm-thermal-style mitigation: the CPU frequency is silently
    /// clamped to at most this frequency *index*; `scaling_setspeed`
    /// writes still report success.
    ThermalClamp(usize),
    /// mpdecision-style hotplug: the online core count is forced to
    /// this value while the window is active and restored afterwards.
    Hotplug(f64),
}

impl FaultKind {
    /// Short machine-readable class label (used by fault-matrix
    /// reports).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SysfsBusy => "sysfs-busy",
            FaultKind::GovernorReset(_) => "governor-reset",
            FaultKind::PerfDropout => "perf-dropout",
            FaultKind::PerfNan => "perf-nan",
            FaultKind::PerfZero => "perf-zero",
            FaultKind::PerfSpike(_) => "perf-spike",
            FaultKind::ThermalClamp(_) => "thermal-clamp",
            FaultKind::Hotplug(_) => "hotplug",
        }
    }
}

/// One fault, active over `[start_ms, end_ms)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// First active millisecond.
    pub start_ms: u64,
    /// First millisecond *past* the window.
    pub end_ms: u64,
    /// Per-opportunity firing probability in `[0, 1]`. `1.0` fires on
    /// every opportunity (deterministic scheduling); lower values fire
    /// stochastically from the injector's seeded RNG. Ignored by
    /// [`FaultKind::ThermalClamp`] and [`FaultKind::Hotplug`], which
    /// are level-triggered states rather than discrete events.
    pub probability: f64,
    /// The fault injected.
    pub kind: FaultKind,
}

/// A declarative, replayable set of fault windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The fault windows, in no particular order.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Add a window that always fires while active.
    pub fn window(self, start_ms: u64, end_ms: u64, kind: FaultKind) -> Self {
        self.window_p(start_ms, end_ms, 1.0, kind)
    }

    /// Add a window firing with the given per-opportunity probability.
    pub fn window_p(
        mut self,
        start_ms: u64,
        end_ms: u64,
        probability: f64,
        kind: FaultKind,
    ) -> Self {
        self.windows.push(FaultWindow {
            start_ms,
            end_ms,
            probability: probability.clamp(0.0, 1.0),
            kind,
        });
        self
    }

    /// Earliest millisecond after `now_ms` at which the plan's
    /// tick-level behaviour may differ from its behaviour at `now_ms` —
    /// the event engine's fault clock domain. While *any* window is
    /// active this is the very next millisecond (active windows may draw
    /// randomness or act on every tick, so spans collapse to the exact
    /// per-tick sequence); otherwise it is the nearest upcoming window
    /// start or end, or [`u64::MAX`] for an empty/exhausted plan.
    pub fn next_event_ms(&self, now_ms: u64) -> u64 {
        let mut next = u64::MAX;
        for w in &self.windows {
            if (w.start_ms..w.end_ms).contains(&now_ms) {
                return now_ms.saturating_add(1);
            }
            if w.start_ms > now_ms {
                next = next.min(w.start_ms);
            }
            // The first millisecond *past* a window is also a boundary:
            // hotplug restore (and any level-triggered cleanup) fires on
            // the first inactive tick.
            if w.end_ms > now_ms {
                next = next.min(w.end_ms);
            }
        }
        next
    }
}

/// Cumulative injection counters (what the injector actually did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Sysfs writes rejected with [`SocError::Busy`].
    pub sysfs_busy: u64,
    /// Governor-reset events fired.
    pub governor_resets: u64,
    /// Perf readings dropped.
    pub perf_dropouts: u64,
    /// Perf readings corrupted (NaN, zero or spike).
    pub perf_corrupted: u64,
    /// `set_cpu_freq` requests clamped by the thermal ceiling.
    pub thermal_clamps: u64,
    /// Hotplug transitions applied (enter + leave).
    pub hotplug_changes: u64,
}

/// A perf-reading fault drawn for one sample (consumed by
/// [`PerfReader::poll`](crate::PerfReader::poll)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerfFault {
    /// Lose the reading.
    Dropout,
    /// Replace the reading with NaN.
    Nan,
    /// Replace the reading with zero.
    Zero,
    /// Multiply the reading by the factor.
    Spike(f64),
}

/// Side effects the injector asks the device to apply on a tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct TickActions {
    /// Write this governor into `scaling_governor` (one-shot reset).
    pub governor_reset: Option<String>,
    /// Force the online core count to this value.
    pub set_cores: Option<f64>,
    /// All hotplug windows just ended: restore the configured count.
    pub restore_cores: bool,
    /// Active thermal ceiling; the device pulls the current frequency
    /// down to it if necessary.
    pub thermal_ceiling: Option<usize>,
}

/// Executes a [`FaultPlan`] against a device, deterministically from
/// `(seed, plan)`. Install with
/// [`Device::install_faults`](crate::Device::install_faults).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    windows: Vec<FaultWindow>,
    /// Parallel to `windows`: one-shot windows that already fired.
    fired: Vec<bool>,
    rng: Rng,
    stats: FaultStats,
    hotplug_was_active: bool,
}

impl FaultInjector {
    /// Build an injector for `plan`, with its own RNG stream seeded
    /// from `seed` (independent of the device's measurement-noise
    /// streams, so installing an injector never perturbs them).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let n = plan.windows.len();
        Self {
            windows: plan.windows,
            fired: vec![false; n],
            rng: Rng::seed_from_u64(seed),
            stats: FaultStats::default(),
            hotplug_was_active: false,
        }
    }

    /// Whether the plan is empty (the injector can never do anything).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// What the injector has injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Earliest millisecond after `now_ms` at which injection behaviour
    /// may change — see [`FaultPlan::next_event_ms`]. Used by the event
    /// engine via [`Device::next_fault_boundary_ms`](crate::Device::next_fault_boundary_ms)
    /// to collapse spans to single ticks inside active windows and to
    /// land exactly on window starts and ends.
    pub fn next_event_ms(&self, now_ms: u64) -> u64 {
        let mut next = u64::MAX;
        for w in &self.windows {
            if Self::active(w, now_ms) {
                return now_ms.saturating_add(1);
            }
            if w.start_ms > now_ms {
                next = next.min(w.start_ms);
            }
            if w.end_ms > now_ms {
                next = next.min(w.end_ms);
            }
        }
        next
    }

    fn active(w: &FaultWindow, now_ms: u64) -> bool {
        (w.start_ms..w.end_ms).contains(&now_ms)
    }

    /// Per-tick state changes (called by `Device::tick` before the
    /// tick executes).
    pub(crate) fn on_tick(&mut self, now_ms: u64) -> TickActions {
        let mut actions = TickActions::default();
        let mut hotplug_active = false;
        for (w, fired) in self.windows.iter().zip(self.fired.iter_mut()) {
            if !Self::active(w, now_ms) {
                continue;
            }
            match &w.kind {
                FaultKind::GovernorReset(gov) if !*fired => {
                    *fired = true;
                    if w.probability >= 1.0 || self.rng.gen_bool(w.probability) {
                        actions.governor_reset = Some(gov.clone());
                        self.stats.governor_resets += 1;
                    }
                }
                FaultKind::ThermalClamp(ceiling) => {
                    let c = actions
                        .thermal_ceiling
                        .map_or(*ceiling, |p| p.min(*ceiling));
                    actions.thermal_ceiling = Some(c);
                }
                FaultKind::Hotplug(cores) => {
                    hotplug_active = true;
                    actions.set_cores = Some(*cores);
                    if !self.hotplug_was_active {
                        self.stats.hotplug_changes += 1;
                    }
                }
                _ => {}
            }
        }
        if self.hotplug_was_active && !hotplug_active {
            actions.restore_cores = true;
            self.stats.hotplug_changes += 1;
        }
        self.hotplug_was_active = hotplug_active;
        actions
    }

    /// Intercept a sysfs write: `Some(err)` rejects the write before it
    /// reaches the virtual tree.
    pub(crate) fn intercept_write(&mut self, now_ms: u64, path: &str) -> Option<SocError> {
        for w in &self.windows {
            if matches!(w.kind, FaultKind::SysfsBusy)
                && Self::active(w, now_ms)
                && (w.probability >= 1.0 || self.rng.gen_bool(w.probability))
            {
                self.stats.sysfs_busy += 1;
                return Some(SocError::Busy(path.to_string()));
            }
        }
        None
    }

    /// The thermal frequency ceiling active at `now_ms`, if any
    /// (lowest across overlapping clamp windows).
    pub(crate) fn thermal_ceiling(&self, now_ms: u64) -> Option<usize> {
        self.windows
            .iter()
            .filter(|w| Self::active(w, now_ms))
            .filter_map(|w| match w.kind {
                FaultKind::ThermalClamp(c) => Some(c),
                _ => None,
            })
            .min()
    }

    /// Record one request clamped by the ceiling.
    pub(crate) fn note_thermal_clamp(&mut self) {
        self.stats.thermal_clamps += 1;
    }

    /// Draw the fault (if any) afflicting a perf reading at `now_ms`.
    pub(crate) fn perf_fault(&mut self, now_ms: u64) -> Option<PerfFault> {
        for w in &self.windows {
            if !Self::active(w, now_ms) {
                continue;
            }
            let fault = match w.kind {
                FaultKind::PerfDropout => PerfFault::Dropout,
                FaultKind::PerfNan => PerfFault::Nan,
                FaultKind::PerfZero => PerfFault::Zero,
                FaultKind::PerfSpike(k) => PerfFault::Spike(k),
                _ => continue,
            };
            if w.probability >= 1.0 || self.rng.gen_bool(w.probability) {
                match fault {
                    PerfFault::Dropout => self.stats.perf_dropouts += 1,
                    _ => self.stats.perf_corrupted += 1,
                }
                return Some(fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(), 1);
        assert!(inj.is_empty());
        for t in 0..100 {
            let a = inj.on_tick(t);
            assert!(a.governor_reset.is_none());
            assert!(a.set_cores.is_none());
            assert!(a.thermal_ceiling.is_none());
            assert!(!a.restore_cores);
            assert!(inj.intercept_write(t, "/sys/x").is_none());
            assert!(inj.perf_fault(t).is_none());
        }
        assert_eq!(*inj.stats(), FaultStats::default());
    }

    #[test]
    fn busy_window_rejects_only_inside() {
        let plan = FaultPlan::new().window(10, 20, FaultKind::SysfsBusy);
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.intercept_write(9, "/sys/x").is_none());
        assert!(matches!(
            inj.intercept_write(10, "/sys/x"),
            Some(SocError::Busy(_))
        ));
        assert!(matches!(
            inj.intercept_write(19, "/sys/x"),
            Some(SocError::Busy(_))
        ));
        assert!(inj.intercept_write(20, "/sys/x").is_none());
        assert_eq!(inj.stats().sysfs_busy, 2);
    }

    #[test]
    fn governor_reset_fires_once() {
        let plan = FaultPlan::new().window(50, 60, FaultKind::GovernorReset("interactive".into()));
        let mut inj = FaultInjector::new(plan, 7);
        let mut resets = 0;
        for t in 0..100 {
            if inj.on_tick(t).governor_reset.is_some() {
                resets += 1;
            }
        }
        assert_eq!(resets, 1);
        assert_eq!(inj.stats().governor_resets, 1);
    }

    #[test]
    fn thermal_ceiling_takes_the_minimum() {
        let plan = FaultPlan::new()
            .window(0, 100, FaultKind::ThermalClamp(9))
            .window(50, 100, FaultKind::ThermalClamp(4));
        let inj = FaultInjector::new(plan, 7);
        assert_eq!(inj.thermal_ceiling(10), Some(9));
        assert_eq!(inj.thermal_ceiling(60), Some(4));
        assert_eq!(inj.thermal_ceiling(100), None);
    }

    #[test]
    fn hotplug_sets_and_restores() {
        let plan = FaultPlan::new().window(10, 20, FaultKind::Hotplug(2.0));
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.on_tick(5).set_cores.is_none());
        assert_eq!(inj.on_tick(10).set_cores, Some(2.0));
        assert_eq!(inj.on_tick(19).set_cores, Some(2.0));
        let a = inj.on_tick(20);
        assert!(a.set_cores.is_none());
        assert!(a.restore_cores);
        assert!(!inj.on_tick(21).restore_cores);
        assert_eq!(inj.stats().hotplug_changes, 2);
    }

    #[test]
    fn perf_faults_map_to_kinds() {
        let plan = FaultPlan::new()
            .window(0, 10, FaultKind::PerfNan)
            .window(10, 20, FaultKind::PerfZero)
            .window(20, 30, FaultKind::PerfSpike(10.0))
            .window(30, 40, FaultKind::PerfDropout);
        let mut inj = FaultInjector::new(plan, 7);
        assert_eq!(inj.perf_fault(5), Some(PerfFault::Nan));
        assert_eq!(inj.perf_fault(15), Some(PerfFault::Zero));
        assert_eq!(inj.perf_fault(25), Some(PerfFault::Spike(10.0)));
        assert_eq!(inj.perf_fault(35), Some(PerfFault::Dropout));
        assert_eq!(inj.perf_fault(45), None);
        assert_eq!(inj.stats().perf_corrupted, 3);
        assert_eq!(inj.stats().perf_dropouts, 1);
    }

    #[test]
    fn stochastic_faults_replay_per_seed() {
        let plan = || FaultPlan::new().window_p(0, 1000, 0.5, FaultKind::SysfsBusy);
        let run = |seed| {
            let mut inj = FaultInjector::new(plan(), seed);
            (0..1000)
                .map(|t| inj.intercept_write(t, "/sys/x").is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
        // p = 0.5 actually fires about half the time.
        let hits = run(3).iter().filter(|&&b| b).count();
        assert!((300..700).contains(&hits), "p=0.5 fired {hits}/1000");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::SysfsBusy.label(), "sysfs-busy");
        assert_eq!(
            FaultKind::GovernorReset("x".into()).label(),
            "governor-reset"
        );
        assert_eq!(FaultKind::ThermalClamp(3).label(), "thermal-clamp");
        assert_eq!(FaultKind::Hotplug(2.0).label(), "hotplug");
    }
}
