//! Deterministic fault injection for the simulated device.
//!
//! The paper's controller runs as a userspace daemon on a rooted phone
//! and the device is *not* cooperative: sysfs writes get transiently
//! rejected, other agents (an updater, `thermal-engine`, a curious
//! user) reset the cpufreq governor, `perf` drops or corrupts samples,
//! `msm-thermal` silently clamps `scaling_setspeed`, and `mpdecision`
//! hotplugs cores. This module models those pathologies as a
//! [`FaultPlan`] — a set of time windows, each injecting one
//! [`FaultKind`] — executed by a [`FaultInjector`] that is installed
//! into a [`Device`](crate::Device) with
//! [`Device::install_faults`](crate::Device::install_faults).
//!
//! Everything is **replayable bit-for-bit from `(seed, plan)`**: all
//! stochastic decisions draw from one vendored [`asgov_util::Rng`]
//! owned by the injector, in device-tick order. A device with no
//! injector — or an injector with an empty plan — behaves *identically*
//! to one built before this module existed: the fault layer draws no
//! randomness and intercepts nothing unless a window is configured.
//!
//! # Example
//!
//! ```
//! use asgov_soc::faults::{FaultInjector, FaultKind, FaultPlan};
//! use asgov_soc::{Device, DeviceConfig};
//!
//! // Between t = 5 s and t = 8 s, every sysfs write fails with EBUSY.
//! let plan = FaultPlan::new()
//!     .window(5_000, 8_000, FaultKind::SysfsBusy)
//!     .expect("valid window");
//! let mut device = Device::new(DeviceConfig::nexus6());
//! device.install_faults(FaultInjector::new(plan, 0xfau64));
//! ```

use crate::error::SocError;

use asgov_util::Rng;

/// What a fault window injects while active.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Every sysfs write fails with [`SocError::Busy`] (the kernel's
    /// transient `-EBUSY`), subject to the window's probability.
    SysfsBusy,
    /// One-shot: at the window start an external agent writes this
    /// governor into `scaling_governor`, kicking the controller off the
    /// `userspace` policy (e.g. `"interactive"`).
    GovernorReset(String),
    /// Perf readings are lost (the sampling window closes with no
    /// sample delivered).
    PerfDropout,
    /// Perf readings come back NaN (a torn read of the counter file).
    PerfNan,
    /// Perf readings come back zero (counter reset underneath the
    /// reader).
    PerfZero,
    /// Perf readings are multiplied by this factor (wrap/scaling bug;
    /// use a large factor for spikes, a tiny one for dips).
    PerfSpike(f64),
    /// msm-thermal-style mitigation: the CPU frequency is silently
    /// clamped to at most this frequency *index*; `scaling_setspeed`
    /// writes still report success.
    ThermalClamp(usize),
    /// mpdecision-style hotplug: the online core count is forced to
    /// this value while the window is active and restored afterwards.
    Hotplug(f64),
    /// Process-level: the controller daemon is killed (LMK/OOM kill,
    /// app-triggered restart). One-shot per window, fired at the window
    /// start subject to the window's probability; the device latches it
    /// and a supervising harness consumes it through
    /// [`Device::take_pending_kill`](crate::Device::take_pending_kill).
    /// The device hardware itself keeps running with whatever
    /// configuration the dead controller last applied.
    ControllerKill,
    /// Level-triggered: checkpoint images written while the window is
    /// active are corrupted (torn write / bad flash block). Queried by
    /// the supervisor through
    /// [`Device::draw_checkpoint_corrupt`](crate::Device::draw_checkpoint_corrupt)
    /// at each checkpoint write, subject to the window's probability.
    CheckpointCorrupt,
    /// Level-triggered: the wall clock jumped (NTP step, timezone
    /// change, suspend/resume drift) while the window is active, so
    /// checkpoint timestamps cannot be trusted; a supervisor must
    /// refuse warm restore and fall back to a cold restart. Queried
    /// through [`Device::draw_clock_jump`](crate::Device::draw_clock_jump).
    ClockJump,
}

impl FaultKind {
    /// Short machine-readable class label (used by fault-matrix
    /// reports).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SysfsBusy => "sysfs-busy",
            FaultKind::GovernorReset(_) => "governor-reset",
            FaultKind::PerfDropout => "perf-dropout",
            FaultKind::PerfNan => "perf-nan",
            FaultKind::PerfZero => "perf-zero",
            FaultKind::PerfSpike(_) => "perf-spike",
            FaultKind::ThermalClamp(_) => "thermal-clamp",
            FaultKind::Hotplug(_) => "hotplug",
            FaultKind::ControllerKill => "controller-kill",
            FaultKind::CheckpointCorrupt => "checkpoint-corrupt",
            FaultKind::ClockJump => "clock-jump",
        }
    }
}

/// One fault, active over `[start_ms, end_ms)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// First active millisecond.
    pub start_ms: u64,
    /// First millisecond *past* the window.
    pub end_ms: u64,
    /// Per-opportunity firing probability in `[0, 1]`. `1.0` fires on
    /// every opportunity (deterministic scheduling); lower values fire
    /// stochastically from the injector's seeded RNG. Ignored by
    /// [`FaultKind::ThermalClamp`] and [`FaultKind::Hotplug`], which
    /// are level-triggered states rather than discrete events.
    pub probability: f64,
    /// The fault injected.
    pub kind: FaultKind,
}

/// A [`FaultPlan`] construction error. Invalid windows used to be
/// accepted silently (an inverted window simply never fired); they are
/// now rejected at build time with a `Result`, matching the
/// Result-not-panic precedent of `LoadModel::table_for`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// `start_ms >= end_ms`: the window could never become active.
    InvertedWindow {
        /// The window's first active millisecond.
        start_ms: u64,
        /// The window's (not-after-start) end millisecond.
        end_ms: u64,
    },
    /// Windows must be appended in non-decreasing `start_ms` order:
    /// overlapping windows draw injector randomness in vector order, so
    /// an out-of-order plan replays a different RNG stream than its
    /// sorted twin while describing the same schedule.
    OutOfOrder {
        /// Start of the previously appended window.
        prev_start_ms: u64,
        /// Start of the offending (earlier) window.
        start_ms: u64,
    },
    /// The firing probability is NaN or infinite.
    BadProbability(f64),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::InvertedWindow { start_ms, end_ms } => {
                write!(f, "inverted fault window [{start_ms}, {end_ms}) ms")
            }
            FaultPlanError::OutOfOrder {
                prev_start_ms,
                start_ms,
            } => write!(
                f,
                "fault window starting at {start_ms} ms appended after one starting at \
                 {prev_start_ms} ms (windows must be in non-decreasing start order)"
            ),
            FaultPlanError::BadProbability(p) => {
                write!(f, "fault probability {p} is not finite")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative, replayable set of fault windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The fault windows, in non-decreasing `start_ms` order.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Add a window that always fires while active.
    ///
    /// # Errors
    ///
    /// Rejects inverted (`start_ms >= end_ms`) windows and windows
    /// appended out of `start_ms` order — see [`FaultPlanError`].
    pub fn window(
        self,
        start_ms: u64,
        end_ms: u64,
        kind: FaultKind,
    ) -> Result<Self, FaultPlanError> {
        self.window_p(start_ms, end_ms, 1.0, kind)
    }

    /// Add a window firing with the given per-opportunity probability
    /// (clamped to `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Rejects inverted (`start_ms >= end_ms`) windows, windows
    /// appended out of `start_ms` order, and non-finite probabilities —
    /// see [`FaultPlanError`].
    pub fn window_p(
        mut self,
        start_ms: u64,
        end_ms: u64,
        probability: f64,
        kind: FaultKind,
    ) -> Result<Self, FaultPlanError> {
        if start_ms >= end_ms {
            return Err(FaultPlanError::InvertedWindow { start_ms, end_ms });
        }
        if !probability.is_finite() {
            return Err(FaultPlanError::BadProbability(probability));
        }
        if let Some(prev) = self.windows.last() {
            if start_ms < prev.start_ms {
                return Err(FaultPlanError::OutOfOrder {
                    prev_start_ms: prev.start_ms,
                    start_ms,
                });
            }
        }
        self.windows.push(FaultWindow {
            start_ms,
            end_ms,
            probability: probability.clamp(0.0, 1.0),
            kind,
        });
        Ok(self)
    }

    /// Validate a hand-assembled plan (the `windows` field is public, so
    /// the builder checks can be bypassed) against the same invariants
    /// [`FaultPlan::window_p`] enforces.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`] found, scanning in vector order.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let mut prev_start: Option<u64> = None;
        for w in &self.windows {
            if w.start_ms >= w.end_ms {
                return Err(FaultPlanError::InvertedWindow {
                    start_ms: w.start_ms,
                    end_ms: w.end_ms,
                });
            }
            if !w.probability.is_finite() {
                return Err(FaultPlanError::BadProbability(w.probability));
            }
            if let Some(prev) = prev_start {
                if w.start_ms < prev {
                    return Err(FaultPlanError::OutOfOrder {
                        prev_start_ms: prev,
                        start_ms: w.start_ms,
                    });
                }
            }
            prev_start = Some(w.start_ms);
        }
        Ok(())
    }

    /// Earliest millisecond after `now_ms` at which the plan's
    /// tick-level behaviour may differ from its behaviour at `now_ms` —
    /// the event engine's fault clock domain. While *any* window is
    /// active this is the very next millisecond (active windows may draw
    /// randomness or act on every tick, so spans collapse to the exact
    /// per-tick sequence); otherwise it is the nearest upcoming window
    /// start or end, or [`u64::MAX`] for an empty/exhausted plan.
    pub fn next_event_ms(&self, now_ms: u64) -> u64 {
        let mut next = u64::MAX;
        for w in &self.windows {
            if (w.start_ms..w.end_ms).contains(&now_ms) {
                return now_ms.saturating_add(1);
            }
            if w.start_ms > now_ms {
                next = next.min(w.start_ms);
            }
            // The first millisecond *past* a window is also a boundary:
            // hotplug restore (and any level-triggered cleanup) fires on
            // the first inactive tick.
            if w.end_ms > now_ms {
                next = next.min(w.end_ms);
            }
        }
        next
    }
}

/// Cumulative injection counters (what the injector actually did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Sysfs writes rejected with [`SocError::Busy`].
    pub sysfs_busy: u64,
    /// Governor-reset events fired.
    pub governor_resets: u64,
    /// Perf readings dropped.
    pub perf_dropouts: u64,
    /// Perf readings corrupted (NaN, zero or spike).
    pub perf_corrupted: u64,
    /// `set_cpu_freq` requests clamped by the thermal ceiling.
    pub thermal_clamps: u64,
    /// Hotplug transitions applied (enter + leave).
    pub hotplug_changes: u64,
    /// Controller-kill events fired.
    pub controller_kills: u64,
    /// Checkpoint writes corrupted.
    pub checkpoint_corruptions: u64,
    /// Clock jumps observed by a restore attempt.
    pub clock_jumps: u64,
}

/// A perf-reading fault drawn for one sample (consumed by
/// [`PerfReader::poll`](crate::PerfReader::poll)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerfFault {
    /// Lose the reading.
    Dropout,
    /// Replace the reading with NaN.
    Nan,
    /// Replace the reading with zero.
    Zero,
    /// Multiply the reading by the factor.
    Spike(f64),
}

/// Side effects the injector asks the device to apply on a tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct TickActions {
    /// Write this governor into `scaling_governor` (one-shot reset).
    pub governor_reset: Option<String>,
    /// Force the online core count to this value.
    pub set_cores: Option<f64>,
    /// All hotplug windows just ended: restore the configured count.
    pub restore_cores: bool,
    /// Active thermal ceiling; the device pulls the current frequency
    /// down to it if necessary.
    pub thermal_ceiling: Option<usize>,
    /// The controller process is killed on this tick (one-shot); the
    /// device latches it until a supervisor consumes it.
    pub controller_kill: bool,
}

/// Executes a [`FaultPlan`] against a device, deterministically from
/// `(seed, plan)`. Install with
/// [`Device::install_faults`](crate::Device::install_faults).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    windows: Vec<FaultWindow>,
    /// Parallel to `windows`: one-shot windows that already fired.
    fired: Vec<bool>,
    rng: Rng,
    stats: FaultStats,
    hotplug_was_active: bool,
}

impl FaultInjector {
    /// Build an injector for `plan`, with its own RNG stream seeded
    /// from `seed` (independent of the device's measurement-noise
    /// streams, so installing an injector never perturbs them).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let n = plan.windows.len();
        Self {
            windows: plan.windows,
            fired: vec![false; n],
            rng: Rng::seed_from_u64(seed),
            stats: FaultStats::default(),
            hotplug_was_active: false,
        }
    }

    /// Whether the plan is empty (the injector can never do anything).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// What the injector has injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Earliest millisecond after `now_ms` at which injection behaviour
    /// may change — see [`FaultPlan::next_event_ms`]. Used by the event
    /// engine via [`Device::next_fault_boundary_ms`](crate::Device::next_fault_boundary_ms)
    /// to collapse spans to single ticks inside active windows and to
    /// land exactly on window starts and ends.
    pub fn next_event_ms(&self, now_ms: u64) -> u64 {
        let mut next = u64::MAX;
        for w in &self.windows {
            if Self::active(w, now_ms) {
                return now_ms.saturating_add(1);
            }
            if w.start_ms > now_ms {
                next = next.min(w.start_ms);
            }
            if w.end_ms > now_ms {
                next = next.min(w.end_ms);
            }
        }
        next
    }

    fn active(w: &FaultWindow, now_ms: u64) -> bool {
        (w.start_ms..w.end_ms).contains(&now_ms)
    }

    /// Per-tick state changes (called by `Device::tick` before the
    /// tick executes).
    pub(crate) fn on_tick(&mut self, now_ms: u64) -> TickActions {
        let mut actions = TickActions::default();
        let mut hotplug_active = false;
        for (w, fired) in self.windows.iter().zip(self.fired.iter_mut()) {
            if !Self::active(w, now_ms) {
                continue;
            }
            match &w.kind {
                FaultKind::GovernorReset(gov) if !*fired => {
                    *fired = true;
                    if w.probability >= 1.0 || self.rng.gen_bool(w.probability) {
                        actions.governor_reset = Some(gov.clone());
                        self.stats.governor_resets += 1;
                    }
                }
                FaultKind::ControllerKill if !*fired => {
                    *fired = true;
                    if w.probability >= 1.0 || self.rng.gen_bool(w.probability) {
                        actions.controller_kill = true;
                        self.stats.controller_kills += 1;
                    }
                }
                FaultKind::ThermalClamp(ceiling) => {
                    let c = actions
                        .thermal_ceiling
                        .map_or(*ceiling, |p| p.min(*ceiling));
                    actions.thermal_ceiling = Some(c);
                }
                FaultKind::Hotplug(cores) => {
                    hotplug_active = true;
                    actions.set_cores = Some(*cores);
                    if !self.hotplug_was_active {
                        self.stats.hotplug_changes += 1;
                    }
                }
                _ => {}
            }
        }
        if self.hotplug_was_active && !hotplug_active {
            actions.restore_cores = true;
            self.stats.hotplug_changes += 1;
        }
        self.hotplug_was_active = hotplug_active;
        actions
    }

    /// Intercept a sysfs write: `Some(err)` rejects the write before it
    /// reaches the virtual tree.
    pub(crate) fn intercept_write(&mut self, now_ms: u64, path: &str) -> Option<SocError> {
        for w in &self.windows {
            if matches!(w.kind, FaultKind::SysfsBusy)
                && Self::active(w, now_ms)
                && (w.probability >= 1.0 || self.rng.gen_bool(w.probability))
            {
                self.stats.sysfs_busy += 1;
                return Some(SocError::Busy(path.to_string()));
            }
        }
        None
    }

    /// The thermal frequency ceiling active at `now_ms`, if any
    /// (lowest across overlapping clamp windows).
    pub(crate) fn thermal_ceiling(&self, now_ms: u64) -> Option<usize> {
        self.windows
            .iter()
            .filter(|w| Self::active(w, now_ms))
            .filter_map(|w| match w.kind {
                FaultKind::ThermalClamp(c) => Some(c),
                _ => None,
            })
            .min()
    }

    /// Record one request clamped by the ceiling.
    pub(crate) fn note_thermal_clamp(&mut self) {
        self.stats.thermal_clamps += 1;
    }

    /// Whether a checkpoint image written at `now_ms` gets corrupted
    /// (probability-gated per active [`FaultKind::CheckpointCorrupt`]
    /// window; draws from the injector's RNG stream, so call it only
    /// when a checkpoint is actually being written).
    pub(crate) fn checkpoint_corrupt(&mut self, now_ms: u64) -> bool {
        for w in &self.windows {
            if matches!(w.kind, FaultKind::CheckpointCorrupt)
                && Self::active(w, now_ms)
                && (w.probability >= 1.0 || self.rng.gen_bool(w.probability))
            {
                self.stats.checkpoint_corruptions += 1;
                return true;
            }
        }
        false
    }

    /// Whether a restore attempted at `now_ms` observes a clock jump
    /// (probability-gated per active [`FaultKind::ClockJump`] window;
    /// draws from the injector's RNG stream, so call it only when a
    /// restore is actually being attempted).
    pub(crate) fn clock_jump(&mut self, now_ms: u64) -> bool {
        for w in &self.windows {
            if matches!(w.kind, FaultKind::ClockJump)
                && Self::active(w, now_ms)
                && (w.probability >= 1.0 || self.rng.gen_bool(w.probability))
            {
                self.stats.clock_jumps += 1;
                return true;
            }
        }
        false
    }

    /// Draw the fault (if any) afflicting a perf reading at `now_ms`.
    pub(crate) fn perf_fault(&mut self, now_ms: u64) -> Option<PerfFault> {
        for w in &self.windows {
            if !Self::active(w, now_ms) {
                continue;
            }
            let fault = match w.kind {
                FaultKind::PerfDropout => PerfFault::Dropout,
                FaultKind::PerfNan => PerfFault::Nan,
                FaultKind::PerfZero => PerfFault::Zero,
                FaultKind::PerfSpike(k) => PerfFault::Spike(k),
                _ => continue,
            };
            if w.probability >= 1.0 || self.rng.gen_bool(w.probability) {
                match fault {
                    PerfFault::Dropout => self.stats.perf_dropouts += 1,
                    _ => self.stats.perf_corrupted += 1,
                }
                return Some(fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(), 1);
        assert!(inj.is_empty());
        for t in 0..100 {
            let a = inj.on_tick(t);
            assert!(a.governor_reset.is_none());
            assert!(a.set_cores.is_none());
            assert!(a.thermal_ceiling.is_none());
            assert!(!a.restore_cores);
            assert!(!a.controller_kill);
            assert!(inj.intercept_write(t, "/sys/x").is_none());
            assert!(inj.perf_fault(t).is_none());
            assert!(!inj.checkpoint_corrupt(t));
            assert!(!inj.clock_jump(t));
        }
        assert_eq!(*inj.stats(), FaultStats::default());
    }

    #[test]
    fn busy_window_rejects_only_inside() {
        let plan = FaultPlan::new()
            .window(10, 20, FaultKind::SysfsBusy)
            .expect("valid window");
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.intercept_write(9, "/sys/x").is_none());
        assert!(matches!(
            inj.intercept_write(10, "/sys/x"),
            Some(SocError::Busy(_))
        ));
        assert!(matches!(
            inj.intercept_write(19, "/sys/x"),
            Some(SocError::Busy(_))
        ));
        assert!(inj.intercept_write(20, "/sys/x").is_none());
        assert_eq!(inj.stats().sysfs_busy, 2);
    }

    #[test]
    fn governor_reset_fires_once() {
        let plan = FaultPlan::new()
            .window(50, 60, FaultKind::GovernorReset("interactive".into()))
            .expect("valid window");
        let mut inj = FaultInjector::new(plan, 7);
        let mut resets = 0;
        for t in 0..100 {
            if inj.on_tick(t).governor_reset.is_some() {
                resets += 1;
            }
        }
        assert_eq!(resets, 1);
        assert_eq!(inj.stats().governor_resets, 1);
    }

    #[test]
    fn thermal_ceiling_takes_the_minimum() {
        let plan = FaultPlan::new()
            .window(0, 100, FaultKind::ThermalClamp(9))
            .and_then(|p| p.window(50, 100, FaultKind::ThermalClamp(4)))
            .expect("valid windows");
        let inj = FaultInjector::new(plan, 7);
        assert_eq!(inj.thermal_ceiling(10), Some(9));
        assert_eq!(inj.thermal_ceiling(60), Some(4));
        assert_eq!(inj.thermal_ceiling(100), None);
    }

    #[test]
    fn hotplug_sets_and_restores() {
        let plan = FaultPlan::new()
            .window(10, 20, FaultKind::Hotplug(2.0))
            .expect("valid window");
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.on_tick(5).set_cores.is_none());
        assert_eq!(inj.on_tick(10).set_cores, Some(2.0));
        assert_eq!(inj.on_tick(19).set_cores, Some(2.0));
        let a = inj.on_tick(20);
        assert!(a.set_cores.is_none());
        assert!(a.restore_cores);
        assert!(!inj.on_tick(21).restore_cores);
        assert_eq!(inj.stats().hotplug_changes, 2);
    }

    #[test]
    fn perf_faults_map_to_kinds() {
        let plan = FaultPlan::new()
            .window(0, 10, FaultKind::PerfNan)
            .and_then(|p| p.window(10, 20, FaultKind::PerfZero))
            .and_then(|p| p.window(20, 30, FaultKind::PerfSpike(10.0)))
            .and_then(|p| p.window(30, 40, FaultKind::PerfDropout))
            .expect("valid windows");
        let mut inj = FaultInjector::new(plan, 7);
        assert_eq!(inj.perf_fault(5), Some(PerfFault::Nan));
        assert_eq!(inj.perf_fault(15), Some(PerfFault::Zero));
        assert_eq!(inj.perf_fault(25), Some(PerfFault::Spike(10.0)));
        assert_eq!(inj.perf_fault(35), Some(PerfFault::Dropout));
        assert_eq!(inj.perf_fault(45), None);
        assert_eq!(inj.stats().perf_corrupted, 3);
        assert_eq!(inj.stats().perf_dropouts, 1);
    }

    #[test]
    fn stochastic_faults_replay_per_seed() {
        let plan = || {
            FaultPlan::new()
                .window_p(0, 1000, 0.5, FaultKind::SysfsBusy)
                .expect("valid window")
        };
        let run = |seed| {
            let mut inj = FaultInjector::new(plan(), seed);
            (0..1000)
                .map(|t| inj.intercept_write(t, "/sys/x").is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
        // p = 0.5 actually fires about half the time.
        let hits = run(3).iter().filter(|&&b| b).count();
        assert!((300..700).contains(&hits), "p=0.5 fired {hits}/1000");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::SysfsBusy.label(), "sysfs-busy");
        assert_eq!(
            FaultKind::GovernorReset("x".into()).label(),
            "governor-reset"
        );
        assert_eq!(FaultKind::ThermalClamp(3).label(), "thermal-clamp");
        assert_eq!(FaultKind::Hotplug(2.0).label(), "hotplug");
        assert_eq!(FaultKind::ControllerKill.label(), "controller-kill");
        assert_eq!(FaultKind::CheckpointCorrupt.label(), "checkpoint-corrupt");
        assert_eq!(FaultKind::ClockJump.label(), "clock-jump");
    }

    #[test]
    fn controller_kill_fires_once_at_window_start() {
        let plan = FaultPlan::new()
            .window(50, 60, FaultKind::ControllerKill)
            .expect("valid window");
        let mut inj = FaultInjector::new(plan, 7);
        let mut kills = vec![];
        for t in 0..100 {
            if inj.on_tick(t).controller_kill {
                kills.push(t);
            }
        }
        assert_eq!(kills, vec![50], "one-shot at the window start");
        assert_eq!(inj.stats().controller_kills, 1);
    }

    #[test]
    fn improbable_controller_kill_may_not_fire() {
        let plan = FaultPlan::new()
            .window_p(10, 20, 0.0, FaultKind::ControllerKill)
            .expect("valid window");
        let mut inj = FaultInjector::new(plan, 7);
        for t in 0..50 {
            assert!(!inj.on_tick(t).controller_kill);
        }
        assert_eq!(inj.stats().controller_kills, 0);
    }

    #[test]
    fn checkpoint_corrupt_and_clock_jump_are_window_scoped() {
        let plan = FaultPlan::new()
            .window(10, 20, FaultKind::CheckpointCorrupt)
            .and_then(|p| p.window(30, 40, FaultKind::ClockJump))
            .expect("valid windows");
        let mut inj = FaultInjector::new(plan, 7);
        assert!(!inj.checkpoint_corrupt(9));
        assert!(inj.checkpoint_corrupt(10));
        assert!(inj.checkpoint_corrupt(19));
        assert!(!inj.checkpoint_corrupt(20));
        assert!(!inj.clock_jump(29));
        assert!(inj.clock_jump(30));
        assert!(!inj.clock_jump(40));
        assert_eq!(inj.stats().checkpoint_corruptions, 2);
        assert_eq!(inj.stats().clock_jumps, 1);
    }

    #[test]
    fn inverted_window_is_rejected() {
        let err = FaultPlan::new()
            .window(20, 10, FaultKind::SysfsBusy)
            .expect_err("inverted window must be rejected");
        assert_eq!(
            err,
            FaultPlanError::InvertedWindow {
                start_ms: 20,
                end_ms: 10
            }
        );
        // An empty window (start == end) is equally impossible.
        let err = FaultPlan::new()
            .window(10, 10, FaultKind::SysfsBusy)
            .expect_err("empty window must be rejected");
        assert!(matches!(err, FaultPlanError::InvertedWindow { .. }));
    }

    #[test]
    fn out_of_order_windows_are_rejected() {
        let err = FaultPlan::new()
            .window(100, 200, FaultKind::SysfsBusy)
            .and_then(|p| p.window(50, 80, FaultKind::PerfDropout))
            .expect_err("out-of-order windows must be rejected");
        assert_eq!(
            err,
            FaultPlanError::OutOfOrder {
                prev_start_ms: 100,
                start_ms: 50
            }
        );
        // Equal starts are fine (overlap in declaration order).
        assert!(FaultPlan::new()
            .window(100, 200, FaultKind::SysfsBusy)
            .and_then(|p| p.window(100, 150, FaultKind::PerfDropout))
            .is_ok());
    }

    #[test]
    fn non_finite_probability_is_rejected() {
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FaultPlan::new()
                .window_p(0, 10, p, FaultKind::SysfsBusy)
                .expect_err("non-finite probability must be rejected");
            assert!(matches!(err, FaultPlanError::BadProbability(_)));
        }
        // In-range finite values still clamp rather than error.
        let plan = FaultPlan::new()
            .window_p(0, 10, 7.5, FaultKind::SysfsBusy)
            .expect("finite probability clamps");
        assert!((plan.windows[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_checks_hand_built_plans() {
        let ok = FaultPlan {
            windows: vec![
                FaultWindow {
                    start_ms: 0,
                    end_ms: 10,
                    probability: 1.0,
                    kind: FaultKind::SysfsBusy,
                },
                FaultWindow {
                    start_ms: 5,
                    end_ms: 30,
                    probability: 0.5,
                    kind: FaultKind::PerfDropout,
                },
            ],
        };
        assert!(ok.validate().is_ok());

        let inverted = FaultPlan {
            windows: vec![FaultWindow {
                start_ms: 10,
                end_ms: 10,
                probability: 1.0,
                kind: FaultKind::SysfsBusy,
            }],
        };
        assert!(matches!(
            inverted.validate(),
            Err(FaultPlanError::InvertedWindow { .. })
        ));

        let unordered = FaultPlan {
            windows: vec![
                FaultWindow {
                    start_ms: 50,
                    end_ms: 60,
                    probability: 1.0,
                    kind: FaultKind::SysfsBusy,
                },
                FaultWindow {
                    start_ms: 0,
                    end_ms: 10,
                    probability: 1.0,
                    kind: FaultKind::SysfsBusy,
                },
            ],
        };
        assert!(matches!(
            unordered.validate(),
            Err(FaultPlanError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn kill_window_is_an_event_boundary() {
        let plan = FaultPlan::new()
            .window(500, 510, FaultKind::ControllerKill)
            .expect("valid window");
        assert_eq!(plan.next_event_ms(0), 500);
        assert_eq!(plan.next_event_ms(500), 501, "active window ⇒ 1 ms spans");
        assert_eq!(plan.next_event_ms(509), 510);
        assert_eq!(plan.next_event_ms(510), u64::MAX);
    }
}
