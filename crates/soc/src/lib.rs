//! # asgov-soc — simulated mobile SoC substrate
//!
//! This crate models the hardware/OS substrate that the HPCA'17 paper
//! *"Application-Specific Performance-Aware Energy Optimization on Android
//! Mobile Devices"* ran on: a Nexus 6 smartphone with a Qualcomm
//! Snapdragon 805 SoC (quad-core Krait 450 CPU with 18 DVFS frequencies,
//! a memory bus with 13 bandwidth settings), a Monsoon power monitor and
//! the Linux `cpufreq`/`devfreq` sysfs interface.
//!
//! Everything the online controller and the baseline governors observe or
//! actuate goes through this crate:
//!
//! - [`DvfsTable`] — the exact frequency/bandwidth ladders of Table II of
//!   the paper, plus a Krait-like voltage ladder.
//! - [`Device`] — a discrete-time (1 ms tick) whole-device simulator with
//!   a roofline performance model and a component-wise power model.
//! - [`Pmu`] — per-core retired-instruction counters, read through
//!   [`PerfReader`] which models the `perf` tool's sampling period,
//!   computational overhead and measurement noise.
//! - [`PowerMonitor`] — a Monsoon-style whole-device power sampler.
//! - [`sysfs`] — a virtual `/sys` tree with the same write-to-actuate
//!   semantics as Linux (`scaling_setspeed` only works under the
//!   `userspace` governor).
//! - [`Workload`] — the trait through which application models (see the
//!   `asgov-workloads` crate) present per-tick instruction demand.
//! - [`Policy`] — the trait through which governors and controllers
//!   (see `asgov-governors` / `asgov-core`) are stepped by the
//!   simulation harness in [`sim`].
//!
//! # Example
//!
//! ```
//! use asgov_soc::{Device, DeviceConfig, ConstantWorkload, sim};
//!
//! let mut device = Device::new(DeviceConfig::nexus6());
//! // A synthetic workload that always wants 1.5 GIPS of compute-heavy work.
//! let mut app = ConstantWorkload::new("toy", 1.5, 1.4, 4.0);
//! let report = sim::run(&mut device, &mut app, &mut [], 2_000);
//! assert!(report.energy_j > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod battery;
mod device;
mod dvfs;
mod error;
pub mod event;
pub mod faults;
pub mod gpu;
mod health;
mod monitor;
pub mod net;
mod perf;
mod pmu;
mod power;
pub mod sim;
pub mod sysfs;
pub mod trace;
mod workload;

pub use battery::Battery;
pub use device::{Device, DeviceConfig, DeviceStats, TickOutcome};
pub use dvfs::{
    BwIndex, CpuFreq, DvfsTable, FreqIndex, MemBw, NEXUS6_CPU_FREQS_GHZ, NEXUS6_MEM_BWS_MBPS,
};
pub use error::{SocError, SocErrorKind};
pub use faults::{
    FaultInjector, FaultKind, FaultPlan, FaultPlanError, FaultStats, FaultWindow, PerfFault,
};
pub use gpu::{Gpu, GpuFreqIndex};
pub use health::{DegradationLevel, HealthReport};
pub use monitor::{PowerMonitor, PowerSample};
pub use net::{NetRateIndex, Radio};
pub use perf::{PerfReader, PerfReading};
pub use pmu::Pmu;
pub use power::{PowerBreakdown, PowerModel, PowerModelParams};
pub use trace::{Trace, TraceEvent, TraceRecord};
pub use workload::{BackgroundDemand, ConstantWorkload, Demand, Executed, Workload};

/// Trait implemented by DVFS governors and by the online controller.
///
/// A policy is stepped once per simulated millisecond *after* the device
/// has executed that tick. Policies keep their own notion of sampling
/// cadence by inspecting [`Device::now_ms`]. Policies actuate either
/// through the internal driver interface ([`Device::set_cpu_freq`],
/// [`Device::set_mem_bw`]) — as in-kernel governors do — or through the
/// virtual sysfs tree ([`Device::sysfs_write`]) as user-space controllers
/// do.
pub trait Policy {
    /// Short human-readable policy name (e.g. `"interactive"`).
    fn name(&self) -> &str;

    /// Called once before the simulation starts.
    fn start(&mut self, _device: &mut Device) {}

    /// Called once per simulated millisecond, after the device tick.
    fn tick(&mut self, device: &mut Device);

    /// Called once after the simulation ends.
    fn finish(&mut self, _device: &mut Device) {}

    /// Health summary for hardened policies (see [`HealthReport`]).
    /// Plain governors return `None`; resilient controllers report their
    /// fault counters and degradation state so the harness can attach
    /// them to the [`sim::RunReport`].
    fn health(&self) -> Option<HealthReport> {
        None
    }

    /// Earliest simulated millisecond at which the next [`Policy::tick`]
    /// may do anything other than return immediately. The event engine
    /// ([`event::run`]) skips straight to this time; the contract is that
    /// every `tick` strictly before it must be a pure no-op (no device
    /// writes, no internal state change, no RNG draws). The conservative
    /// default — the very next millisecond — keeps every existing policy
    /// correct; sampling governors override it with their next sampling
    /// deadline. Return [`u64::MAX`] for policies whose `tick` never does
    /// anything.
    fn next_event_ms(&self, device: &Device) -> u64 {
        device.now_ms().saturating_add(1)
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn start(&mut self, device: &mut Device) {
        (**self).start(device);
    }
    fn tick(&mut self, device: &mut Device) {
        (**self).tick(device);
    }
    fn finish(&mut self, device: &mut Device) {
        (**self).finish(device);
    }
    fn health(&self) -> Option<HealthReport> {
        (**self).health()
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        (**self).next_event_ms(device)
    }
}

impl<P: Policy + ?Sized> Policy for &mut P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn start(&mut self, device: &mut Device) {
        (**self).start(device);
    }
    fn tick(&mut self, device: &mut Device) {
        (**self).tick(device);
    }
    fn finish(&mut self, device: &mut Device) {
        (**self).finish(device);
    }
    fn health(&self) -> Option<HealthReport> {
        (**self).health()
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        (**self).next_event_ms(device)
    }
}
