//! DVFS operating-point tables.
//!
//! The frequency and bandwidth ladders reproduce Table II of the paper —
//! the 18 CPU clock frequencies and 13 memory-bus bandwidths supported by
//! the Snapdragon 805 in the Nexus 6.

use std::fmt;

/// The 18 CPU clock frequencies (GHz) of the Nexus 6 (paper Table II).
pub const NEXUS6_CPU_FREQS_GHZ: [f64; 18] = [
    0.3000, 0.4224, 0.6528, 0.7296, 0.8832, 0.9600, 1.0368, 1.1904, 1.2672, 1.4976, 1.5744, 1.7280,
    1.9584, 2.2656, 2.4576, 2.4960, 2.5728, 2.6496,
];

/// The 13 memory-bus bandwidths (MBps) of the Nexus 6 (paper Table II).
pub const NEXUS6_MEM_BWS_MBPS: [f64; 13] = [
    762.0, 1144.0, 1525.0, 2288.0, 3051.0, 3952.0, 4684.0, 5996.0, 7019.0, 8056.0, 10101.0,
    12145.0, 16250.0,
];

/// Index into the CPU frequency ladder (0-based; the paper numbers 1–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FreqIndex(pub usize);

/// Index into the memory bandwidth ladder (0-based; the paper numbers 1–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BwIndex(pub usize);

impl fmt::Display for FreqIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display in the paper's 1-based numbering.
        write!(f, "f{}", self.0 + 1)
    }
}

impl fmt::Display for BwIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bw{}", self.0 + 1)
    }
}

/// A CPU clock frequency in GHz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CpuFreq(pub f64);

impl CpuFreq {
    /// Frequency in Hz.
    pub fn hz(self) -> f64 {
        self.0 * 1e9
    }

    /// Frequency in kHz, as exposed through `cpufreq` sysfs files.
    pub fn khz(self) -> u64 {
        (self.0 * 1e6).round() as u64
    }
}

impl fmt::Display for CpuFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} GHz", self.0)
    }
}

/// A memory-bus bandwidth in MBps.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MemBw(pub f64);

impl MemBw {
    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 * 1e6
    }
}

impl fmt::Display for MemBw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MBps", self.0)
    }
}

/// The DVFS operating points of a device: CPU frequency ladder, memory
/// bandwidth ladder, and the voltage at each CPU operating point.
///
/// # Example
///
/// ```
/// use asgov_soc::{DvfsTable, FreqIndex};
///
/// let table = DvfsTable::nexus6();
/// assert_eq!(table.num_freqs(), 18);
/// // The paper's frequency No. 10 — where the interactive governor's
/// // hispeed jump lands.
/// assert_eq!(table.freq(FreqIndex(9)).0, 1.4976);
/// assert_eq!(table.freq_at_least(1.3), FreqIndex(9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    freqs_ghz: Vec<f64>,
    bws_mbps: Vec<f64>,
    volts: Vec<f64>,
}

impl DvfsTable {
    /// Build a table from explicit frequency (GHz) and bandwidth (MBps)
    /// ladders. Voltages follow a Krait-like linear ladder
    /// `V(f) = 0.55 + 0.23·f` (≈ 0.62 V at 300 MHz to ≈ 1.16 V at
    /// 2.65 GHz, the 28 nm HPm envelope).
    ///
    /// # Panics
    ///
    /// Panics if either ladder is empty or not strictly increasing.
    pub fn new(freqs_ghz: &[f64], bws_mbps: &[f64]) -> Self {
        assert!(!freqs_ghz.is_empty(), "frequency ladder must be non-empty");
        assert!(!bws_mbps.is_empty(), "bandwidth ladder must be non-empty");
        assert!(
            // asgov-analyze: allow(hot-path-index): windows(2) yields exactly 2 elements
            freqs_ghz.windows(2).all(|w| w[0] < w[1]),
            "frequency ladder must be strictly increasing"
        );
        assert!(
            // asgov-analyze: allow(hot-path-index): windows(2) yields exactly 2 elements
            bws_mbps.windows(2).all(|w| w[0] < w[1]),
            "bandwidth ladder must be strictly increasing"
        );
        let volts = freqs_ghz.iter().map(|f| 0.55 + 0.23 * f).collect();
        Self {
            freqs_ghz: freqs_ghz.to_vec(),
            bws_mbps: bws_mbps.to_vec(),
            volts,
        }
    }

    /// The Nexus 6 / Snapdragon 805 table (paper Table II).
    pub fn nexus6() -> Self {
        Self::new(&NEXUS6_CPU_FREQS_GHZ, &NEXUS6_MEM_BWS_MBPS)
    }

    /// Number of CPU frequency operating points.
    pub fn num_freqs(&self) -> usize {
        self.freqs_ghz.len()
    }

    /// Number of memory bandwidth operating points.
    pub fn num_bws(&self) -> usize {
        self.bws_mbps.len()
    }

    /// The frequency at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn freq(&self, idx: FreqIndex) -> CpuFreq {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; indices come from this table
        CpuFreq(self.freqs_ghz[idx.0])
    }

    /// The bandwidth at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bw(&self, idx: BwIndex) -> MemBw {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; indices come from this table
        MemBw(self.bws_mbps[idx.0])
    }

    /// The CPU core voltage (V) at frequency index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn voltage(&self, idx: FreqIndex) -> f64 {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; indices come from this table
        self.volts[idx.0]
    }

    /// Lowest frequency index.
    pub fn min_freq(&self) -> FreqIndex {
        FreqIndex(0)
    }

    /// Highest frequency index.
    pub fn max_freq(&self) -> FreqIndex {
        FreqIndex(self.freqs_ghz.len() - 1)
    }

    /// Lowest bandwidth index.
    pub fn min_bw(&self) -> BwIndex {
        BwIndex(0)
    }

    /// Highest bandwidth index.
    pub fn max_bw(&self) -> BwIndex {
        BwIndex(self.bws_mbps.len() - 1)
    }

    /// Iterator over all frequency indices, lowest first.
    pub fn freq_indices(&self) -> impl Iterator<Item = FreqIndex> {
        (0..self.freqs_ghz.len()).map(FreqIndex)
    }

    /// Iterator over all bandwidth indices, lowest first.
    pub fn bw_indices(&self) -> impl Iterator<Item = BwIndex> {
        (0..self.bws_mbps.len()).map(BwIndex)
    }

    /// The smallest frequency index whose frequency is ≥ `ghz`, or the
    /// maximum index if `ghz` is above the ladder.
    pub fn freq_at_least(&self, ghz: f64) -> FreqIndex {
        match self.freqs_ghz.iter().position(|&f| f >= ghz) {
            Some(i) => FreqIndex(i),
            None => self.max_freq(),
        }
    }

    /// The smallest bandwidth index whose bandwidth is ≥ `mbps`, or the
    /// maximum index if `mbps` is above the ladder.
    pub fn bw_at_least(&self, mbps: f64) -> BwIndex {
        match self.bws_mbps.iter().position(|&b| b >= mbps) {
            Some(i) => BwIndex(i),
            None => self.max_bw(),
        }
    }

    /// Parse a frequency value in kHz (as written to `scaling_setspeed`)
    /// to the nearest exact ladder entry, if any.
    pub fn freq_from_khz(&self, khz: u64) -> Option<FreqIndex> {
        self.freqs_ghz
            .iter()
            .position(|&f| (f * 1e6).round() as u64 == khz)
            .map(FreqIndex)
    }

    /// Parse a bandwidth in MBps to the exact ladder entry, if any.
    pub fn bw_from_mbps(&self, mbps: u64) -> Option<BwIndex> {
        self.bws_mbps
            .iter()
            .position(|&b| b.round() as u64 == mbps)
            .map(BwIndex)
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        Self::nexus6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus6_ladder_sizes_match_paper() {
        let t = DvfsTable::nexus6();
        assert_eq!(t.num_freqs(), 18);
        assert_eq!(t.num_bws(), 13);
    }

    #[test]
    fn ladders_are_strictly_increasing() {
        let t = DvfsTable::nexus6();
        for w in NEXUS6_CPU_FREQS_GHZ.windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in NEXUS6_MEM_BWS_MBPS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(t.freq(t.min_freq()).0, 0.3);
        assert_eq!(t.freq(t.max_freq()).0, 2.6496);
        assert_eq!(t.bw(t.min_bw()).0, 762.0);
        assert_eq!(t.bw(t.max_bw()).0, 16250.0);
    }

    #[test]
    fn voltage_ladder_is_monotone() {
        let t = DvfsTable::nexus6();
        let v: Vec<f64> = t.freq_indices().map(|i| t.voltage(i)).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v[0] > 0.6 && v[v.len() - 1] < 1.2, "plausible Krait volts");
    }

    #[test]
    fn freq_at_least_finds_bracketing_point() {
        let t = DvfsTable::nexus6();
        assert_eq!(t.freq_at_least(0.0), FreqIndex(0));
        assert_eq!(t.freq_at_least(0.3), FreqIndex(0));
        assert_eq!(t.freq_at_least(0.31), FreqIndex(1));
        assert_eq!(t.freq_at_least(1.4976), FreqIndex(9));
        assert_eq!(t.freq_at_least(99.0), FreqIndex(17));
    }

    #[test]
    fn bw_at_least_finds_bracketing_point() {
        let t = DvfsTable::nexus6();
        assert_eq!(t.bw_at_least(0.0), BwIndex(0));
        assert_eq!(t.bw_at_least(763.0), BwIndex(1));
        assert_eq!(t.bw_at_least(1e9), BwIndex(12));
    }

    #[test]
    fn khz_round_trip() {
        let t = DvfsTable::nexus6();
        for i in t.freq_indices() {
            let khz = t.freq(i).khz();
            assert_eq!(t.freq_from_khz(khz), Some(i));
        }
        assert_eq!(t.freq_from_khz(123), None);
    }

    #[test]
    fn mbps_round_trip() {
        let t = DvfsTable::nexus6();
        for i in t.bw_indices() {
            let mbps = t.bw(i).0.round() as u64;
            assert_eq!(t.bw_from_mbps(mbps), Some(i));
        }
        assert_eq!(t.bw_from_mbps(1), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_ladder() {
        let _ = DvfsTable::new(&[1.0, 0.5], &[100.0]);
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(FreqIndex(9).to_string(), "f10");
        assert_eq!(BwIndex(0).to_string(), "bw1");
        assert_eq!(CpuFreq(1.4976).to_string(), "1.4976 GHz");
        assert_eq!(MemBw(762.0).to_string(), "762 MBps");
    }
}
