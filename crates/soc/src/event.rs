//! Event-driven simulation core: next-event time advance over the same
//! device model as the 1 ms tick core in [`crate::sim`].
//!
//! The tick core advances the clock one millisecond at a time and asks
//! every workload and policy what it wants on every tick — although the
//! controller of the paper only acts at 200 ms dwell boundaries and 2 s
//! control periods, and sampling governors every 10–100 ms. The event
//! engine instead merges four *clock domains* into a single next-event
//! horizon each iteration:
//!
//! 1. the workload's next demand change ([`Workload::next_event_ms`]),
//! 2. every policy's next non-trivial tick ([`Policy::next_event_ms`] —
//!    governor sampling deadlines, dwell boundaries, control periods),
//! 3. the fault plan's next window start/end
//!    ([`Device::next_fault_boundary_ms`]), and
//! 4. the end of the run,
//!
//! and executes the whole span to that horizon in one
//! [`Device::tick_span`] call, which evaluates the contention / roofline
//! / power model once and replays only the per-millisecond accumulator
//! additions. Every hook defaults to "the very next millisecond", so
//! any workload or policy that has not opted in degrades the engine to
//! exactly the tick core's 1 ms schedule.
//!
//! # Bit-identity
//!
//! [`run`] produces a [`RunReport`] bit-identical to [`crate::sim::run`]
//! for *any* combination of workloads, policies and fault plans, by
//! construction:
//!
//! - a source that keeps the default hook forces 1 ms spans, i.e. the
//!   tick core's exact call sequence;
//! - a source that advertises a longer horizon contracts that it is a
//!   pure no-op (no state change, no RNG draws, constant demand) at
//!   every interior millisecond, so skipping those calls is unobservable;
//! - [`Device::tick_span`] preserves the exact floating-point addition
//!   order of every per-millisecond accumulator (f64 addition is not
//!   associative, so sums are replayed, not hoisted), including the
//!   power monitor's per-sample noise draws;
//! - spans never cross a fault window edge, and collapse to 1 ms inside
//!   active windows, so injection behaviour (and its RNG stream) is
//!   untouched.
//!
//! The differential suites (`event.rs` unit tests, `tests/event_core.rs`
//! at the workspace root) assert `RunReport` equality — energy bits,
//! instruction bits, histograms, health — across apps, governors, the
//! hardened controller, fault plans and seeds.

use crate::device::Device;
use crate::sim::{collect_report, RunReport};
use crate::workload::Workload;
use crate::Policy;

/// Counters describing how much coalescing the engine achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Engine iterations executed (one `tick_span` each).
    pub events: u64,
    /// Simulated milliseconds covered by those events.
    pub simulated_ms: u64,
}

impl EngineStats {
    /// Mean span length in simulated milliseconds per event.
    pub fn mean_span_ms(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.simulated_ms as f64 / self.events as f64
        }
    }
}

/// Run `workload` on `device` under `policies` for at most `max_ms`
/// simulated milliseconds using next-event time advance. Drop-in
/// replacement for [`crate::sim::run`] with a bit-identical
/// [`RunReport`] (see the module docs for why).
pub fn run(
    device: &mut Device,
    workload: &mut dyn Workload,
    policies: &mut [&mut dyn Policy],
    max_ms: u64,
) -> RunReport {
    run_counted(device, workload, policies, max_ms).0
}

/// [`run`], additionally reporting the engine's event counters (used by
/// the bench harness to derive `events_per_sec`).
pub fn run_counted(
    device: &mut Device,
    workload: &mut dyn Workload,
    policies: &mut [&mut dyn Policy],
    max_ms: u64,
) -> (RunReport, EngineStats) {
    for p in policies.iter_mut() {
        p.start(device);
    }
    device.reset_stats();
    let start_ms = device.now_ms();
    let end_ms = start_ms.saturating_add(max_ms);

    let mut engine = EngineStats::default();
    let mut completed = false;
    while device.now_ms() < end_ms {
        let now = device.now_ms();
        let demand = workload.demand(now);

        // Merge the clock domains into the next-event horizon. Sources
        // are re-polled every iteration, so a policy whose deadline
        // moved (governor handoff, controller degradation) is always
        // honoured from the next event on; a horizon at or before `now`
        // degrades to a 1 ms span.
        let mut horizon = end_ms
            .min(workload.next_event_ms(now))
            .min(device.next_fault_boundary_ms(now));
        for p in policies.iter() {
            horizon = horizon.min(p.next_event_ms(device));
        }
        let span = horizon.saturating_sub(now).clamp(1, end_ms - now);

        let outcome = device.tick_span(&demand, span);
        workload.deliver_span(now, outcome.executed, span);
        for p in policies.iter_mut() {
            p.tick(device);
        }
        engine.events += 1;
        engine.simulated_ms += span;
        if workload.finished() {
            completed = true;
            break;
        }
    }

    (
        collect_report(device, workload, policies, max_ms, completed),
        engine,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::dvfs::FreqIndex;
    use crate::faults::{FaultInjector, FaultKind, FaultPlan};
    use crate::workload::{ConstantWorkload, Demand, Executed};

    /// A sampling policy that steps the frequency every `period_ms`,
    /// advertising its deadline to the event engine.
    struct Stepper {
        period_ms: u64,
        next_ms: u64,
        up: bool,
    }
    impl Stepper {
        fn new(period_ms: u64) -> Self {
            Self {
                period_ms,
                next_ms: 0,
                up: true,
            }
        }
    }
    impl Policy for Stepper {
        fn name(&self) -> &str {
            "stepper"
        }
        fn start(&mut self, device: &mut Device) {
            device.set_cpu_governor("userspace");
            self.next_ms = device.now_ms() + self.period_ms;
        }
        fn tick(&mut self, device: &mut Device) {
            if device.now_ms() < self.next_ms {
                return;
            }
            self.next_ms = device.now_ms() + self.period_ms;
            let cur = device.freq().0;
            let max = device.table().num_freqs() - 1;
            if cur == 0 {
                self.up = true;
            } else if cur == max {
                self.up = false;
            }
            let next = if self.up {
                (cur + 1).min(max)
            } else {
                cur.saturating_sub(1)
            };
            device.set_cpu_freq(FreqIndex(next));
        }
        fn next_event_ms(&self, device: &Device) -> u64 {
            self.next_ms.max(device.now_ms() + 1)
        }
    }

    /// A per-millisecond policy that keeps the conservative default
    /// hook (forces the engine down to 1 ms spans).
    struct EveryMs {
        ticks: u64,
    }
    impl Policy for EveryMs {
        fn name(&self) -> &str {
            "every-ms"
        }
        fn tick(&mut self, _device: &mut Device) {
            self.ticks += 1;
        }
    }

    /// Fixed-work workload with the default (1 ms) hooks.
    struct Batch {
        remaining: f64,
    }
    impl crate::workload::Workload for Batch {
        fn name(&self) -> &str {
            "batch"
        }
        fn demand(&mut self, _now_ms: u64) -> Demand {
            Demand {
                ipc0: 1.5,
                bytes_per_instr: 0.1,
                desired_gips: None,
                active_cores: 2.0,
                ..Demand::default()
            }
        }
        fn deliver(&mut self, _now_ms: u64, executed: Executed) {
            self.remaining -= executed.instructions;
        }
        fn finished(&self) -> bool {
            self.remaining <= 0.0
        }
        fn reset(&mut self) {
            self.remaining = 1e9;
        }
    }

    fn fault_plans() -> Vec<FaultPlan> {
        vec![
            FaultPlan::new(),
            FaultPlan::new()
                .window(500, 1_500, FaultKind::ThermalClamp(4))
                .and_then(|p| p.window(2_000, 2_600, FaultKind::Hotplug(2.0)))
                .expect("valid windows"),
            FaultPlan::new()
                .window_p(300, 2_800, 0.8, FaultKind::SysfsBusy)
                .and_then(|p| p.window(1_000, 1_001, FaultKind::GovernorReset("userspace".into())))
                .expect("valid windows"),
        ]
    }

    /// Noise on: the monitor's per-sample RNG stream must survive span
    /// coalescing bit-for-bit.
    #[test]
    fn event_core_matches_tick_core_with_noise_and_faults() {
        for (i, plan) in fault_plans().into_iter().enumerate() {
            for seed in [1u64, 2, 3] {
                let mut cfg = DeviceConfig::nexus6();
                cfg.seed = seed;
                let mk = |plan: &FaultPlan| {
                    let mut d = Device::new(cfg.clone());
                    if !plan.is_empty() {
                        d.install_faults(FaultInjector::new(plan.clone(), 0x5eed ^ seed));
                    }
                    d
                };

                let mut app = ConstantWorkload::new("toy", 0.6, 1.5, 1.0);
                let mut dev_tick = mk(&plan);
                let mut stepper = Stepper::new(50);
                let tick = crate::sim::run(&mut dev_tick, &mut app, &mut [&mut stepper], 3_000);

                let mut app = ConstantWorkload::new("toy", 0.6, 1.5, 1.0);
                let mut dev_event = mk(&plan);
                let mut stepper = Stepper::new(50);
                let (event, engine) =
                    run_counted(&mut dev_event, &mut app, &mut [&mut stepper], 3_000);

                assert_eq!(tick, event, "plan {i} seed {seed}");
                assert_eq!(
                    tick.energy_j.to_bits(),
                    event.energy_j.to_bits(),
                    "plan {i} seed {seed}: energy must be bit-identical"
                );
                assert_eq!(engine.simulated_ms, 3_000);
                if i == 0 {
                    // Without fault windows the engine must actually
                    // coalesce (50 ms sampling period ⇒ ~60 events).
                    assert!(
                        engine.events < 100,
                        "expected coalescing, got {} events",
                        engine.events
                    );
                }
            }
        }
    }

    #[test]
    fn default_hooks_degrade_to_tick_schedule() {
        let cfg = DeviceConfig::nexus6();

        let mut app = ConstantWorkload::new("toy", 0.3, 1.5, 1.0);
        let mut dev_tick = Device::new(cfg.clone());
        let mut per_ms = EveryMs { ticks: 0 };
        let tick = crate::sim::run(&mut dev_tick, &mut app, &mut [&mut per_ms], 1_000);
        let tick_ticks = per_ms.ticks;

        let mut app = ConstantWorkload::new("toy", 0.3, 1.5, 1.0);
        let mut dev_event = Device::new(cfg);
        let mut per_ms = EveryMs { ticks: 0 };
        let (event, engine) = run_counted(&mut dev_event, &mut app, &mut [&mut per_ms], 1_000);

        assert_eq!(tick, event);
        assert_eq!(per_ms.ticks, tick_ticks, "default hook ⇒ a tick every ms");
        assert_eq!(engine.events, 1_000);
    }

    #[test]
    fn finishing_workload_completes_identically() {
        let cfg = DeviceConfig::nexus6();

        let mut app = Batch { remaining: 1e9 };
        let mut dev_tick = Device::new(cfg.clone());
        let tick = crate::sim::run(&mut dev_tick, &mut app, &mut [], 60_000);
        assert!(tick.completed);

        app.reset();
        let mut dev_event = Device::new(cfg);
        let event = run(&mut dev_event, &mut app, &mut [], 60_000);
        assert_eq!(tick, event);
        assert!(event.completed && event.duration_ms < event.max_ms);
    }

    #[test]
    fn bare_steady_run_is_one_event() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        let mut app = ConstantWorkload::new("steady", 0.5, 1.5, 1.0);
        let mut device = Device::new(cfg);
        let (report, engine) = run_counted(&mut device, &mut app, &mut [], 20_000);
        assert_eq!(engine.events, 1, "no clock domain fires before the end");
        assert_eq!(report.duration_ms, 20_000);
        assert!(report.energy_j > 0.0);
    }
}
