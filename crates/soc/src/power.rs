//! The whole-device power model.
//!
//! The paper measures *whole-device* power with a Monsoon monitor (the
//! Snapdragon 805 has no energy counters), so this model produces total
//! device watts as the sum of component contributions:
//!
//! ```text
//! P = P_screen + P_wifi + P_rest + P_soc_static
//!   + P_cpu(f, V(f), busy_cores)          (leakage + dynamic CV²f)
//!   + P_mem(bw_setting, traffic)          (frequency floor + traffic)
//!   + P_extra (camera / ads / decoder) + P_background
//! ```
//!
//! The constants are calibrated so that the simulated device sits in the
//! 1.2 W (idle, screen on) … 6 W (peak with ads) band the paper reports.

use crate::dvfs::{BwIndex, DvfsTable, FreqIndex};

/// Tunable constants of the power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModelParams {
    /// Screen at the paper's fixed lowest brightness, watts.
    pub screen_w: f64,
    /// WiFi idle/associated power, watts.
    pub wifi_w: f64,
    /// Everything else on the board (PMIC, sensors, RAM refresh), watts.
    pub rest_w: f64,
    /// SoC static power independent of DVFS state, watts.
    pub soc_static_w: f64,
    /// CPU leakage coefficient per online core, W/V.
    pub cpu_leak_w_per_v: f64,
    /// CPU dynamic coefficient: W per (V² · GHz · busy-core).
    pub cpu_dyn_w_per_v2ghz: f64,
    /// Uncore (L2, interconnect, clock tree) power that scales with the
    /// CPU operating point but not with utilization, W per (V² · GHz).
    /// This is why merely *sitting* at a high frequency wastes energy —
    /// the waste the paper's Fig. 1 e-book experiment exposes.
    pub cpu_uncore_w_per_v2ghz: f64,
    /// Memory controller static power at the lowest bandwidth, watts.
    pub mem_static_w: f64,
    /// Memory power per MBps of *configured* bandwidth (bus/controller
    /// clock scales with the bandwidth setting), W/MBps.
    pub mem_bw_w_per_mbps: f64,
    /// Memory power per MBps of *actual* traffic, W/MBps.
    pub mem_traffic_w_per_mbps: f64,
}

impl Default for PowerModelParams {
    fn default() -> Self {
        Self::nexus6()
    }
}

impl PowerModelParams {
    /// Constants calibrated for the Nexus 6 envelope.
    pub fn nexus6() -> Self {
        Self {
            screen_w: 0.42,
            wifi_w: 0.06,
            rest_w: 0.20,
            soc_static_w: 0.14,
            cpu_leak_w_per_v: 0.045,
            cpu_dyn_w_per_v2ghz: 0.40,
            cpu_uncore_w_per_v2ghz: 0.20,
            mem_static_w: 0.05,
            mem_bw_w_per_mbps: 7.0e-5,
            mem_traffic_w_per_mbps: 6.0e-5,
        }
    }
}

/// Per-component power for one tick, watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Screen + WiFi + rest-of-board + SoC static.
    pub base_w: f64,
    /// CPU leakage + dynamic.
    pub cpu_w: f64,
    /// Memory controller + traffic.
    pub mem_w: f64,
    /// GPU (leakage + render).
    pub gpu_w: f64,
    /// Application events (camera, ads, hardware decoder).
    pub extra_w: f64,
    /// Background activity.
    pub background_w: f64,
}

impl PowerBreakdown {
    /// Total device power, watts.
    pub fn total_w(&self) -> f64 {
        self.base_w + self.cpu_w + self.mem_w + self.gpu_w + self.extra_w + self.background_w
    }
}

/// The whole-device power model. See the module docs for the equation.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    params: PowerModelParams,
}

impl PowerModel {
    /// Create a model with the given constants.
    pub fn new(params: PowerModelParams) -> Self {
        Self { params }
    }

    /// Access the model constants.
    pub fn params(&self) -> &PowerModelParams {
        &self.params
    }

    /// Compute the device power breakdown for one tick.
    ///
    /// * `busy_cores` — number of cores' worth of busy time this tick
    ///   (0.0 – 4.0), memory stalls included.
    /// * `traffic_mbps` — achieved bus traffic rate this tick.
    /// * `extra_w` / `background_w` — pass-through event power.
    // One argument per physical signal; bundling them into a struct
    // would just move the names one level down.
    #[allow(clippy::too_many_arguments)]
    pub fn power(
        &self,
        table: &DvfsTable,
        freq: FreqIndex,
        bw: BwIndex,
        online_cores: f64,
        busy_cores: f64,
        traffic_mbps: f64,
        extra_w: f64,
        background_w: f64,
    ) -> PowerBreakdown {
        let p = &self.params;
        let v = table.voltage(freq);
        let f_ghz = table.freq(freq).0;
        let bw_mbps = table.bw(bw).0;

        let cpu_leak = p.cpu_leak_w_per_v * v * online_cores;
        let cpu_uncore = p.cpu_uncore_w_per_v2ghz * v * v * f_ghz;
        let cpu_dyn = p.cpu_dyn_w_per_v2ghz * v * v * f_ghz * busy_cores + cpu_uncore;
        let mem = p.mem_static_w
            + p.mem_bw_w_per_mbps * bw_mbps
            + p.mem_traffic_w_per_mbps * traffic_mbps;

        PowerBreakdown {
            base_w: p.screen_w + p.wifi_w + p.rest_w + p.soc_static_w,
            cpu_w: cpu_leak + cpu_dyn,
            mem_w: mem,
            gpu_w: 0.0, // filled in by the device, which owns the GPU
            extra_w,
            background_w,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::new(PowerModelParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (PowerModel, DvfsTable) {
        (PowerModel::default(), DvfsTable::nexus6())
    }

    #[test]
    fn idle_device_sits_near_one_watt() {
        let (m, t) = model();
        let p = m
            .power(&t, FreqIndex(0), BwIndex(0), 4.0, 0.0, 0.0, 0.0, 0.0)
            .total_w();
        assert!(p > 0.8 && p < 1.3, "idle power {p} W out of band");
    }

    #[test]
    fn busy_max_config_is_in_multi_watt_band() {
        let (m, t) = model();
        let p = m
            .power(&t, FreqIndex(17), BwIndex(12), 4.0, 4.0, 8000.0, 0.0, 0.0)
            .total_w();
        assert!(p > 3.0 && p < 10.0, "peak power {p} W out of band");
    }

    #[test]
    fn power_monotone_in_frequency() {
        let (m, t) = model();
        let mut prev = 0.0;
        for i in t.freq_indices() {
            let p = m
                .power(&t, i, BwIndex(0), 4.0, 2.0, 500.0, 0.0, 0.0)
                .total_w();
            assert!(p > prev, "power not increasing at {i}");
            prev = p;
        }
    }

    #[test]
    fn power_monotone_in_bandwidth_setting() {
        let (m, t) = model();
        let mut prev = 0.0;
        for i in t.bw_indices() {
            let p = m
                .power(&t, FreqIndex(9), i, 4.0, 2.0, 500.0, 0.0, 0.0)
                .total_w();
            assert!(p > prev, "power not increasing at {i}");
            prev = p;
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (m, t) = model();
        let b = m.power(&t, FreqIndex(9), BwIndex(6), 4.0, 1.5, 800.0, 0.5, 0.1);
        let sum = b.base_w + b.cpu_w + b.mem_w + b.extra_w + b.background_w;
        assert!((sum - b.total_w()).abs() < 1e-12);
        assert_eq!(b.extra_w, 0.5);
        assert_eq!(b.background_w, 0.1);
    }

    #[test]
    fn dynamic_power_scales_with_busy_cores() {
        let (m, t) = model();
        let p1 = m.power(&t, FreqIndex(9), BwIndex(0), 4.0, 1.0, 0.0, 0.0, 0.0);
        let p2 = m.power(&t, FreqIndex(9), BwIndex(0), 4.0, 2.0, 0.0, 0.0, 0.0);
        let d1 = p1.cpu_w;
        let d2 = p2.cpu_w;
        // Leakage part identical; dynamic part doubles.
        assert!(d2 > d1 * 1.4 && d2 < d1 * 2.0);
    }
}
