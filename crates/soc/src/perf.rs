//! Model of the `perf` tool used to read the PMU.
//!
//! The paper measures application performance as GIPS derived from the
//! PMU instruction counter via `perf`. On the Nexus 6, `perf` has a
//! minimum sampling period of 100 ms, a *computation overhead of 40 %*
//! at that period (4 % at a 1 s period — it takes 1.04 s to report a 1 s
//! measurement) and a power overhead of ~15 mW. Those overheads are the
//! reason the paper picks a 2 s control cycle; [`PerfReader`] models
//! them so the reproduction faces the same trade-off.

use crate::device::Device;
use asgov_util::Rng;

/// Minimum supported sampling period, ms (as on the paper's Nexus 6).
pub const MIN_PERIOD_MS: u64 = 100;

/// One performance reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReading {
    /// Time the reading was produced, ms.
    pub t_ms: u64,
    /// Measured performance over the window, GIPS.
    pub gips: f64,
    /// Window length, ms.
    pub window_ms: u64,
}

/// Samples the PMU at a fixed period, injecting the tool's CPU-load and
/// power overhead into the device while enabled.
#[derive(Debug, Clone)]
pub struct PerfReader {
    period_ms: u64,
    noise_rel: f64,
    rng: Rng,
    enabled: bool,
    last_sample_ms: u64,
    last_instructions: f64,
}

impl PerfReader {
    /// A reader sampling every `period_ms` (clamped to the 100 ms
    /// minimum) with relative Gaussian measurement noise `noise_rel`
    /// (e.g. `0.02` for 2 %).
    pub fn new(period_ms: u64, noise_rel: f64, seed: u64) -> Self {
        Self {
            period_ms: period_ms.max(MIN_PERIOD_MS),
            noise_rel: noise_rel.max(0.0),
            rng: Rng::seed_from_u64(seed),
            enabled: false,
            last_sample_ms: 0,
            last_instructions: 0.0,
        }
    }

    /// The sampling period, ms.
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }

    /// The CPU-load overhead this reader imposes while enabled:
    /// 40 % at a 100 ms period, 4 % at 1 s (inversely proportional).
    pub fn overhead_load(&self) -> f64 {
        40.0 / self.period_ms as f64
    }

    /// The power overhead while enabled, watts.
    pub fn overhead_power_w(&self) -> f64 {
        0.015
    }

    /// Start sampling: snapshots the PMU and injects the tool overhead
    /// into the device.
    pub fn enable(&mut self, device: &mut Device) {
        self.enabled = true;
        self.last_sample_ms = device.now_ms();
        self.last_instructions = device.pmu().instructions();
        device.set_tool_overhead(self.overhead_load(), self.overhead_power_w());
    }

    /// Stop sampling and remove the tool overhead.
    pub fn disable(&mut self, device: &mut Device) {
        self.enabled = false;
        device.set_tool_overhead(0.0, 0.0);
    }

    /// Whether the reader is currently sampling.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Earliest millisecond at which [`PerfReader::poll`] can produce a
    /// reading ([`u64::MAX`] while disabled) — every earlier poll
    /// returns `None` without touching any state or RNG, so the event
    /// engine can skip straight to this deadline.
    pub fn next_sample_due_ms(&self) -> u64 {
        if self.enabled {
            self.last_sample_ms.saturating_add(self.period_ms)
        } else {
            u64::MAX
        }
    }

    /// Call once per tick; returns a reading when a full period has
    /// elapsed. Returns `None` while disabled or mid-window.
    ///
    /// When the device carries a [`crate::faults::FaultInjector`], the
    /// reading is subject to its perf pathologies: dropouts (the window
    /// is consumed but no reading is produced, like a lost `perf`
    /// sample) and corrupted values (NaN, zero, or spikes). The reader's
    /// own noise stream is drawn *before* the fault is applied, so an
    /// empty plan leaves readings bit-identical.
    pub fn poll(&mut self, device: &mut Device) -> Option<PerfReading> {
        if !self.enabled {
            return None;
        }
        let now = device.now_ms();
        let window = now - self.last_sample_ms;
        if window < self.period_ms {
            return None;
        }
        let instructions = device.pmu().instructions();
        let delta = instructions - self.last_instructions;
        let gips_true = delta / (window as f64 * 1e-3) / 1e9;
        let mut gips = if self.noise_rel > 0.0 {
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0_f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (gips_true * (1.0 + self.noise_rel * z)).max(0.0)
        } else {
            gips_true
        };
        self.last_sample_ms = now;
        self.last_instructions = instructions;
        match device.draw_perf_fault() {
            Some(crate::faults::PerfFault::Dropout) => return None,
            Some(crate::faults::PerfFault::Nan) => gips = f64::NAN,
            Some(crate::faults::PerfFault::Zero) => gips = 0.0,
            Some(crate::faults::PerfFault::Spike(factor)) => gips *= factor,
            None => {}
        }
        Some(PerfReading {
            t_ms: now,
            gips,
            window_ms: window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::workload::Demand;

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn demand() -> Demand {
        Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.5,
            desired_gips: Some(0.2),
            active_cores: 2.0,
            ..Demand::default()
        }
    }

    #[test]
    fn period_clamped_to_minimum() {
        let r = PerfReader::new(10, 0.0, 1);
        assert_eq!(r.period_ms(), MIN_PERIOD_MS);
    }

    #[test]
    fn overhead_matches_paper_numbers() {
        let fast = PerfReader::new(100, 0.0, 1);
        assert!((fast.overhead_load() - 0.40).abs() < 1e-12);
        let slow = PerfReader::new(1000, 0.0, 1);
        assert!((slow.overhead_load() - 0.04).abs() < 1e-12);
        assert!((slow.overhead_power_w() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn reading_matches_executed_rate() {
        let mut dev = device();
        let mut reader = PerfReader::new(1000, 0.0, 1);
        reader.enable(&mut dev);
        let mut reading = None;
        for _ in 0..1000 {
            dev.tick(&demand());
            if let Some(r) = reader.poll(&mut dev) {
                reading = Some(r);
            }
        }
        let r = reading.expect("one reading per second");
        assert_eq!(r.window_ms, 1000);
        assert!(
            (r.gips - 0.2).abs() < 0.02,
            "measured {} GIPS, expected ~0.2",
            r.gips
        );
    }

    #[test]
    fn no_reading_mid_window_or_disabled() {
        let mut dev = device();
        let mut reader = PerfReader::new(100, 0.0, 1);
        // Disabled: never reads.
        for _ in 0..200 {
            dev.tick(&demand());
            assert!(reader.poll(&mut dev).is_none());
        }
        reader.enable(&mut dev);
        dev.tick(&demand());
        assert!(reader.poll(&mut dev).is_none(), "mid-window");
    }

    #[test]
    fn enable_injects_overhead_and_disable_removes_it() {
        let mut dev = device();
        let mut reader = PerfReader::new(100, 0.0, 1);
        reader.enable(&mut dev);
        let loaded = dev.tick(&Demand::idle()).executed.busy_frac;
        assert!(loaded >= 0.39, "40% perf overhead visible in load");
        reader.disable(&mut dev);
        let clean = dev.tick(&Demand::idle()).executed.busy_frac;
        assert!(clean < 0.01);
    }

    #[test]
    fn perf_faults_corrupt_or_drop_readings() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let mut dev = device();
        let plan = FaultPlan::new()
            .window(0, 150, FaultKind::PerfNan)
            .and_then(|p| p.window(150, 250, FaultKind::PerfDropout))
            .and_then(|p| p.window(250, 350, FaultKind::PerfSpike(10.0)))
            .and_then(|p| p.window(350, 450, FaultKind::PerfZero))
            .expect("valid windows");
        dev.install_faults(FaultInjector::new(plan, 7));
        let mut reader = PerfReader::new(100, 0.0, 1);
        reader.enable(&mut dev);
        let mut readings = Vec::new();
        let mut polls = 0;
        for _ in 0..500 {
            dev.tick(&demand());
            let before = dev.now_ms();
            if before.is_multiple_of(100) {
                polls += 1;
            }
            if let Some(r) = reader.poll(&mut dev) {
                readings.push(r);
            }
        }
        assert!(polls >= 5);
        assert!(readings.iter().any(|r| r.gips.is_nan()), "NaN window");
        assert!(
            readings.len() < polls,
            "dropout window consumed at least one reading"
        );
        assert!(
            readings.iter().any(|r| r.gips > 1.0),
            "spike window produced an outlier (true rate ~0.2)"
        );
        assert!(readings.iter().any(|r| r.gips == 0.0), "zero window");
        let stats = dev.faults().unwrap().stats();
        assert!(stats.perf_dropouts >= 1);
        assert!(stats.perf_corrupted >= 3);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut dev = device();
            let mut reader = PerfReader::new(100, 0.05, seed);
            reader.enable(&mut dev);
            let mut vals = Vec::new();
            for _ in 0..500 {
                dev.tick(&demand());
                if let Some(r) = reader.poll(&mut dev) {
                    vals.push(r.gips);
                }
            }
            vals
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
