//! Event tracing: a bounded ring buffer of device state transitions.
//!
//! Disabled by default (zero overhead); when enabled, the device records
//! every DVFS transition and governor change so experiments can inspect
//! *when* decisions happened, not just the aggregate histograms. Dumps
//! to CSV for offline analysis.

use std::collections::VecDeque;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// CPU frequency changed (old index, new index).
    CpuFreq(usize, usize),
    /// Memory bandwidth changed (old index, new index).
    MemBw(usize, usize),
    /// GPU frequency changed (old index, new index).
    GpuFreq(usize, usize),
    /// A governor was (re)selected for a subsystem.
    Governor {
        /// `"cpufreq"`, `"devfreq"` or `"kgsl"`.
        subsystem: &'static str,
        /// The newly selected governor.
        name: String,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::CpuFreq(a, b) => write!(f, "cpufreq,f{},f{}", a + 1, b + 1),
            TraceEvent::MemBw(a, b) => write!(f, "membw,bw{},bw{}", a + 1, b + 1),
            TraceEvent::GpuFreq(a, b) => write!(f, "gpufreq,g{},g{}", a + 1, b + 1),
            TraceEvent::Governor { subsystem, name } => {
                write!(f, "governor,{subsystem},{name}")
            }
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event, ms.
    pub t_ms: u64,
    /// What happened.
    pub event: TraceEvent,
}

/// Bounded event trace. Oldest records are dropped once `capacity` is
/// reached (with a counter of how many were lost).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A disabled trace with room for `capacity` records once enabled.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            records: VecDeque::new(),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enable or disable recording (records are kept either way).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op while disabled).
    pub fn record(&mut self, t_ms: u64, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { t_ms, event });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Render as CSV (`t_ms,kind,from,to`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,kind,from,to\n");
        for r in &self.records {
            out.push_str(&format!("{},{}\n", r.t_ms, r.event));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(4);
        t.record(0, TraceEvent::CpuFreq(0, 5));
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_keeps_order() {
        let mut t = Trace::new(4);
        t.set_enabled(true);
        t.record(1, TraceEvent::CpuFreq(0, 5));
        t.record(2, TraceEvent::MemBw(0, 3));
        let kinds: Vec<u64> = t.records().map(|r| r.t_ms).collect();
        assert_eq!(kinds, vec![1, 2]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        t.set_enabled(true);
        for i in 0..5 {
            t.record(i, TraceEvent::CpuFreq(0, 1));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.records().next().unwrap().t_ms, 3);
    }

    #[test]
    fn csv_renders_paper_numbering() {
        let mut t = Trace::new(8);
        t.set_enabled(true);
        t.record(10, TraceEvent::CpuFreq(0, 9));
        t.record(
            20,
            TraceEvent::Governor {
                subsystem: "cpufreq",
                name: "userspace".into(),
            },
        );
        let csv = t.to_csv();
        assert!(csv.starts_with("t_ms,kind,from,to\n"));
        assert!(csv.contains("10,cpufreq,f1,f10"));
        assert!(csv.contains("20,governor,cpufreq,userspace"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new(2);
        t.set_enabled(true);
        t.record(0, TraceEvent::GpuFreq(0, 1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
    }
}
