//! Monsoon-style whole-device power monitor.
//!
//! The paper samples device power at 5 kHz with a Monsoon Power Monitor
//! and integrates to energy. Our simulator advances in 1 ms ticks, so the
//! monitor records one (optionally noisy) averaged sample per tick —
//! exactly what a 5 kHz monitor's per-millisecond average would be — and
//! integrates energy tick by tick.

use asgov_util::Rng;

/// One recorded power sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Simulation time at the start of the sampled tick, ms.
    pub t_ms: u64,
    /// Average device power over the tick, watts.
    pub power_w: f64,
}

/// Whole-device power monitor: records a power trace and integrates it
/// to energy.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    noise_sigma_w: f64,
    rng: Rng,
    energy_j: f64,
    elapsed_ms: u64,
    trace: Vec<PowerSample>,
    keep_trace: bool,
}

impl PowerMonitor {
    /// A monitor with Gaussian measurement noise of standard deviation
    /// `noise_sigma_w` watts (the paper's Monsoon is quite accurate; a
    /// few mW is realistic). Trace recording starts disabled; energy
    /// integration is always on.
    pub fn new(noise_sigma_w: f64, seed: u64) -> Self {
        Self {
            noise_sigma_w,
            rng: Rng::seed_from_u64(seed),
            energy_j: 0.0,
            elapsed_ms: 0,
            trace: Vec::new(),
            keep_trace: false,
        }
    }

    /// Enable or disable retention of the full per-tick trace (energy is
    /// integrated regardless).
    pub fn set_keep_trace(&mut self, keep: bool) {
        self.keep_trace = keep;
    }

    /// Record one tick's average power.
    #[inline]
    pub(crate) fn record(&mut self, t_ms: u64, power_w: f64) {
        let noise = if self.noise_sigma_w > 0.0 {
            // Box-Muller transform; the RNG is deterministic per seed.
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            self.noise_sigma_w
                * (-2.0_f64 * u1.ln()).sqrt()
                * (2.0 * std::f64::consts::PI * u2).cos()
        } else {
            0.0
        };
        let measured = (power_w + noise).max(0.0);
        self.energy_j += measured * 1e-3; // 1 ms tick
        self.elapsed_ms += 1;
        if self.keep_trace {
            self.trace.push(PowerSample {
                t_ms,
                power_w: measured,
            });
        }
    }

    /// Total measured energy since the last reset, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Measurement duration since the last reset, ms.
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ms
    }

    /// Average power since the last reset, watts (0 if nothing recorded).
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_ms == 0 {
            0.0
        } else {
            self.energy_j / (self.elapsed_ms as f64 * 1e-3)
        }
    }

    /// The recorded trace (empty unless [`set_keep_trace`] was enabled).
    ///
    /// [`set_keep_trace`]: PowerMonitor::set_keep_trace
    pub fn trace(&self) -> &[PowerSample] {
        &self.trace
    }

    /// Clear the integrator and the trace.
    pub fn reset(&mut self) {
        self.energy_j = 0.0;
        self.elapsed_ms = 0;
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_energy_exactly_without_noise() {
        let mut m = PowerMonitor::new(0.0, 1);
        for t in 0..1000 {
            m.record(t, 2.0);
        }
        assert!((m.energy_j() - 2.0).abs() < 1e-9, "2 W for 1 s = 2 J");
        assert_eq!(m.elapsed_ms(), 1000);
        assert!((m.average_power_w() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_zero_mean_in_aggregate() {
        let mut m = PowerMonitor::new(0.005, 42);
        for t in 0..100_000 {
            m.record(t, 1.5);
        }
        let avg = m.average_power_w();
        assert!(
            (avg - 1.5).abs() < 0.001,
            "noisy average {avg} drifted from 1.5"
        );
    }

    #[test]
    fn trace_only_kept_when_enabled() {
        let mut m = PowerMonitor::new(0.0, 1);
        m.record(0, 1.0);
        assert!(m.trace().is_empty());
        m.set_keep_trace(true);
        m.record(1, 1.0);
        assert_eq!(m.trace().len(), 1);
        assert_eq!(m.trace()[0].t_ms, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = PowerMonitor::new(0.0, 1);
        m.set_keep_trace(true);
        m.record(0, 3.0);
        m.reset();
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.elapsed_ms(), 0);
        assert!(m.trace().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = PowerMonitor::new(0.01, seed);
            for t in 0..1000 {
                m.record(t, 1.0);
            }
            m.energy_j()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
