//! Performance monitoring unit: retired-instruction and cycle counters.
//!
//! The paper reads the instruction counter through `perf` and derives a
//! GIPS (giga-instructions per second) metric; see [`crate::PerfReader`]
//! for the tool model on top of these raw counters.

/// Hardware performance counters. Counters are cumulative and
/// monotonically increasing, as on real hardware; readers keep their own
/// snapshots and difference them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pmu {
    instructions: f64,
    cycles: f64,
    bus_bytes: f64,
}

impl Pmu {
    /// A fresh PMU with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one tick of execution.
    #[inline]
    pub(crate) fn record(&mut self, instructions: f64, cycles: f64, bus_bytes: f64) {
        debug_assert!(instructions >= 0.0 && cycles >= 0.0 && bus_bytes >= 0.0);
        self.instructions += instructions;
        self.cycles += cycles;
        self.bus_bytes += bus_bytes;
    }

    /// Cumulative retired instructions.
    pub fn instructions(&self) -> f64 {
        self.instructions
    }

    /// Cumulative CPU cycles (busy cycles across all cores).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Cumulative memory-bus bytes (what `cpubw_hwmon` monitors via L2
    /// cache read/write events).
    pub fn bus_bytes(&self) -> f64 {
        self.bus_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_cumulative() {
        let mut pmu = Pmu::new();
        pmu.record(100.0, 50.0, 10.0);
        pmu.record(200.0, 100.0, 20.0);
        assert_eq!(pmu.instructions(), 300.0);
        assert_eq!(pmu.cycles(), 150.0);
        assert_eq!(pmu.bus_bytes(), 30.0);
    }

    #[test]
    fn fresh_pmu_reads_zero() {
        let pmu = Pmu::new();
        assert_eq!(pmu.instructions(), 0.0);
        assert_eq!(pmu.cycles(), 0.0);
        assert_eq!(pmu.bus_bytes(), 0.0);
    }
}
