//! Property-based tests of the device model: energy accounting,
//! roofline monotonicity, histogram conservation and sysfs semantics
//! under random inputs.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_soc::{sysfs, BwIndex, Demand, Device, DeviceConfig, FreqIndex};
use asgov_util::Rng;

fn quiet() -> DeviceConfig {
    let mut cfg = DeviceConfig::nexus6();
    cfg.monitor_noise_w = 0.0;
    cfg
}

fn random_demand(rng: &mut Rng) -> Demand {
    Demand {
        ipc0: rng.gen_range(0.2..2.0),
        bytes_per_instr: rng.gen_range(0.05..4.0),
        desired_gips: Some(rng.gen_range(0.0..3.0)),
        active_cores: rng.gen_range(0.2..4.0),
        ..Demand::default()
    }
}

/// Energy is the integral of power: average power × time == energy,
/// and it is additive across segments.
#[test]
fn energy_accounting_is_additive() {
    let mut rng = Rng::seed_from_u64(0x50_0001);
    for case in 0..128 {
        let f = rng.gen_range_usize(0..18);
        let b = rng.gen_range_usize(0..13);
        let segments = rng.gen_range_usize(2..6);
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));

        let mut per_segment = 0.0;
        for _ in 0..segments {
            let d = random_demand(&mut rng);
            let start = dev.monitor().energy_j();
            for _ in 0..50 {
                dev.tick(&d);
            }
            per_segment += dev.monitor().energy_j() - start;
        }
        let total = dev.monitor().energy_j();
        assert!((total - per_segment).abs() < 1e-9, "case {case}");
        let avg = dev.monitor().average_power_w();
        let elapsed_s = dev.monitor().elapsed_ms() as f64 * 1e-3;
        assert!((avg * elapsed_s - total).abs() < 1e-9, "case {case}");
    }
}

/// Executed GIPS never exceeds the demand rate nor the hardware
/// capability, and is never negative.
#[test]
fn execution_bounded_by_demand() {
    let mut rng = Rng::seed_from_u64(0x50_0002);
    for case in 0..256 {
        let d = random_demand(&mut rng);
        let f = rng.gen_range_usize(0..18);
        let b = rng.gen_range_usize(0..13);
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));
        let out = dev.tick(&d);
        assert!(out.executed.gips >= 0.0, "case {case}");
        if let Some(want) = d.desired_gips {
            assert!(out.executed.gips <= want + 1e-9, "case {case}");
        }
        let f_hz = dev.table().freq(FreqIndex(f)).hz();
        let cap = d.ipc0 * d.active_cores * f_hz / 1e9;
        assert!(
            out.executed.gips <= cap + 1e-9,
            "case {case}: exceeds compute roofline"
        );
    }
}

/// More frequency never hurts: unbounded demand executes at least as
/// fast at a higher frequency (same bandwidth).
#[test]
fn frequency_monotonicity() {
    let mut rng = Rng::seed_from_u64(0x50_0003);
    for case in 0..128 {
        let demand = Demand {
            ipc0: rng.gen_range(0.5..2.0),
            bytes_per_instr: rng.gen_range(0.05..2.0),
            desired_gips: None,
            active_cores: rng.gen_range(0.5..4.0),
            ..Demand::default()
        };
        let b = rng.gen_range_usize(0..13);
        let mut prev = 0.0;
        for f in 0..18 {
            let mut dev = Device::new(quiet());
            dev.set_cpu_governor("userspace");
            dev.set_bw_governor("userspace");
            dev.set_cpu_freq(FreqIndex(f));
            dev.set_mem_bw(BwIndex(b));
            let g = dev.tick(&demand).executed.gips;
            assert!(g >= prev - 1e-9, "case {case}: regression at f{}", f + 1);
            prev = g;
        }
    }
}

/// Histogram mass is conserved: the per-frequency residency always
/// sums to the elapsed time.
#[test]
fn histogram_mass_conserved() {
    let mut rng = Rng::seed_from_u64(0x50_0004);
    for case in 0..128 {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        let d = Demand::idle();
        let mut expected: u64 = 0;
        let switches = rng.gen_range_usize(1..20);
        for _ in 0..switches {
            let f = rng.gen_range_usize(0..18);
            let b = rng.gen_range_usize(0..13);
            let ticks = rng.gen_range_usize(1..40) as u64;
            dev.set_cpu_freq(FreqIndex(f));
            dev.set_mem_bw(BwIndex(b));
            for _ in 0..ticks {
                dev.tick(&d);
            }
            expected += ticks;
        }
        let stats = dev.stats();
        assert_eq!(
            stats.time_in_freq_ms.iter().sum::<u64>(),
            expected,
            "case {case}"
        );
        assert_eq!(
            stats.time_in_bw_ms.iter().sum::<u64>(),
            expected,
            "case {case}"
        );
        assert_eq!(stats.elapsed_ms, expected, "case {case}");
    }
}

/// Power is always positive and finite, whatever the demand.
#[test]
fn power_well_formed() {
    let mut rng = Rng::seed_from_u64(0x50_0005);
    for case in 0..256 {
        let d = random_demand(&mut rng);
        let f = rng.gen_range_usize(0..18);
        let b = rng.gen_range_usize(0..13);
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));
        let out = dev.tick(&d);
        let p = out.power.total_w();
        assert!(p.is_finite(), "case {case}");
        assert!(
            p > 0.5,
            "case {case}: device never draws less than base power, got {p}"
        );
        assert!(p < 14.0, "case {case}: implausible device power {p}");
    }
}

/// sysfs setspeed accepts exactly the ladder frequencies and nothing
/// else.
#[test]
fn sysfs_setspeed_validation() {
    let mut rng = Rng::seed_from_u64(0x50_0006);
    for case in 0..256 {
        let khz = rng.gen_range_usize(0..4_000_000) as u64;
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        let path = format!("{}/scaling_setspeed", sysfs::CPUFREQ);
        let on_ladder = dev.table().freq_from_khz(khz).is_some();
        let result = dev.sysfs_write(&path, &khz.to_string());
        assert_eq!(result.is_ok(), on_ladder, "case {case} ({khz} kHz)");
        if on_ladder {
            let read_back: u64 = dev
                .sysfs_read(&format!("{}/scaling_cur_freq", sysfs::CPUFREQ))
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(read_back, khz, "case {case}");
        }
    }
    // The random sweep above rarely lands on the ladder; pin a few
    // known ladder frequencies so the accept path is exercised too.
    let mut dev = Device::new(quiet());
    dev.set_cpu_governor("userspace");
    for f in [0, 8, 17] {
        let khz = dev.table().freq(FreqIndex(f)).khz();
        let path = format!("{}/scaling_setspeed", sysfs::CPUFREQ);
        assert!(dev.sysfs_write(&path, &khz.to_string()).is_ok());
        let read_back: u64 = dev
            .sysfs_read(&format!("{}/scaling_cur_freq", sysfs::CPUFREQ))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(read_back, khz);
    }
}

/// The PMU instruction counter is monotone non-decreasing.
#[test]
fn pmu_monotone() {
    let mut rng = Rng::seed_from_u64(0x50_0007);
    for case in 0..64 {
        let mut dev = Device::new(quiet());
        let mut last = 0.0;
        let len = rng.gen_range_usize(1..50);
        for _ in 0..len {
            let d = random_demand(&mut rng);
            dev.tick(&d);
            let now = dev.pmu().instructions();
            assert!(now >= last, "case {case}");
            last = now;
        }
    }
}
