//! Property-based tests of the device model: energy accounting,
//! roofline monotonicity, histogram conservation and sysfs semantics
//! under random inputs.

use asgov_soc::{sysfs, BwIndex, Demand, Device, DeviceConfig, FreqIndex};
use proptest::prelude::*;

fn quiet() -> DeviceConfig {
    let mut cfg = DeviceConfig::nexus6();
    cfg.monitor_noise_w = 0.0;
    cfg
}

fn demand_strategy() -> impl Strategy<Value = Demand> {
    (
        0.2f64..2.0,   // ipc0
        0.05f64..4.0,  // bytes_per_instr
        0.0f64..3.0,   // desired gips
        0.2f64..4.0,   // active cores
    )
        .prop_map(|(ipc0, bpi, want, cores)| Demand {
            ipc0,
            bytes_per_instr: bpi,
            desired_gips: Some(want),
            active_cores: cores,
            ..Demand::default()
        })
}

proptest! {
    /// Energy is the integral of power: average power × time == energy,
    /// and it is additive across segments.
    #[test]
    fn energy_accounting_is_additive(
        demands in prop::collection::vec(demand_strategy(), 2..6),
        f in 0usize..18,
        b in 0usize..13,
    ) {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));

        let mut per_segment = 0.0;
        for d in &demands {
            let start = dev.monitor().energy_j();
            for _ in 0..50 {
                dev.tick(d);
            }
            per_segment += dev.monitor().energy_j() - start;
        }
        let total = dev.monitor().energy_j();
        prop_assert!((total - per_segment).abs() < 1e-9);
        let avg = dev.monitor().average_power_w();
        let elapsed_s = dev.monitor().elapsed_ms() as f64 * 1e-3;
        prop_assert!((avg * elapsed_s - total).abs() < 1e-9);
    }

    /// Executed GIPS never exceeds the demand rate nor the hardware
    /// capability, and is never negative.
    #[test]
    fn execution_bounded_by_demand(d in demand_strategy(), f in 0usize..18, b in 0usize..13) {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));
        let out = dev.tick(&d);
        prop_assert!(out.executed.gips >= 0.0);
        if let Some(want) = d.desired_gips {
            prop_assert!(out.executed.gips <= want + 1e-9);
        }
        let f_hz = dev.table().freq(FreqIndex(f)).hz();
        let cap = d.ipc0 * d.active_cores * f_hz / 1e9;
        prop_assert!(out.executed.gips <= cap + 1e-9, "exceeds compute roofline");
    }

    /// More frequency never hurts: unbounded demand executes at least as
    /// fast at a higher frequency (same bandwidth).
    #[test]
    fn frequency_monotonicity(
        ipc0 in 0.5f64..2.0,
        bpi in 0.05f64..2.0,
        cores in 0.5f64..4.0,
        b in 0usize..13,
    ) {
        let demand = Demand {
            ipc0,
            bytes_per_instr: bpi,
            desired_gips: None,
            active_cores: cores,
            ..Demand::default()
        };
        let mut prev = 0.0;
        for f in 0..18 {
            let mut dev = Device::new(quiet());
            dev.set_cpu_governor("userspace");
            dev.set_bw_governor("userspace");
            dev.set_cpu_freq(FreqIndex(f));
            dev.set_mem_bw(BwIndex(b));
            let g = dev.tick(&demand).executed.gips;
            prop_assert!(g >= prev - 1e-9, "regression at f{}", f + 1);
            prev = g;
        }
    }

    /// Histogram mass is conserved: the per-frequency residency always
    /// sums to the elapsed time.
    #[test]
    fn histogram_mass_conserved(
        switches in prop::collection::vec((0usize..18, 0usize..13, 1u64..40), 1..20),
    ) {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        let d = Demand::idle();
        let mut expected: u64 = 0;
        for (f, b, ticks) in switches {
            dev.set_cpu_freq(FreqIndex(f));
            dev.set_mem_bw(BwIndex(b));
            for _ in 0..ticks {
                dev.tick(&d);
            }
            expected += ticks;
        }
        let stats = dev.stats();
        prop_assert_eq!(stats.time_in_freq_ms.iter().sum::<u64>(), expected);
        prop_assert_eq!(stats.time_in_bw_ms.iter().sum::<u64>(), expected);
        prop_assert_eq!(stats.elapsed_ms, expected);
    }

    /// Power is always positive and finite, whatever the demand.
    #[test]
    fn power_well_formed(d in demand_strategy(), f in 0usize..18, b in 0usize..13) {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));
        let out = dev.tick(&d);
        let p = out.power.total_w();
        prop_assert!(p.is_finite());
        prop_assert!(p > 0.5, "device never draws less than base power, got {p}");
        prop_assert!(p < 14.0, "implausible device power {p}");
    }

    /// sysfs setspeed accepts exactly the ladder frequencies and nothing
    /// else.
    #[test]
    fn sysfs_setspeed_validation(khz in 0u64..4_000_000) {
        let mut dev = Device::new(quiet());
        dev.set_cpu_governor("userspace");
        let path = format!("{}/scaling_setspeed", sysfs::CPUFREQ);
        let on_ladder = dev.table().freq_from_khz(khz).is_some();
        let result = dev.sysfs_write(&path, &khz.to_string());
        prop_assert_eq!(result.is_ok(), on_ladder);
        if on_ladder {
            let read_back: u64 = dev
                .sysfs_read(&format!("{}/scaling_cur_freq", sysfs::CPUFREQ))
                .unwrap()
                .parse()
                .unwrap();
            prop_assert_eq!(read_back, khz);
        }
    }

    /// The PMU instruction counter is monotone non-decreasing.
    #[test]
    fn pmu_monotone(demands in prop::collection::vec(demand_strategy(), 1..50)) {
        let mut dev = Device::new(quiet());
        let mut last = 0.0;
        for d in demands {
            dev.tick(&d);
            let now = dev.pmu().instructions();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
