//! Property tests for the observability primitives: ring wraparound
//! keeps exactly the newest N, and records survive a JSONL round trip
//! bit-for-bit. Randomized but seeded — failures replay exactly.

use asgov_obs::{parse_jsonl, CycleRecord, FaultClass, Level, RingBuffer, RingSink, TraceSink};
use asgov_util::Rng;

fn random_record(rng: &mut Rng, cycle: u64) -> CycleRecord {
    let fault = if rng.gen_bool(0.3) {
        Some(FaultClass::ALL[rng.gen_range_usize(0..FaultClass::ALL.len())])
    } else {
        None
    };
    let level = Level::ALL[rng.gen_range_usize(0..Level::ALL.len())];
    let tau_lower_ms = (rng.gen_range_usize(0..11) * 200) as u64;
    CycleRecord {
        cycle,
        t_ms: 2_000 * (cycle + 1),
        target_gips: rng.gen_range(0.01..4.0),
        measured_gips: rng.gen_range(0.0..4.0),
        error: rng.gen_range(-2.0..2.0),
        base_estimate: rng.gen_range(0.01..2.0),
        innovation: rng.gen_range(-1.0..1.0),
        required_speedup: rng.gen_range(1.0..3.2),
        lower: (
            rng.gen_range_usize(0..20) as u32,
            rng.gen_range_usize(0..12) as u32,
        ),
        upper: (
            rng.gen_range_usize(0..20) as u32,
            rng.gen_range_usize(0..12) as u32,
        ),
        tau_lower_ms,
        tau_upper_ms: 2_000 - tau_lower_ms,
        solve_ns: rng.next_u64() % 1_000_000,
        actuation_ns: rng.next_u64() % 10_000_000,
        fault,
        level,
        restarts: rng.next_u64() % 4,
        snapshot_errors: rng.next_u64() % 3,
    }
}

#[test]
fn wraparound_preserves_newest_n() {
    let mut rng = Rng::seed_from_u64(0x0b5);
    for case in 0..200 {
        let capacity = rng.gen_range_usize(1..33);
        let pushes = rng.gen_range_usize(0..100);
        let mut ring = RingBuffer::new(capacity);
        for i in 0..pushes as u64 {
            ring.push(i);
        }
        let got: Vec<u64> = ring.iter().copied().collect();
        let expect: Vec<u64> = (pushes.saturating_sub(capacity) as u64..pushes as u64).collect();
        assert_eq!(got, expect, "case {case}: cap {capacity}, pushes {pushes}");
        assert_eq!(ring.pushed(), pushes as u64);
        assert_eq!(ring.dropped(), (pushes.saturating_sub(capacity)) as u64);
        assert_eq!(ring.last().copied(), expect.last().copied());
    }
}

#[test]
fn jsonl_round_trips_randomized_records() {
    // Every field — including the optional fault and the enum level —
    // must survive serialize → parse exactly (f64 Display in the
    // vendored JSON writer is shortest-round-trip).
    let mut rng = Rng::seed_from_u64(0x0b5 + 1);
    for case in 0..300 {
        let rec = random_record(&mut rng, case);
        let line = rec.to_jsonl_line();
        let back = CycleRecord::from_jsonl_line(&line)
            .unwrap_or_else(|e| panic!("case {case}: {e} in {line}"));
        assert_eq!(rec, back, "case {case}");
        assert_eq!(
            rec.target_gips.to_bits(),
            back.target_gips.to_bits(),
            "case {case}: floats must round-trip to the bit"
        );
    }
}

#[test]
fn sink_jsonl_round_trips_and_respects_capacity() {
    let mut rng = Rng::seed_from_u64(0x0b5 + 2);
    for case in 0..50 {
        let capacity = rng.gen_range_usize(1..17);
        let cycles = rng.gen_range_usize(0..40);
        let mut sink = RingSink::new(capacity);
        let mut all = Vec::new();
        for i in 0..cycles as u64 {
            let rec = random_record(&mut rng, i);
            sink.record_cycle(&rec);
            all.push(rec);
        }
        let parsed = parse_jsonl(&sink.to_jsonl()).unwrap();
        let expect: Vec<CycleRecord> = all.iter().rev().take(capacity).rev().copied().collect();
        assert_eq!(parsed, expect, "case {case}");
        assert_eq!(sink.metrics().cycles, cycles as u64);
    }
}

#[test]
fn metrics_level_and_fault_tallies_match_the_stream() {
    let mut rng = Rng::seed_from_u64(0x0b5 + 3);
    let mut sink = RingSink::new(8);
    let mut level_expect = [0u64; 3];
    let mut fault_expect = [0u64; 5];
    for i in 0..500 {
        let rec = random_record(&mut rng, i);
        level_expect[rec.level.index()] += 1;
        if let Some(f) = rec.fault {
            fault_expect[f.index()] += 1;
        }
        sink.record_cycle(&rec);
    }
    assert_eq!(sink.metrics().level_cycles, level_expect);
    assert_eq!(sink.metrics().faults, fault_expect);
    assert_eq!(sink.metrics().solve_ns.count(), 500);
}
