//! # asgov-obs — structured per-cycle observability
//!
//! The controller is a closed loop (performance measurement → Kalman
//! base-speed estimator → LP optimizer → dwell scheduler) whose
//! behaviour is only legible if every control cycle can be replayed and
//! aggregated. `RunReport` / `HealthReport` give end-of-run summaries;
//! this crate adds the per-cycle record underneath them:
//!
//! - [`CycleRecord`] — one schema-versioned snapshot per control cycle:
//!   timestamp, target, measured GIPS, tracking error, Kalman estimate
//!   and innovation, the chosen configuration pair with its dwell split,
//!   optimizer solve time, actuation latency, the actuation fault (if
//!   any) and the degradation level.
//! - [`RingBuffer`] — a fixed-capacity, allocation-free ring that keeps
//!   the newest N records and counts what it dropped.
//! - [`Histogram`] — fixed-bucket (log-spaced) histograms for solve
//!   time, actuation latency and innovation magnitude.
//! - [`FleetStats`] — columnar (struct-of-arrays) streaming aggregator
//!   for fleet-scale runs: per-stream counts, exact fixed-point
//!   moments and shared-bounds log histograms with a bit-exactly
//!   associative `merge`, so sharded partial aggregates fold in any
//!   order without materializing per-device rows.
//! - [`TraceSink`] — the trait the device and controller emit into;
//!   [`NullSink`] discards everything (and is bit-identical to no sink
//!   at all), [`RingSink`] retains records and aggregates [`Metrics`].
//!
//! Records serialize to JSONL (one compact object per line, each line
//! carrying the [`SCHEMA`] tag) through the vendored
//! [`asgov_util::json`] — no external dependencies, per the workspace
//! dependency policy.
//!
//! ## Layering
//!
//! This crate sits *below* `asgov-soc`: it depends only on
//! `asgov-util`. The SoC-level enums (`SocErrorKind`,
//! `DegradationLevel`) are mirrored here as [`FaultClass`] and
//! [`Level`]; the `From` conversions live in `asgov-soc`, which sees
//! both sides.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agg;
mod hist;
mod record;
mod ring;
mod sink;

pub use agg::{FleetStats, LayoutMismatch};
pub use hist::Histogram;
pub use record::{parse_jsonl, CycleRecord, FaultClass, Level, RecordError, LEGACY_SCHEMA, SCHEMA};
pub use ring::RingBuffer;
pub use sink::{Metrics, NullSink, RingSink, TraceSink};
