//! Fixed-capacity ring buffer: keeps the newest N records, counts the
//! rest. All storage is reserved up front; `push` never allocates.

/// A fixed-capacity overwrite-oldest ring of `Copy` values.
///
/// ```
/// use asgov_obs::RingBuffer;
/// let mut ring = RingBuffer::new(3);
/// for i in 0..5u64 {
///     ring.push(i);
/// }
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
/// assert_eq!(ring.dropped(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T: Copy> {
    buf: Vec<T>,
    capacity: usize,
    /// Index the *next* push writes to, once the buffer is full.
    head: usize,
    pushed: u64,
}

impl<T: Copy> RingBuffer<T> {
    /// A ring holding at most `capacity` values (at least 1). The full
    /// backing store is allocated here; nothing allocates afterwards.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Append a value, overwriting the oldest once full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.capacity {
            // Within the reserved capacity — no reallocation.
            self.buf.push(value);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            *slot = value;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of values currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total values ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// How many values were overwritten (pushed − retained).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Iterate the retained values oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// The newest value, if any.
    pub fn last(&self) -> Option<&T> {
        if self.head == 0 {
            self.buf.last()
        } else {
            self.buf.get(self.head - 1)
        }
    }

    /// Drop all retained values (the `pushed` total is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut ring = RingBuffer::new(4);
        assert!(ring.is_empty());
        for i in 0..10u32 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(ring.last(), Some(&9));
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut ring = RingBuffer::new(8);
        for i in 0..3u32 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.last(), Some(&2));
    }

    #[test]
    fn never_reallocates_after_construction() {
        let mut ring = RingBuffer::new(16);
        let ptr = ring.buf.as_ptr();
        let cap = ring.buf.capacity();
        for i in 0..1000u32 {
            ring.push(i);
        }
        assert_eq!(ring.buf.as_ptr(), ptr, "backing store must not move");
        assert_eq!(ring.buf.capacity(), cap);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut ring = RingBuffer::new(0);
        ring.push(1u8);
        ring.push(2u8);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.last(), Some(&2));
    }

    #[test]
    fn clear_resets_contents_not_totals() {
        let mut ring = RingBuffer::new(2);
        ring.push(1u8);
        ring.push(2u8);
        ring.push(3u8);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), 3);
        ring.push(9u8);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
