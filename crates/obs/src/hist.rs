//! Fixed-bucket histograms. Bucket bounds are chosen at construction
//! (typically log-spaced); recording is a linear scan over a handful of
//! buckets and never allocates.

use asgov_util::Json;

/// A histogram with fixed, ascending bucket upper bounds plus an
/// implicit overflow bucket. Tracks count, sum, min and max alongside
/// the buckets so means survive even when the bucketing is coarse.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending inclusive upper bounds; values above the last bound
    /// land in the overflow bucket.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Log-spaced bounds from `lo` to `hi` with `per_decade` buckets
    /// per decade (e.g. `logarithmic(1e2, 1e9, 2)` → 100 ns … 1 s in
    /// half-decade steps when the unit is ns).
    pub fn logarithmic(lo: f64, hi: f64, per_decade: u32) -> Self {
        let per_decade = per_decade.max(1);
        let step = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = Vec::new();
        let mut b = lo;
        while b < hi * (1.0 + 1e-9) {
            bounds.push(b);
            b *= step;
        }
        Self::new(bounds)
    }

    /// Buckets suited to nanosecond timings: 100 ns to 1 s in
    /// half-decade steps.
    pub fn time_ns() -> Self {
        Self::logarithmic(1e2, 1e9, 2)
    }

    /// Buckets suited to Kalman-innovation magnitudes (GIPS):
    /// 10⁻⁶ to 10² in decade steps.
    pub fn magnitude() -> Self {
        Self::logarithmic(1e-6, 1e2, 1)
    }

    /// Record one sample. Non-finite samples count toward `count` but
    /// land in the overflow bucket and are excluded from sum/min/max.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let idx = if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            self.bounds
                .iter()
                .position(|b| v <= *b)
                .unwrap_or(self.bounds.len())
        } else {
            self.bounds.len()
        };
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite sample seen, if any.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite sample seen, if any.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1) —
    /// a conservative estimate, exact to bucket granularity.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        None
    }

    /// The non-empty buckets as `(upper_bound, count)`; the overflow
    /// bucket reports `f64::INFINITY` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .filter(|(_, c)| *c > 0)
    }

    /// JSON summary: count, mean, min/max, p50/p95/p99 bucket bounds
    /// and the non-empty buckets.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("count", self.count as f64);
        o.set("mean", self.mean());
        o.set("min", if self.min.is_finite() { self.min } else { 0.0 });
        o.set("max", if self.max.is_finite() { self.max } else { 0.0 });
        for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            o.set(key, self.quantile(q).unwrap_or(0.0));
        }
        let buckets: Vec<Json> = self
            .buckets()
            .map(|(b, c)| {
                let mut e = Json::object();
                e.set("le", b);
                e.set("n", c as f64);
                e
            })
            .collect();
        o.set("buckets", buckets);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        let mut h = Histogram::new(vec![10.0, 100.0, 1000.0]);
        for v in [1.0, 10.0, 11.0, 500.0, 5000.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(10.0, 2), (100.0, 1), (1000.0, 1), (f64::INFINITY, 1)]
        );
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5000.0));
    }

    #[test]
    fn quantile_is_bucket_exact() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(3.0);
        }
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.95), Some(4.0));
    }

    #[test]
    fn non_finite_lands_in_overflow() {
        let mut h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
        h.record(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 0.25, "NaN excluded from the sum, not count");
        let overflow = h.buckets().find(|(b, _)| b.is_infinite()).unwrap();
        assert_eq!(overflow.1, 1);
    }

    #[test]
    fn log_bounds_cover_the_requested_span() {
        let h = Histogram::time_ns();
        assert!(h.bounds.first().copied().unwrap() <= 1e2 * 1.001);
        assert!(h.bounds.last().copied().unwrap() >= 1e9 * 0.999);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::magnitude();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }
}
