//! The per-cycle trace record and its JSONL encoding.

use asgov_util::Json;

/// Schema tag stamped on every serialized record. Bump the suffix when
/// a field is added, removed, or changes meaning; readers reject lines
/// whose tag they do not understand.
pub const SCHEMA: &str = "asgov-obs/v2";

/// The previous schema tag, still accepted on read: v1 records lack
/// the supervisor fields (`restarts`, `snapshot_errors`), which decode
/// as zero.
pub const LEGACY_SCHEMA: &str = "asgov-obs/v1";

/// Mirror of `asgov_soc::SocErrorKind` — the class of actuation fault
/// observed during a control cycle. Lives here (below the SoC crate) so
/// records need no upward dependency; the `From` conversion is in
/// `asgov-soc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Write to a sysfs path that does not exist.
    NoSuchFile,
    /// Write to a read-only sysfs path.
    ReadOnly,
    /// Value rejected by the kernel interface.
    InvalidValue,
    /// `scaling_setspeed` ignored because the governor is not
    /// `userspace`.
    WrongGovernor,
    /// Transient `-EBUSY` from the kernel.
    Busy,
}

impl FaultClass {
    /// Every fault class, in a fixed order (stable across releases of
    /// the same schema version; used to index per-class counters).
    pub const ALL: [FaultClass; 5] = [
        FaultClass::NoSuchFile,
        FaultClass::ReadOnly,
        FaultClass::InvalidValue,
        FaultClass::WrongGovernor,
        FaultClass::Busy,
    ];

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::NoSuchFile => "no-such-file",
            FaultClass::ReadOnly => "read-only",
            FaultClass::InvalidValue => "invalid-value",
            FaultClass::WrongGovernor => "wrong-governor",
            FaultClass::Busy => "busy",
        }
    }

    /// Parse a wire name produced by [`FaultClass::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        FaultClass::ALL.into_iter().find(|f| f.as_str() == s)
    }

    /// Index into per-class counter arrays (the position in
    /// [`FaultClass::ALL`]).
    pub fn index(self) -> usize {
        FaultClass::ALL.iter().position(|f| *f == self).unwrap_or(0)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Mirror of `asgov_soc::DegradationLevel` — where the controller sat
/// on the degradation ladder when the record was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Full closed-loop operation.
    #[default]
    Full,
    /// Pinned to the profiled maximum-speedup configuration.
    SafeConfig,
    /// Delegated back to the stock kernel governors.
    FallbackGovernor,
}

impl Level {
    /// Every level, ladder order.
    pub const ALL: [Level; 3] = [Level::Full, Level::SafeConfig, Level::FallbackGovernor];

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Full => "full",
            Level::SafeConfig => "safe-config",
            Level::FallbackGovernor => "fallback-governor",
        }
    }

    /// Parse a wire name produced by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Level::ALL.into_iter().find(|l| l.as_str() == s)
    }

    /// Index into per-level counter arrays.
    pub fn index(self) -> usize {
        Level::ALL.iter().position(|l| *l == self).unwrap_or(0)
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One control cycle, fully described. `Copy` and fixed-size so the
/// ring buffer holding these never allocates after construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRecord {
    /// Control-cycle ordinal (0-based, monotone within a run).
    pub cycle: u64,
    /// Device time at the end of the cycle, ms.
    pub t_ms: u64,
    /// Performance target, GIPS.
    pub target_gips: f64,
    /// Measured performance over the cycle (mean of accepted perf
    /// readings), GIPS.
    pub measured_gips: f64,
    /// Tracking error `e_n = target − measured`, GIPS.
    pub error: f64,
    /// Kalman base-speed estimate `b_n`, GIPS.
    pub base_estimate: f64,
    /// Kalman innovation `y − h·b⁻` for this cycle's update, GIPS.
    pub innovation: f64,
    /// Required speedup `s_n` emitted by the regulator.
    pub required_speedup: f64,
    /// Lower configuration of the chosen pair `c_l`: (CPU-frequency
    /// index, memory-bandwidth index) into the device ladders.
    pub lower: (u32, u32),
    /// Upper configuration `c_h`, same encoding.
    pub upper: (u32, u32),
    /// Dwell on the lower configuration `τ_l`, ms (post-quantization).
    pub tau_lower_ms: u64,
    /// Dwell on the upper configuration `τ_h`, ms. The scheduler
    /// guarantees `tau_lower_ms + tau_upper_ms == T` exactly.
    pub tau_upper_ms: u64,
    /// Wall-clock time the optimizer spent solving, ns.
    pub solve_ns: u64,
    /// Wall-clock latency of the actuation (sysfs writes + retries), ns.
    pub actuation_ns: u64,
    /// Actuation fault observed during the cycle, if any.
    pub fault: Option<FaultClass>,
    /// Degradation-ladder level after this cycle's health accounting.
    pub level: Level,
    /// Supervisor restarts of the emitting controller so far (0 when
    /// unsupervised; v1 records decode as 0).
    pub restarts: u64,
    /// Checkpoints found unusable at restart so far (0 when
    /// unsupervised; v1 records decode as 0).
    pub snapshot_errors: u64,
}

impl Default for CycleRecord {
    fn default() -> Self {
        Self {
            cycle: 0,
            t_ms: 0,
            target_gips: 0.0,
            measured_gips: 0.0,
            error: 0.0,
            base_estimate: 0.0,
            innovation: 0.0,
            required_speedup: 0.0,
            lower: (0, 0),
            upper: (0, 0),
            tau_lower_ms: 0,
            tau_upper_ms: 0,
            solve_ns: 0,
            actuation_ns: 0,
            fault: None,
            level: Level::Full,
            restarts: 0,
            snapshot_errors: 0,
        }
    }
}

/// Why a serialized record line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The line is not valid JSON.
    Malformed,
    /// The line parsed, but its `schema` tag is missing or unknown.
    BadSchema(String),
    /// A required field is missing or has the wrong type.
    MissingField(&'static str),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Malformed => write!(f, "line is not valid JSON"),
            RecordError::BadSchema(s) => write!(f, "unknown schema tag {s:?} (want {SCHEMA:?})"),
            RecordError::MissingField(name) => write!(f, "missing or mistyped field {name:?}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl CycleRecord {
    /// Encode as a JSON object carrying the [`SCHEMA`] tag.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("schema", SCHEMA);
        o.set("cycle", self.cycle as f64);
        o.set("t_ms", self.t_ms as f64);
        o.set("target_gips", self.target_gips);
        o.set("measured_gips", self.measured_gips);
        o.set("error", self.error);
        o.set("base_estimate", self.base_estimate);
        o.set("innovation", self.innovation);
        o.set("required_speedup", self.required_speedup);
        o.set("lower_freq", self.lower.0 as f64);
        o.set("lower_bw", self.lower.1 as f64);
        o.set("upper_freq", self.upper.0 as f64);
        o.set("upper_bw", self.upper.1 as f64);
        o.set("tau_lower_ms", self.tau_lower_ms as f64);
        o.set("tau_upper_ms", self.tau_upper_ms as f64);
        o.set("solve_ns", self.solve_ns as f64);
        o.set("actuation_ns", self.actuation_ns as f64);
        match self.fault {
            Some(fault) => o.set("fault", fault.as_str()),
            None => o.set("fault", Json::Null),
        }
        o.set("level", self.level.as_str());
        o.set("restarts", self.restarts as f64);
        o.set("snapshot_errors", self.snapshot_errors as f64);
        o
    }

    /// Decode a JSON object produced by [`CycleRecord::to_json`].
    /// [`LEGACY_SCHEMA`] (v1) records are accepted too: they predate the
    /// supervisor fields, which decode as zero.
    pub fn from_json(j: &Json) -> Result<Self, RecordError> {
        let tag = j.get("schema").and_then(Json::as_str).unwrap_or("");
        let legacy = tag == LEGACY_SCHEMA;
        if tag != SCHEMA && !legacy {
            return Err(RecordError::BadSchema(tag.to_string()));
        }
        // The writer degrades non-finite floats to `null` (JSON cannot
        // express them), so a null float field decodes as NaN rather
        // than rejecting the whole record. Integer fields stay strict:
        // they are always finite on the wire, so `null` there means
        // corruption, not degradation.
        let f64_field = |name: &'static str| match j.get(name) {
            Some(Json::Null) => Ok(f64::NAN),
            other => other
                .and_then(Json::as_f64)
                .ok_or(RecordError::MissingField(name)),
        };
        let int_field = |name: &'static str| {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or(RecordError::MissingField(name))
        };
        let u64_field = |name: &'static str| int_field(name).map(|v| v as u64);
        let u32_field = |name: &'static str| int_field(name).map(|v| v as u32);
        let fault = match j.get("fault") {
            Some(Json::Null) | None => None,
            Some(v) => Some(
                v.as_str()
                    .and_then(FaultClass::parse)
                    .ok_or(RecordError::MissingField("fault"))?,
            ),
        };
        let level = j
            .get("level")
            .and_then(Json::as_str)
            .and_then(Level::parse)
            .ok_or(RecordError::MissingField("level"))?;
        Ok(Self {
            cycle: u64_field("cycle")?,
            t_ms: u64_field("t_ms")?,
            target_gips: f64_field("target_gips")?,
            measured_gips: f64_field("measured_gips")?,
            error: f64_field("error")?,
            base_estimate: f64_field("base_estimate")?,
            innovation: f64_field("innovation")?,
            required_speedup: f64_field("required_speedup")?,
            lower: (u32_field("lower_freq")?, u32_field("lower_bw")?),
            upper: (u32_field("upper_freq")?, u32_field("upper_bw")?),
            tau_lower_ms: u64_field("tau_lower_ms")?,
            tau_upper_ms: u64_field("tau_upper_ms")?,
            solve_ns: u64_field("solve_ns")?,
            actuation_ns: u64_field("actuation_ns")?,
            fault,
            level,
            restarts: if legacy { 0 } else { u64_field("restarts")? },
            snapshot_errors: if legacy {
                0
            } else {
                u64_field("snapshot_errors")?
            },
        })
    }

    /// Encode as one compact JSONL line (no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Decode one JSONL line.
    pub fn from_jsonl_line(line: &str) -> Result<Self, RecordError> {
        let j = Json::parse(line).map_err(|_| RecordError::Malformed)?;
        Self::from_json(&j)
    }
}

/// Decode a whole JSONL document (one record per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<CycleRecord>, RecordError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(CycleRecord::from_jsonl_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            t_ms: 2_000 * (cycle + 1),
            target_gips: 0.5,
            measured_gips: 0.487,
            error: 0.013,
            base_estimate: 0.231,
            innovation: -0.004,
            required_speedup: 2.16,
            lower: (7, 3),
            upper: (8, 4),
            tau_lower_ms: 1_200,
            tau_upper_ms: 800,
            solve_ns: 1_850,
            actuation_ns: 12_400,
            fault: Some(FaultClass::Busy),
            level: Level::SafeConfig,
            restarts: 1,
            snapshot_errors: 0,
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let rec = sample(3);
        let line = rec.to_jsonl_line();
        assert!(line.contains("\"schema\":\"asgov-obs/v2\""));
        assert!(line.contains("\"restarts\":1"));
        let back = CycleRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn legacy_v1_lines_decode_with_zero_supervisor_fields() {
        // A v1 record has no restarts/snapshot_errors fields at all.
        let mut j = sample(2).to_json();
        j.set("schema", LEGACY_SCHEMA);
        let line = j.to_string();
        // (leftover v2 fields in the object are simply ignored for v1;
        // build a true v1 line by removing them)
        let line = line
            .replace(",\"restarts\":1", "")
            .replace(",\"snapshot_errors\":0", "");
        let back = CycleRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(back.restarts, 0);
        assert_eq!(back.snapshot_errors, 0);
        assert_eq!(back.cycle, 2);
        assert_eq!(back.fault, Some(FaultClass::Busy));
        // A v2 line missing the new fields is rejected, not defaulted.
        let mut j = sample(2).to_json();
        j.set("restarts", asgov_util::Json::Null);
        assert!(matches!(
            CycleRecord::from_json(&j).unwrap_err(),
            RecordError::MissingField("restarts")
        ));
    }

    #[test]
    fn null_fault_round_trips() {
        let rec = CycleRecord {
            fault: None,
            level: Level::Full,
            ..sample(0)
        };
        let back = CycleRecord::from_jsonl_line(&rec.to_jsonl_line()).unwrap();
        assert_eq!(back.fault, None);
        assert_eq!(back.level, Level::Full);
    }

    #[test]
    fn non_finite_floats_survive_the_wire_as_nan() {
        // A record that picked up a NaN (e.g. a 0/0 error ratio under a
        // fault) serializes those fields as `null`; the reader recovers
        // NaN instead of rejecting the line, and every other field is
        // intact.
        let rec = CycleRecord {
            measured_gips: f64::NAN,
            innovation: f64::INFINITY,
            ..sample(5)
        };
        let line = rec.to_jsonl_line();
        assert!(line.contains("\"measured_gips\":null"));
        assert!(line.contains("\"innovation\":null"));
        let back = CycleRecord::from_jsonl_line(&line).unwrap();
        assert!(back.measured_gips.is_nan());
        assert!(back.innovation.is_nan()); // infinity is lossy: null → NaN
        assert_eq!(back.cycle, rec.cycle);
        assert_eq!(back.target_gips, rec.target_gips);
        assert_eq!(back.fault, rec.fault);
    }

    #[test]
    fn null_integer_fields_are_rejected() {
        let mut j = sample(0).to_json();
        j.set("solve_ns", asgov_util::Json::Null);
        let err = CycleRecord::from_json(&j).unwrap_err();
        assert!(matches!(err, RecordError::MissingField("solve_ns")));
    }

    #[test]
    fn rejects_unknown_schema() {
        let mut j = sample(0).to_json();
        j.set("schema", "asgov-obs/v999");
        let err = CycleRecord::from_json(&j).unwrap_err();
        assert!(matches!(err, RecordError::BadSchema(_)));
    }

    #[test]
    fn rejects_missing_field() {
        let line = r#"{"schema":"asgov-obs/v1","cycle":1}"#;
        let err = CycleRecord::from_jsonl_line(line).unwrap_err();
        assert!(matches!(err, RecordError::MissingField(_)));
    }

    #[test]
    fn wire_names_are_total_and_invertible() {
        for f in FaultClass::ALL {
            assert_eq!(FaultClass::parse(f.as_str()), Some(f));
        }
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(FaultClass::parse("nope"), None);
        assert_eq!(Level::parse("nope"), None);
    }
}
