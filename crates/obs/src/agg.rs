//! Columnar streaming aggregation for fleet-scale runs.
//!
//! [`FleetStats`] digests millions of per-device samples into a fixed
//! struct-of-arrays footprint: one column entry per *stream* (the
//! fleet uses one stream per app and one per fault class) holding
//! count / excluded-count / exact fixed-point moment sums / min / max,
//! plus a shared-bounds log histogram row per stream. Recording and
//! merging never allocate, so shards can fold into it from the hot
//! loop without materializing per-device rows.
//!
//! # Exact, order-fixed merging
//!
//! `merge` must be **associative and commutative down to the bit** so
//! a pipelined fleet (shards completing in scheduler-dependent order)
//! can fold partial aggregates in any grouping and still produce the
//! bit-identical report the serial path does. Floating-point addition
//! is not associative, so the moment sums are kept as **Q32 signed
//! fixed-point integers** (`i128`, value × 2³²): integer addition is
//! exact, hence associative; histogram bucket counts are `u64` adds;
//! min/max over `f64` are associative and commutative as-is. Means,
//! M2 and standard deviations are *derived at read time* from the
//! exact sums, so every grouping of merges reads back identically.
//!
//! Samples outside the representable window (`|v| > 2⁶²/2³²`, i.e.
//! ~4.6 × 10¹⁸) or non-finite are counted as *excluded* — same policy
//! as a degenerate baseline — rather than poisoning the sums.

use asgov_util::Json;

/// Q32 fixed-point scale for the exact moment sums.
const Q32: f64 = 4_294_967_296.0; // 2^32

/// Largest magnitude a sample may have and still enter the moment
/// sums exactly (|v|² must fit Q32 in an i128 across ~10²² samples).
const SAMPLE_LIMIT: f64 = 1.0e9;

/// Layout mismatch between two [`FleetStats`] (different stream count
/// or bucket bounds); merging such aggregates would be meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutMismatch;

impl std::fmt::Display for LayoutMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FleetStats layout mismatch (streams or bounds differ)")
    }
}

impl std::error::Error for LayoutMismatch {}

/// A columnar, allocation-free (after construction) streaming
/// aggregator over a fixed set of streams. See the module docs for
/// the exactness contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Shared ascending histogram bucket upper bounds; values above
    /// the last bound (or excluded) land in the trailing overflow
    /// bucket. Identical for every stream, so merge is positional.
    bounds: Vec<f64>,
    /// Samples per stream (including excluded ones).
    count: Vec<u64>,
    /// Excluded samples per stream (degenerate / non-finite / out of
    /// range) — counted, but absent from moments and min/max.
    excluded: Vec<u64>,
    /// Exact Q32 sum of included samples, per stream.
    sum_q32: Vec<i128>,
    /// Exact Q32 sum of squared included samples, per stream.
    sumsq_q32: Vec<i128>,
    /// Smallest included sample per stream (+∞ when none).
    min: Vec<f64>,
    /// Largest included sample per stream (−∞ when none).
    max: Vec<f64>,
    /// Row-major bucket counts: `streams × (bounds.len() + 1)`.
    hist: Vec<u64>,
}

impl FleetStats {
    /// An aggregator over `streams` streams with the given shared
    /// ascending bucket bounds.
    pub fn with_bounds(streams: usize, bounds: Vec<f64>) -> Self {
        let row = bounds.len() + 1;
        Self {
            bounds,
            count: vec![0; streams],
            excluded: vec![0; streams],
            sum_q32: vec![0; streams],
            sumsq_q32: vec![0; streams],
            min: vec![f64::INFINITY; streams],
            max: vec![f64::NEG_INFINITY; streams],
            hist: vec![0; streams * row],
        }
    }

    /// An aggregator shaped for energy-savings percentages: symmetric
    /// log buckets from ±0.1 % to ±1000 % around zero (regressions are
    /// negative savings, so the negative side matters as much as the
    /// positive one).
    pub fn savings_pct(streams: usize) -> Self {
        let magnitudes = [
            0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0,
        ];
        let mut bounds: Vec<f64> = magnitudes.iter().rev().map(|m| -m).collect();
        bounds.extend(magnitudes);
        Self::with_bounds(streams, bounds)
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.count.len()
    }

    /// Record one sample into `stream`. Out-of-range streams are
    /// ignored (the fleet's stream layout is static, so this is a
    /// can't-happen guard, not a silent API).
    pub fn record(&mut self, stream: usize, v: f64) {
        if stream >= self.streams() {
            return;
        }
        if !v.is_finite() || v.abs() > SAMPLE_LIMIT {
            self.record_excluded(stream);
            return;
        }
        if let Some(c) = self.count.get_mut(stream) {
            *c += 1;
        }
        if let Some(s) = self.sum_q32.get_mut(stream) {
            *s += q32(v);
        }
        if let Some(s) = self.sumsq_q32.get_mut(stream) {
            *s += q32(v * v);
        }
        if let Some(m) = self.min.get_mut(stream) {
            *m = m.min(v);
        }
        if let Some(m) = self.max.get_mut(stream) {
            *m = m.max(v);
        }
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.bump_bucket(stream, idx);
    }

    /// Record an excluded sample (degenerate baseline): counted, lands
    /// in the overflow bucket, absent from moments and min/max.
    pub fn record_excluded(&mut self, stream: usize) {
        if stream >= self.streams() {
            return;
        }
        if let Some(c) = self.count.get_mut(stream) {
            *c += 1;
        }
        if let Some(c) = self.excluded.get_mut(stream) {
            *c += 1;
        }
        self.bump_bucket(stream, self.bounds.len());
    }

    fn bump_bucket(&mut self, stream: usize, idx: usize) {
        let row = self.bounds.len() + 1;
        if let Some(c) = self.hist.get_mut(stream * row + idx) {
            *c += 1;
        }
    }

    /// Reset every column to empty, keeping the layout (for scratch
    /// reuse across batches — no allocation).
    pub fn reset(&mut self) {
        self.count.fill(0);
        self.excluded.fill(0);
        self.sum_q32.fill(0);
        self.sumsq_q32.fill(0);
        self.min.fill(f64::INFINITY);
        self.max.fill(f64::NEG_INFINITY);
        self.hist.fill(0);
    }

    /// Fold `other` into `self`. Exactly associative and commutative:
    /// any merge tree over the same multiset of recorded samples
    /// yields bit-identical state (see module docs).
    ///
    /// # Errors
    ///
    /// [`LayoutMismatch`] if stream counts or bucket bounds differ
    /// (`self` is left unchanged).
    pub fn merge(&mut self, other: &FleetStats) -> Result<(), LayoutMismatch> {
        let same_bounds = self.bounds.len() == other.bounds.len()
            && self
                .bounds
                .iter()
                .zip(&other.bounds)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_bounds || self.streams() != other.streams() {
            return Err(LayoutMismatch);
        }
        for (a, b) in self.count.iter_mut().zip(&other.count) {
            *a += b;
        }
        for (a, b) in self.excluded.iter_mut().zip(&other.excluded) {
            *a += b;
        }
        for (a, b) in self.sum_q32.iter_mut().zip(&other.sum_q32) {
            *a += b;
        }
        for (a, b) in self.sumsq_q32.iter_mut().zip(&other.sumsq_q32) {
            *a += b;
        }
        for (a, b) in self.min.iter_mut().zip(&other.min) {
            *a = a.min(*b);
        }
        for (a, b) in self.max.iter_mut().zip(&other.max) {
            *a = a.max(*b);
        }
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        Ok(())
    }

    /// Total samples recorded into `stream` (including excluded).
    pub fn count(&self, stream: usize) -> u64 {
        self.count.get(stream).copied().unwrap_or(0)
    }

    /// Excluded samples recorded into `stream`.
    pub fn excluded(&self, stream: usize) -> u64 {
        self.excluded.get(stream).copied().unwrap_or(0)
    }

    /// Included (non-excluded) samples in `stream`.
    pub fn included(&self, stream: usize) -> u64 {
        self.count(stream).saturating_sub(self.excluded(stream))
    }

    /// Mean of the included samples (0 when none).
    pub fn mean(&self, stream: usize) -> f64 {
        let n = self.included(stream);
        if n == 0 {
            return 0.0;
        }
        let sum = self.sum_q32.get(stream).copied().unwrap_or(0);
        (sum as f64 / Q32) / n as f64
    }

    /// Population standard deviation of the included samples, derived
    /// from the exact sums (0 when fewer than 2).
    pub fn std(&self, stream: usize) -> f64 {
        let n = self.included(stream);
        if n < 2 {
            return 0.0;
        }
        let sum = self.sum_q32.get(stream).copied().unwrap_or(0) as f64 / Q32;
        let sumsq = self.sumsq_q32.get(stream).copied().unwrap_or(0) as f64 / Q32;
        let m2 = (sumsq - sum * sum / n as f64).max(0.0);
        (m2 / n as f64).sqrt()
    }

    /// Smallest included sample, if any.
    pub fn min(&self, stream: usize) -> Option<f64> {
        let m = self.min.get(stream).copied()?;
        m.is_finite().then_some(m)
    }

    /// Largest included sample, if any.
    pub fn max(&self, stream: usize) -> Option<f64> {
        let m = self.max.get(stream).copied()?;
        m.is_finite().then_some(m)
    }

    /// Upper bound of the bucket containing quantile `q` of `stream`'s
    /// samples (bucket-exact; excluded samples sit in overflow).
    pub fn quantile(&self, stream: usize, q: f64) -> Option<f64> {
        let total = self.count(stream);
        if total == 0 {
            return None;
        }
        let row = self.bounds.len() + 1;
        let counts = self.hist.get(stream * row..(stream + 1) * row)?;
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        None
    }

    /// The non-empty buckets of `stream` as `(upper_bound, count)`;
    /// overflow reports `f64::INFINITY`.
    pub fn buckets(&self, stream: usize) -> impl Iterator<Item = (f64, u64)> + '_ {
        let row = self.bounds.len() + 1;
        let counts = self
            .hist
            .get(stream * row..(stream + 1) * row)
            .unwrap_or(&[]);
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(counts.iter().copied())
            .filter(|(_, c)| *c > 0)
    }

    /// JSON summary for one stream: counts, derived moments, quantile
    /// bounds and the non-empty buckets.
    pub fn stream_json(&self, stream: usize) -> Json {
        let mut o = Json::object();
        o.set("count", self.count(stream) as f64);
        o.set("excluded", self.excluded(stream) as f64);
        o.set("mean", self.mean(stream));
        o.set("std", self.std(stream));
        o.set("min", self.min(stream).unwrap_or(0.0));
        o.set("max", self.max(stream).unwrap_or(0.0));
        for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            o.set(key, self.quantile(stream, q).unwrap_or(0.0));
        }
        let buckets: Vec<Json> = self
            .buckets(stream)
            .map(|(b, c)| {
                let mut e = Json::object();
                e.set("le", b);
                e.set("n", c as f64);
                e
            })
            .collect();
        o.set("buckets", buckets);
        o
    }

    /// Serialize the full columnar state to a self-describing word
    /// stream (for checkpoint codecs): layout header, bounds bits,
    /// then every column. Exact — `deserialize_words` round-trips
    /// bit-identically.
    pub fn serialize_words(&self) -> Vec<u64> {
        let mut w =
            Vec::with_capacity(2 + self.bounds.len() + self.streams() * 8 + self.hist.len());
        w.push(self.streams() as u64);
        w.push(self.bounds.len() as u64);
        w.extend(self.bounds.iter().map(|b| b.to_bits()));
        w.extend(self.count.iter().copied());
        w.extend(self.excluded.iter().copied());
        for s in &self.sum_q32 {
            let u = *s as u128;
            w.push((u >> 64) as u64);
            w.push(u as u64);
        }
        for s in &self.sumsq_q32 {
            let u = *s as u128;
            w.push((u >> 64) as u64);
            w.push(u as u64);
        }
        w.extend(self.min.iter().map(|v| v.to_bits()));
        w.extend(self.max.iter().map(|v| v.to_bits()));
        w.extend(self.hist.iter().copied());
        w
    }

    /// Rebuild an aggregator from [`FleetStats::serialize_words`]
    /// output. Returns `None` on any shape inconsistency (truncated or
    /// oversized stream, impossible header) — never panics.
    pub fn deserialize_words(words: &[u64]) -> Option<Self> {
        let mut it = words.iter().copied();
        let streams = usize::try_from(it.next()?).ok()?;
        let nbounds = usize::try_from(it.next()?).ok()?;
        // Cheap sanity cap: the fleet's layouts are tiny; refuse
        // headers that would allocate absurd columns from a corrupt
        // frame.
        if streams > 1 << 20 || nbounds > 1 << 20 {
            return None;
        }
        let expect = 2 + nbounds + streams * 8 + streams * (nbounds + 1);
        if words.len() != expect {
            return None;
        }
        let bounds: Vec<f64> = (&mut it).take(nbounds).map(f64::from_bits).collect();
        let count: Vec<u64> = (&mut it).take(streams).collect();
        let excluded: Vec<u64> = (&mut it).take(streams).collect();
        let take_i128s = |n: usize, it: &mut dyn Iterator<Item = u64>| -> Option<Vec<i128>> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let hi = it.next()?;
                let lo = it.next()?;
                out.push((((hi as u128) << 64) | lo as u128) as i128);
            }
            Some(out)
        };
        let sum_q32 = take_i128s(streams, &mut it)?;
        let sumsq_q32 = take_i128s(streams, &mut it)?;
        let min: Vec<f64> = (&mut it).take(streams).map(f64::from_bits).collect();
        let max: Vec<f64> = (&mut it).take(streams).map(f64::from_bits).collect();
        let hist: Vec<u64> = (&mut it).take(streams * (nbounds + 1)).collect();
        if bounds.len() != nbounds
            || count.len() != streams
            || excluded.len() != streams
            || min.len() != streams
            || max.len() != streams
            || hist.len() != streams * (nbounds + 1)
            || it.next().is_some()
        {
            return None;
        }
        Some(Self {
            bounds,
            count,
            excluded,
            sum_q32,
            sumsq_q32,
            min,
            max,
            hist,
        })
    }
}

/// Exact Q32 fixed-point conversion. `v` is pre-checked finite and
/// within [`SAMPLE_LIMIT`], so the product fits i128 comfortably.
fn q32(v: f64) -> i128 {
    (v * Q32).round() as i128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, i: u64) -> f64 {
        // Deterministic pseudo-random savings-like values in ±150.
        let z = (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((z >> 11) as f64 / (1u64 << 53) as f64) * 300.0 - 150.0
    }

    #[test]
    fn moments_match_direct_computation() {
        let mut s = FleetStats::savings_pct(1);
        let vals = [10.0, -5.0, 30.0, 0.25, 99.5];
        for v in vals {
            s.record(0, v);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!((s.mean(0) - mean).abs() < 1e-6);
        assert!((s.std(0) - var.sqrt()).abs() < 1e-5);
        assert_eq!(s.min(0), Some(-5.0));
        assert_eq!(s.max(0), Some(99.5));
        assert_eq!(s.count(0), 5);
        assert_eq!(s.excluded(0), 0);
    }

    #[test]
    fn excluded_samples_count_but_do_not_poison() {
        let mut s = FleetStats::savings_pct(2);
        s.record(0, 50.0);
        s.record_excluded(0);
        s.record(0, f64::NAN);
        s.record(0, 1.0e12);
        assert_eq!(s.count(0), 4);
        assert_eq!(s.excluded(0), 3);
        assert!((s.mean(0) - 50.0).abs() < 1e-9);
        assert_eq!(s.count(1), 0, "streams are independent");
    }

    #[test]
    fn merge_is_bit_exactly_associative_and_commutative() {
        // Three partials merged in every grouping/order must agree
        // down to the serialized bit.
        let parts: Vec<FleetStats> = (0..3)
            .map(|p| {
                let mut s = FleetStats::savings_pct(4);
                for i in 0..500 {
                    let v = sample(p * 7 + 1, i);
                    s.record((i % 4) as usize, v);
                    if i % 97 == 0 {
                        s.record_excluded((i % 4) as usize);
                    }
                }
                s
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut acc = FleetStats::savings_pct(4);
            for &i in order {
                acc.merge(&parts[i]).expect("same layout");
            }
            acc.serialize_words()
        };
        let left = fold(&[0, 1, 2]);
        // Right-assoc tree: (1 ⊕ 2) folded into 0.
        let mut right = parts[0].clone();
        let mut tail = parts[1].clone();
        tail.merge(&parts[2]).expect("same layout");
        right.merge(&tail).expect("same layout");
        assert_eq!(left, fold(&[2, 0, 1]), "commutative");
        assert_eq!(left, right.serialize_words(), "associative");
    }

    #[test]
    fn merge_rejects_layout_mismatch() {
        let mut a = FleetStats::savings_pct(2);
        let b = FleetStats::savings_pct(3);
        assert_eq!(a.merge(&b), Err(LayoutMismatch));
        let c = FleetStats::with_bounds(2, vec![1.0, 2.0]);
        assert_eq!(a.merge(&c), Err(LayoutMismatch));
    }

    #[test]
    fn merge_equals_direct_recording() {
        let mut direct = FleetStats::savings_pct(2);
        let mut a = FleetStats::savings_pct(2);
        let mut b = FleetStats::savings_pct(2);
        for i in 0..1000 {
            let v = sample(42, i);
            direct.record((i % 2) as usize, v);
            if i < 400 {
                a.record((i % 2) as usize, v);
            } else {
                b.record((i % 2) as usize, v);
            }
        }
        a.merge(&b).expect("same layout");
        assert_eq!(a.serialize_words(), direct.serialize_words());
    }

    #[test]
    fn reset_restores_empty_without_reallocating() {
        let mut s = FleetStats::savings_pct(3);
        for i in 0..100 {
            s.record((i % 3) as usize, sample(7, i));
        }
        s.reset();
        assert_eq!(
            s.serialize_words(),
            FleetStats::savings_pct(3).serialize_words()
        );
    }

    #[test]
    fn words_round_trip_bit_identically() {
        let mut s = FleetStats::savings_pct(5);
        for i in 0..2000 {
            s.record((i % 5) as usize, sample(3, i));
        }
        s.record_excluded(4);
        let words = s.serialize_words();
        let back = FleetStats::deserialize_words(&words).expect("clean stream");
        assert_eq!(back.serialize_words(), words);
        assert_eq!(back, s);
    }

    #[test]
    fn corrupt_word_streams_are_rejected_not_panicked() {
        let mut s = FleetStats::savings_pct(2);
        s.record(0, 5.0);
        let words = s.serialize_words();
        assert!(FleetStats::deserialize_words(&words[..words.len() - 1]).is_none());
        let mut huge = words.clone();
        huge[0] = u64::MAX;
        assert!(FleetStats::deserialize_words(&huge).is_none());
        assert!(FleetStats::deserialize_words(&[]).is_none());
    }

    #[test]
    fn quantiles_and_buckets_reflect_the_distribution() {
        let mut s = FleetStats::savings_pct(1);
        for _ in 0..90 {
            s.record(0, 0.05); // ≤ 0.1 bucket
        }
        for _ in 0..10 {
            s.record(0, 80.0); // ≤ 100 bucket
        }
        assert_eq!(s.quantile(0, 0.5), Some(0.1));
        assert_eq!(s.quantile(0, 0.95), Some(100.0));
        let total: u64 = s.buckets(0).map(|(_, c)| c).sum();
        assert_eq!(total, 100);
    }
}
