//! The sink the device and controller emit trace data into.

use crate::hist::Histogram;
use crate::record::{CycleRecord, FaultClass, Level};
use crate::ring::RingBuffer;
use asgov_util::Json;

/// Receives per-cycle records (from the controller) and actuation
/// events (from the simulated device). Implementations must be cheap:
/// the controller calls into the sink from its hot path, and the bench
/// suite holds the overhead budget to < 5 % per cycle.
///
/// `Debug` is a supertrait so sinks can live inside `Device`, which
/// derives `Debug`.
pub trait TraceSink: std::fmt::Debug {
    /// One control cycle completed.
    fn record_cycle(&mut self, rec: &CycleRecord);

    /// A device-level actuation happened (`kind` is a stable name such
    /// as `"cpu-freq"` or `"cpufreq-governor"`). Default: ignored.
    fn device_event(&mut self, t_ms: u64, kind: &str) {
        let _ = (t_ms, kind);
    }
}

/// Discards everything. Installing a `NullSink` is bit-identical to
/// installing no sink at all (asserted in `tests/observability.rs`,
/// mirroring the empty-`FaultPlan` contract in `tests/chaos.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record_cycle(&mut self, _rec: &CycleRecord) {}
}

/// Aggregated counters and histograms over everything a sink has seen.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Control cycles observed.
    pub cycles: u64,
    /// Cycles that carried an actuation fault, per [`FaultClass`]
    /// (indexed by [`FaultClass::index`]).
    pub faults: [u64; 5],
    /// Cycles spent at each degradation [`Level`] (indexed by
    /// [`Level::index`]).
    pub level_cycles: [u64; 3],
    /// Ladder step-downs observed (one per level crossed).
    pub degradations: u64,
    /// Completed recoveries (back to `Full`), attributed to the fault
    /// class that opened the degraded episode.
    pub recoveries_by_fault: [u64; 5],
    /// Device-level actuation events, by kind.
    pub device_events: u64,
    /// Optimizer solve time, ns.
    pub solve_ns: Histogram,
    /// Actuation latency, ns.
    pub actuation_ns: Histogram,
    /// |Kalman innovation|, GIPS.
    pub innovation_abs: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            cycles: 0,
            faults: [0; 5],
            level_cycles: [0; 3],
            degradations: 0,
            recoveries_by_fault: [0; 5],
            device_events: 0,
            solve_ns: Histogram::time_ns(),
            actuation_ns: Histogram::time_ns(),
            innovation_abs: Histogram::magnitude(),
        }
    }
}

impl Metrics {
    /// Total faulted cycles across all classes.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total completed recoveries across all classes.
    pub fn total_recoveries(&self) -> u64 {
        self.recoveries_by_fault.iter().sum()
    }

    /// JSON summary (used by `asgov trace` / `asgov stats` output).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("cycles", self.cycles as f64);
        let mut faults = Json::object();
        let mut recoveries = Json::object();
        // `FaultClass::ALL` / `Level::ALL` order matches `index()`, so
        // zipping the class list against the counter arrays avoids any
        // indexing entirely.
        for (f, (&n, &r)) in FaultClass::ALL
            .iter()
            .zip(self.faults.iter().zip(self.recoveries_by_fault.iter()))
        {
            if n > 0 {
                faults.set(f.as_str(), n as f64);
            }
            if r > 0 {
                recoveries.set(f.as_str(), r as f64);
            }
        }
        o.set("faulted_cycles", faults);
        o.set("recoveries_by_fault", recoveries);
        let mut levels = Json::object();
        for (l, &n) in Level::ALL.iter().zip(self.level_cycles.iter()) {
            if n > 0 {
                levels.set(l.as_str(), n as f64);
            }
        }
        o.set("level_cycles", levels);
        o.set("degradations", self.degradations as f64);
        o.set("device_events", self.device_events as f64);
        o.set("solve_ns", self.solve_ns.to_json());
        o.set("actuation_ns", self.actuation_ns.to_json());
        o.set("innovation_abs", self.innovation_abs.to_json());
        o
    }
}

/// The standard in-memory sink: a fixed-capacity [`RingBuffer`] of the
/// newest records plus running [`Metrics`]. Construction reserves all
/// storage; the record path never allocates.
#[derive(Debug, Clone)]
pub struct RingSink {
    ring: RingBuffer<CycleRecord>,
    metrics: Metrics,
    prev_level: Level,
    /// The fault class that opened the current degraded episode, for
    /// recovery attribution.
    episode_fault: Option<FaultClass>,
}

impl RingSink {
    /// A sink retaining the newest `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: RingBuffer::new(capacity),
            metrics: Metrics::default(),
            prev_level: Level::Full,
            episode_fault: None,
        }
    }

    /// The retained records, oldest → newest.
    pub fn records(&self) -> Vec<CycleRecord> {
        self.ring.iter().copied().collect()
    }

    /// The underlying ring (for capacity / drop accounting).
    pub fn ring(&self) -> &RingBuffer<CycleRecord> {
        &self.ring
    }

    /// The aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Serialize the retained records as JSONL, one schema-versioned
    /// compact object per line, oldest → newest.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.ring.iter() {
            out.push_str(&rec.to_jsonl_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record_cycle(&mut self, rec: &CycleRecord) {
        self.metrics.cycles += 1;
        if let Some(n) = self.metrics.level_cycles.get_mut(rec.level.index()) {
            *n += 1;
        }
        if let Some(fault) = rec.fault {
            if let Some(n) = self.metrics.faults.get_mut(fault.index()) {
                *n += 1;
            }
            if self.episode_fault.is_none() {
                self.episode_fault = Some(fault);
            }
        }
        if rec.level.index() > self.prev_level.index() {
            self.metrics.degradations += (rec.level.index() - self.prev_level.index()) as u64;
        }
        if rec.level == Level::Full && self.prev_level != Level::Full {
            if let Some(n) = self
                .episode_fault
                .and_then(|fault| self.metrics.recoveries_by_fault.get_mut(fault.index()))
            {
                *n += 1;
            }
        }
        if rec.level == Level::Full && rec.fault.is_none() {
            self.episode_fault = None;
        }
        self.prev_level = rec.level;
        self.metrics.solve_ns.record(rec.solve_ns as f64);
        self.metrics.actuation_ns.record(rec.actuation_ns as f64);
        self.metrics.innovation_abs.record(rec.innovation.abs());
        self.ring.push(*rec);
    }

    fn device_event(&mut self, _t_ms: u64, _kind: &str) {
        self.metrics.device_events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, fault: Option<FaultClass>, level: Level) -> CycleRecord {
        CycleRecord {
            cycle,
            t_ms: 2_000 * (cycle + 1),
            innovation: -0.25,
            solve_ns: 1_500,
            actuation_ns: 9_000,
            fault,
            level,
            ..CycleRecord::default()
        }
    }

    #[test]
    fn aggregates_counters_and_histograms() {
        let mut sink = RingSink::new(8);
        sink.record_cycle(&rec(0, None, Level::Full));
        sink.record_cycle(&rec(1, Some(FaultClass::Busy), Level::Full));
        sink.record_cycle(&rec(2, Some(FaultClass::Busy), Level::SafeConfig));
        sink.record_cycle(&rec(3, None, Level::SafeConfig));
        sink.record_cycle(&rec(4, None, Level::Full));
        let m = sink.metrics();
        assert_eq!(m.cycles, 5);
        assert_eq!(m.faults[FaultClass::Busy.index()], 2);
        assert_eq!(m.level_cycles[Level::Full.index()], 3);
        assert_eq!(m.level_cycles[Level::SafeConfig.index()], 2);
        assert_eq!(m.degradations, 1);
        assert_eq!(m.recoveries_by_fault[FaultClass::Busy.index()], 1);
        assert_eq!(m.total_recoveries(), 1);
        assert_eq!(m.solve_ns.count(), 5);
        assert_eq!(m.innovation_abs.count(), 5);
    }

    #[test]
    fn recovery_attributed_to_opening_fault() {
        // Busy opens the episode; a later WrongGovernor mid-episode
        // does not steal the attribution.
        let mut sink = RingSink::new(8);
        sink.record_cycle(&rec(0, Some(FaultClass::Busy), Level::SafeConfig));
        sink.record_cycle(&rec(1, Some(FaultClass::WrongGovernor), Level::SafeConfig));
        sink.record_cycle(&rec(2, None, Level::Full));
        let m = sink.metrics();
        assert_eq!(m.recoveries_by_fault[FaultClass::Busy.index()], 1);
        assert_eq!(m.recoveries_by_fault[FaultClass::WrongGovernor.index()], 0);
    }

    #[test]
    fn jsonl_lists_retained_records_in_order() {
        let mut sink = RingSink::new(2);
        for i in 0..4 {
            sink.record_cycle(&rec(i, None, Level::Full));
        }
        let text = sink.to_jsonl();
        let records = crate::record::parse_jsonl(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cycle, 2);
        assert_eq!(records[1].cycle, 3);
        assert_eq!(sink.ring().dropped(), 2);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.record_cycle(&rec(0, None, Level::Full));
        sink.device_event(10, "cpu-freq");
    }

    #[test]
    fn metrics_json_has_the_headline_keys() {
        let mut sink = RingSink::new(4);
        sink.record_cycle(&rec(0, Some(FaultClass::Busy), Level::Full));
        let j = sink.metrics().to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_f64), Some(1.0));
        assert!(j.get("solve_ns").is_some());
        assert_eq!(
            j.get("faulted_cycles")
                .and_then(|f| f.get("busy"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
