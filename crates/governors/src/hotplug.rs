//! CPU hotplugging (`mpdecision`).
//!
//! Qualcomm's `mpdecision` daemon onlines and offlines cores based on
//! load. The paper **disables it** during all experiments ("to prevent
//! CPU hotplugging which can lead to inaccurate measurements", §IV-A);
//! it is implemented here so that choice can be reproduced as an
//! ablation: with `MpDecision` running, repeated measurements of the
//! same configuration vary, exactly the effect the authors avoided.

use asgov_soc::{Device, Policy};

/// Tunables of [`MpDecision`].
#[derive(Debug, Clone, PartialEq)]
pub struct MpDecisionParams {
    /// Sampling period, ms.
    pub sample_ms: u64,
    /// Per-online-core load above which another core is onlined.
    pub up_threshold: f64,
    /// Per-online-core load below which a core is offlined.
    pub down_threshold: f64,
    /// Minimum online cores.
    pub min_cores: f64,
    /// Maximum online cores.
    pub max_cores: f64,
}

impl Default for MpDecisionParams {
    fn default() -> Self {
        Self {
            sample_ms: 100,
            up_threshold: 0.70,
            down_threshold: 0.25,
            min_cores: 1.0,
            max_cores: 4.0,
        }
    }
}

/// Simplified `mpdecision`: steps the online-core count one core at a
/// time based on aggregate load.
#[derive(Debug, Clone)]
pub struct MpDecision {
    params: MpDecisionParams,
    next_sample_ms: u64,
    last_ms: u64,
    last_busy_core_ms: f64,
}

impl MpDecision {
    /// Create with explicit tunables.
    pub fn new(params: MpDecisionParams) -> Self {
        Self {
            params,
            next_sample_ms: 0,
            last_ms: 0,
            last_busy_core_ms: 0.0,
        }
    }
}

impl Default for MpDecision {
    fn default() -> Self {
        Self::new(MpDecisionParams::default())
    }
}

impl Policy for MpDecision {
    fn name(&self) -> &str {
        "mpdecision"
    }

    fn start(&mut self, device: &mut Device) {
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        self.last_ms = device.now_ms();
        self.last_busy_core_ms = device.busy_core_ms();
    }

    fn tick(&mut self, device: &mut Device) {
        if device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        let now = device.now_ms();
        let dt = now.saturating_sub(self.last_ms) as f64;
        if dt <= 0.0 {
            return;
        }
        let busy_cores = (device.busy_core_ms() - self.last_busy_core_ms) / dt;
        self.last_ms = now;
        self.last_busy_core_ms = device.busy_core_ms();

        let online = device.online_cores();
        let per_core = busy_cores / online;
        if per_core > self.params.up_threshold && online < self.params.max_cores {
            device.set_online_cores((online + 1.0).min(self.params.max_cores));
        } else if per_core < self.params.down_threshold && online > self.params.min_cores {
            device.set_online_cores((online - 1.0).max(self.params.min_cores));
        }
    }

    fn finish(&mut self, device: &mut Device) {
        // Leave the device in the paper's experimental state.
        device.set_online_cores(4.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{Demand, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn heavy() -> Demand {
        Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.1,
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        }
    }

    #[test]
    fn offlines_cores_when_idle() {
        let mut dev = device();
        let mut mp = MpDecision::default();
        mp.start(&mut dev);
        let idle = Demand::idle();
        for _ in 0..2_000 {
            dev.tick(&idle);
            mp.tick(&mut dev);
        }
        assert_eq!(dev.online_cores(), 1.0);
    }

    #[test]
    fn onlines_cores_under_load() {
        let mut dev = device();
        dev.set_online_cores(1.0);
        let mut mp = MpDecision::default();
        mp.start(&mut dev);
        let d = heavy();
        for _ in 0..2_000 {
            dev.tick(&d);
            mp.tick(&mut dev);
        }
        assert!(dev.online_cores() >= 3.0, "got {}", dev.online_cores());
    }

    #[test]
    fn finish_restores_four_cores() {
        let mut dev = device();
        let mut mp = MpDecision::default();
        mp.start(&mut dev);
        dev.set_online_cores(2.0);
        mp.finish(&mut dev);
        assert_eq!(dev.online_cores(), 4.0);
    }

    #[test]
    fn hotplugging_perturbs_measurements() {
        // The reason the paper disables mpdecision: the same pinned
        // configuration measures differently depending on hotplug state.
        let measure = |with_mp: bool| {
            let mut dev = device();
            dev.set_cpu_governor("userspace");
            dev.set_cpu_freq(asgov_soc::FreqIndex(9));
            let mut mp = MpDecision::default();
            if with_mp {
                mp.start(&mut dev);
            }
            // Alternate idle and busy 250 ms slices.
            let mut executed = 0.0;
            for i in 0..4_000u64 {
                let d = if (i / 250) % 2 == 0 {
                    Demand::idle()
                } else {
                    heavy()
                };
                let out = dev.tick(&d);
                if with_mp {
                    mp.tick(&mut dev);
                }
                executed += out.executed.instructions;
            }
            executed
        };
        let pinned = measure(false);
        let hotplugged = measure(true);
        assert!(
            hotplugged < pinned * 0.95,
            "hotplugging should visibly cost throughput on bursty load: {pinned} vs {hotplugged}"
        );
    }
}
