//! Packet-rate coalescing manager for the radio (paper §VII axis).
//!
//! Serves the same role for the network axis that `cpubw_hwmon` serves
//! for the memory bus: watch the serviced packet rate and adapt the
//! radio's service-rate setting — up immediately when saturated, down
//! lazily when over-provisioned.

use asgov_soc::{Device, NetRateIndex, Policy};

/// Tunables of [`NetRateManager`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetRateManagerParams {
    /// Sampling period, ms.
    pub sample_ms: u64,
    /// Utilization of the current setting above which the manager steps
    /// up (saturation means demand is being throttled).
    pub up_threshold: f64,
    /// Utilization of the *next lower* setting below which the manager
    /// steps down.
    pub down_threshold: f64,
}

impl Default for NetRateManagerParams {
    fn default() -> Self {
        Self {
            sample_ms: 100,
            up_threshold: 0.95,
            down_threshold: 0.60,
        }
    }
}

/// Steps the radio's packet service rate to track offered load.
#[derive(Debug, Clone)]
pub struct NetRateManager {
    params: NetRateManagerParams,
    next_sample_ms: u64,
    last_ms: u64,
    last_serviced: f64,
}

impl NetRateManager {
    /// Create with explicit tunables.
    pub fn new(params: NetRateManagerParams) -> Self {
        Self {
            params,
            next_sample_ms: 0,
            last_ms: 0,
            last_serviced: 0.0,
        }
    }
}

impl Default for NetRateManager {
    fn default() -> Self {
        Self::new(NetRateManagerParams::default())
    }
}

impl Policy for NetRateManager {
    fn name(&self) -> &str {
        "netrate"
    }

    fn start(&mut self, device: &mut Device) {
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        self.last_ms = device.now_ms();
        self.last_serviced = device.radio().serviced_packets();
    }

    fn tick(&mut self, device: &mut Device) {
        if device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        let now = device.now_ms();
        let dt_s = now.saturating_sub(self.last_ms) as f64 * 1e-3;
        if dt_s <= 0.0 {
            return;
        }
        let serviced = device.radio().serviced_packets();
        let rate_pps = (serviced - self.last_serviced) / dt_s;
        self.last_ms = now;
        self.last_serviced = serviced;

        let cur = device.radio().rate();
        let cap = device.radio().rate_pps(cur);
        if rate_pps > self.params.up_threshold * cap && cur.0 + 1 < device.radio().num_rates() {
            device.set_net_rate(NetRateIndex(cur.0 + 1));
        } else if cur.0 > 0 {
            let lower_cap = device.radio().rate_pps(NetRateIndex(cur.0 - 1));
            if rate_pps < self.params.down_threshold * lower_cap {
                device.set_net_rate(NetRateIndex(cur.0 - 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{Demand, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn net_demand(pps: f64) -> Demand {
        Demand {
            net_pps: pps,
            desired_gips: Some(0.05),
            ..Demand::default()
        }
    }

    #[test]
    fn steps_up_under_saturation() {
        let mut dev = device();
        dev.set_net_rate(NetRateIndex(0)); // 100 pps
        let mut mgr = NetRateManager::default();
        mgr.start(&mut dev);
        for _ in 0..1_000 {
            dev.tick(&net_demand(3_000.0));
            mgr.tick(&mut dev);
        }
        assert!(
            dev.radio().rate().0 >= 3,
            "manager should climb to service 3k pps, at {}",
            dev.radio().rate()
        );
    }

    #[test]
    fn steps_down_when_quiet() {
        let mut dev = device();
        dev.set_net_rate(NetRateIndex(4));
        let mut mgr = NetRateManager::default();
        mgr.start(&mut dev);
        for _ in 0..2_000 {
            dev.tick(&net_demand(50.0));
            mgr.tick(&mut dev);
        }
        assert_eq!(dev.radio().rate(), NetRateIndex(0));
    }

    #[test]
    fn holds_a_matched_setting() {
        let mut dev = device();
        dev.set_net_rate(NetRateIndex(2)); // 1000 pps for 800 offered
        let mut mgr = NetRateManager::default();
        mgr.start(&mut dev);
        for _ in 0..1_000 {
            dev.tick(&net_demand(800.0));
            mgr.tick(&mut dev);
        }
        assert_eq!(dev.radio().rate(), NetRateIndex(2));
    }
}
