//! GPU (`kgsl`) devfreq governors.

use asgov_soc::{Device, GpuFreqIndex, Policy};

/// Tunables of the [`AdrenoTz`] governor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdrenoTzParams {
    /// Sampling period, ms.
    pub sample_ms: u64,
    /// GPU busy fraction above which the governor steps up.
    pub up_threshold: f64,
    /// GPU busy fraction below which the governor steps down.
    pub down_threshold: f64,
}

impl Default for AdrenoTzParams {
    fn default() -> Self {
        Self {
            sample_ms: 50,
            up_threshold: 0.80,
            down_threshold: 0.30,
        }
    }
}

/// Simplified `msm-adreno-tz`, the stock Adreno GPU governor: samples
/// GPU busy time and steps the frequency one ladder level at a time.
#[derive(Debug, Clone)]
pub struct AdrenoTz {
    params: AdrenoTzParams,
    next_sample_ms: u64,
    last_ms: u64,
    last_busy_ms: f64,
}

impl AdrenoTz {
    /// Create with explicit tunables.
    pub fn new(params: AdrenoTzParams) -> Self {
        Self {
            params,
            next_sample_ms: 0,
            last_ms: 0,
            last_busy_ms: 0.0,
        }
    }
}

impl Default for AdrenoTz {
    fn default() -> Self {
        Self::new(AdrenoTzParams::default())
    }
}

impl Policy for AdrenoTz {
    fn name(&self) -> &str {
        "msm-adreno-tz"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_gpu_governor("msm-adreno-tz");
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        self.last_ms = device.now_ms();
        self.last_busy_ms = device.gpu().busy_ms();
    }

    fn tick(&mut self, device: &mut Device) {
        if device.gpu().governor() != "msm-adreno-tz" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        let now = device.now_ms();
        let dt = now.saturating_sub(self.last_ms) as f64;
        if dt <= 0.0 {
            return;
        }
        let busy = device.gpu().busy_ms();
        let load = ((busy - self.last_busy_ms) / dt).clamp(0.0, 1.0);
        self.last_ms = now;
        self.last_busy_ms = busy;

        let cur = device.gpu().freq();
        if load > self.params.up_threshold && cur.0 + 1 < device.gpu().num_freqs() {
            device.set_gpu_freq(GpuFreqIndex(cur.0 + 1));
        } else if load < self.params.down_threshold && cur.0 > 0 {
            device.set_gpu_freq(GpuFreqIndex(cur.0 - 1));
        }
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        if device.gpu().governor() != "msm-adreno-tz" {
            u64::MAX
        } else {
            self.next_sample_ms.max(device.now_ms() + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{Demand, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn render_demand(gpu_work: f64) -> Demand {
        Demand {
            gpu_work,
            desired_gips: Some(0.05),
            ..Demand::default()
        }
    }

    #[test]
    fn climbs_under_render_load() {
        let mut dev = device();
        let mut gov = AdrenoTz::default();
        gov.start(&mut dev);
        let d = render_demand(0.55); // nearly the top frequency's worth
        for _ in 0..2_000 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert!(
            dev.gpu().freq().0 >= 3,
            "should climb toward 600 MHz, at {}",
            dev.gpu().freq()
        );
    }

    #[test]
    fn descends_when_idle() {
        let mut dev = device();
        let mut gov = AdrenoTz::default();
        gov.start(&mut dev);
        dev.set_gpu_freq(GpuFreqIndex(4));
        let d = render_demand(0.0);
        for _ in 0..2_000 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.gpu().freq(), GpuFreqIndex(0));
    }

    #[test]
    fn inert_when_not_selected() {
        let mut dev = device();
        let mut gov = AdrenoTz::default();
        gov.start(&mut dev);
        dev.set_gpu_governor("userspace");
        dev.set_gpu_freq(GpuFreqIndex(2));
        let d = render_demand(0.55);
        for _ in 0..500 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.gpu().freq(), GpuFreqIndex(2));
    }
}
