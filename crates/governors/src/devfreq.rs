//! Memory-bus bandwidth (`devfreq`) governors.

use asgov_soc::{Device, Policy};

/// Tunables of the [`CpubwHwmon`] governor.
#[derive(Debug, Clone, PartialEq)]
pub struct CpubwHwmonParams {
    /// Traffic-sampling period, ms.
    pub sample_ms: u64,
    /// Target bus utilization: the governor votes for
    /// `traffic / io_percent` of bandwidth (headroom above the measured
    /// traffic), mirroring the `io_percent` tunable of the Qualcomm
    /// `bw_hwmon` driver.
    pub io_percent: f64,
    /// Per-sample multiplicative decay of the internal bandwidth vote
    /// while traffic is below it — the *exponential back-off* the paper
    /// calls out: the governor lowers bandwidth much more slowly than it
    /// raises it, holding a higher-than-necessary setting for most of
    /// the runtime (Fig. 5).
    pub decay: f64,
}

impl Default for CpubwHwmonParams {
    fn default() -> Self {
        Self {
            sample_ms: 50,
            io_percent: 0.16,
            decay: 0.96,
        }
    }
}

/// The Qualcomm `cpubw_hwmon` devfreq governor: monitors CPU→memory
/// traffic through L2 cache-event hardware counters and votes bus
/// bandwidth accordingly — up immediately, down by exponential back-off.
///
/// Crucially (for the paper's thesis) it knows nothing about what the
/// CPU governor is doing.
#[derive(Debug, Clone)]
pub struct CpubwHwmon {
    params: CpubwHwmonParams,
    next_sample_ms: u64,
    last_ms: u64,
    last_bus_bytes: f64,
    vote_mbps: f64,
}

impl CpubwHwmon {
    /// Create with explicit tunables.
    pub fn new(params: CpubwHwmonParams) -> Self {
        Self {
            params,
            next_sample_ms: 0,
            last_ms: 0,
            last_bus_bytes: 0.0,
            vote_mbps: 0.0,
        }
    }

    /// The current internal bandwidth vote, MBps.
    pub fn vote_mbps(&self) -> f64 {
        self.vote_mbps
    }
}

impl Default for CpubwHwmon {
    fn default() -> Self {
        Self::new(CpubwHwmonParams::default())
    }
}

impl Policy for CpubwHwmon {
    fn name(&self) -> &str {
        "cpubw_hwmon"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_bw_governor("cpubw_hwmon");
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        self.last_ms = device.now_ms();
        self.last_bus_bytes = device.pmu().bus_bytes();
        self.vote_mbps = device.table().bw(device.bw()).0;
    }

    fn tick(&mut self, device: &mut Device) {
        if device.bw_governor() != "cpubw_hwmon" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;

        let now = device.now_ms();
        let dt_s = (now - self.last_ms) as f64 * 1e-3;
        if dt_s <= 0.0 {
            return;
        }
        let bytes = device.pmu().bus_bytes();
        let traffic_mbps = (bytes - self.last_bus_bytes) / dt_s / 1e6;
        self.last_ms = now;
        self.last_bus_bytes = bytes;

        let desired = traffic_mbps / self.params.io_percent;
        if desired > self.vote_mbps {
            self.vote_mbps = desired; // vote up immediately
        } else {
            // Exponential back-off downwards.
            self.vote_mbps = (self.vote_mbps * self.params.decay).max(desired);
        }
        let idx = device.table().bw_at_least(self.vote_mbps);
        device.set_mem_bw(idx);
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        if device.bw_governor() != "cpubw_hwmon" {
            u64::MAX
        } else {
            self.next_sample_ms.max(device.now_ms() + 1)
        }
    }
}

/// The devfreq `userspace` governor: bandwidth is whatever a user-space
/// agent writes to `userspace/set_freq`.
#[derive(Debug, Clone, Default)]
pub struct UserspaceBw;

impl Policy for UserspaceBw {
    fn name(&self) -> &str {
        "userspace"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_bw_governor("userspace");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

/// The devfreq `performance` governor: pins the maximum bandwidth.
#[derive(Debug, Clone, Default)]
pub struct PerformanceBw;

impl Policy for PerformanceBw {
    fn name(&self) -> &str {
        "performance"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_bw_governor("performance");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

/// The devfreq `powersave` governor: pins the minimum bandwidth.
#[derive(Debug, Clone, Default)]
pub struct PowersaveBw;

impl Policy for PowersaveBw {
    fn name(&self) -> &str {
        "powersave"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_bw_governor("powersave");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{BwIndex, Demand, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn traffic_demand(bpi: f64) -> Demand {
        Demand {
            ipc0: 1.5,
            bytes_per_instr: bpi,
            desired_gips: None,
            active_cores: 4.0,
            ..Demand::default()
        }
    }

    #[test]
    fn votes_up_immediately_under_traffic() {
        let mut dev = device();
        let mut gov = CpubwHwmon::default();
        gov.start(&mut dev);
        let d = traffic_demand(8.0);
        for _ in 0..200 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert!(
            dev.bw().0 >= 2,
            "bandwidth should have been raised, at {}",
            dev.bw()
        );
    }

    #[test]
    fn backs_off_slowly_when_traffic_stops() {
        let mut dev = device();
        let mut gov = CpubwHwmon::default();
        gov.start(&mut dev);
        let d = traffic_demand(8.0);
        for _ in 0..500 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        let peak = dev.bw();
        assert!(peak.0 >= 2);

        // Traffic ceases; the vote must decay gradually, not collapse.
        let idle = Demand::idle();
        let mut trace = Vec::new();
        for _ in 0..6000 {
            dev.tick(&idle);
            gov.tick(&mut dev);
            trace.push(dev.bw().0);
        }
        assert_eq!(*trace.last().unwrap(), 0, "eventually reaches minimum");
        // Exponential back-off ⇒ strictly more than one distinct level
        // visited on the way down and no single-step collapse.
        let after_300ms = trace[300];
        assert!(
            after_300ms > 0,
            "back-off must hold bandwidth above minimum for a while"
        );
        let distinct: std::collections::BTreeSet<usize> = trace.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "decay should walk down through levels: {distinct:?}"
        );
    }

    #[test]
    fn inert_when_not_selected() {
        let mut dev = device();
        let mut gov = CpubwHwmon::default();
        gov.start(&mut dev);
        dev.set_bw_governor("userspace");
        dev.set_mem_bw(BwIndex(4));
        let d = traffic_demand(8.0);
        for _ in 0..500 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.bw(), BwIndex(4));
    }

    #[test]
    fn fixed_governors_pin() {
        let mut dev = device();
        PerformanceBw.start(&mut dev);
        assert_eq!(dev.bw(), dev.table().max_bw());
        PowersaveBw.start(&mut dev);
        assert_eq!(dev.bw(), dev.table().min_bw());
        UserspaceBw.start(&mut dev);
        assert_eq!(dev.bw_governor(), "userspace");
    }
}
