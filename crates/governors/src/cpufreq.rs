//! CPU-frequency (`cpufreq`) governors.

use asgov_soc::{Device, FreqIndex, Policy};

/// Shared load-sampling helper: computes average CPU load since the
/// previous sample from the device's cumulative busy-time counter.
#[derive(Debug, Clone, Default)]
struct LoadSampler {
    last_ms: u64,
    last_busy_ms: f64,
}

impl LoadSampler {
    fn reset(&mut self, device: &Device) {
        self.last_ms = device.now_ms();
        self.last_busy_ms = device.busy_ms();
    }

    /// Load in [0, 1] over the window since the last call; `None` until
    /// at least 1 ms has elapsed.
    fn sample(&mut self, device: &Device) -> Option<f64> {
        let now = device.now_ms();
        let dt = now.saturating_sub(self.last_ms);
        if dt == 0 {
            return None;
        }
        let busy = device.busy_ms();
        let load = ((busy - self.last_busy_ms) / dt as f64).clamp(0.0, 1.0);
        self.last_ms = now;
        self.last_busy_ms = busy;
        Some(load)
    }
}

/// Tunables of the [`Interactive`] governor — names follow the sysfs
/// files of the AOSP implementation, values follow the Nexus 6 defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractiveParams {
    /// Load-sampling period, ms (`timer_rate`).
    pub timer_rate_ms: u64,
    /// Load at which the governor jumps straight to `hispeed_freq`.
    pub go_hispeed_load: f64,
    /// The frequency index jumped to on high load. On the Nexus 6 this
    /// is 1 497 600 kHz — the paper's frequency №10 — which is why the
    /// default governor parks there 12.7–27.9 % of the time (Fig. 4).
    pub hispeed_freq: FreqIndex,
    /// Load the governor tries to hold when scaling proportionally.
    pub target_load: f64,
    /// Minimum time at a frequency before ramping *down*, ms
    /// (`min_sample_time`).
    pub min_sample_time_ms: u64,
    /// Time the governor must observe high load above `hispeed_freq`
    /// before exceeding it, ms (`above_hispeed_delay`).
    pub above_hispeed_delay_ms: u64,
    /// Maximum ladder steps the governor descends per down-ramp. AOSP
    /// `interactive` ramps *up* in one jump but releases frequency in a
    /// staircase, which is why the Nexus 6 spends so much accumulated
    /// time at elevated frequencies (paper Figs. 1 and 4).
    pub max_down_steps: usize,
    /// Hold time between consecutive *down* steps, ms (shorter than
    /// `min_sample_time`, which gates the first release after a ramp).
    pub down_step_hold_ms: u64,
}

impl Default for InteractiveParams {
    fn default() -> Self {
        Self {
            timer_rate_ms: 20,
            go_hispeed_load: 0.90,
            hispeed_freq: FreqIndex(9),
            target_load: 0.90,
            min_sample_time_ms: 80,
            above_hispeed_delay_ms: 20,
            max_down_steps: 2,
            down_step_hold_ms: 40,
        }
    }
}

/// The Android default CPU governor.
///
/// Every `timer_rate` it samples CPU load. Crossing `go_hispeed_load`
/// jumps to `hispeed_freq` immediately; sustained high load then scales
/// further up toward the frequency that would bring load down to
/// `target_load`. Ramping down is damped by `min_sample_time`. This is
/// deliberately responsive — and, as the paper observes, deliberately
/// performance-first rather than energy-optimal.
///
/// # Example
///
/// ```
/// use asgov_governors::Interactive;
/// use asgov_soc::{sim, ConstantWorkload, Device, DeviceConfig};
///
/// let mut device = Device::new(DeviceConfig::nexus6());
/// let mut governor = Interactive::default();
/// // A heavy compute workload: the governor ramps to the maximum.
/// let mut app = ConstantWorkload::new("busy", 10.0, 1.5, 0.1);
/// sim::run(&mut device, &mut app, &mut [&mut governor], 2_000);
/// assert_eq!(device.freq(), device.table().max_freq());
/// ```
#[derive(Debug, Clone)]
pub struct Interactive {
    params: InteractiveParams,
    sampler: LoadSampler,
    next_sample_ms: u64,
    floor_until_ms: u64,
    hispeed_since_ms: Option<u64>,
}

impl Interactive {
    /// Create with explicit tunables.
    pub fn new(params: InteractiveParams) -> Self {
        Self {
            params,
            sampler: LoadSampler::default(),
            next_sample_ms: 0,
            floor_until_ms: 0,
            hispeed_since_ms: None,
        }
    }

    /// The tunables in use.
    pub fn params(&self) -> &InteractiveParams {
        &self.params
    }
}

impl Default for Interactive {
    fn default() -> Self {
        Self::new(InteractiveParams::default())
    }
}

impl Policy for Interactive {
    fn name(&self) -> &str {
        "interactive"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("interactive");
        self.sampler.reset(device);
        self.next_sample_ms = device.now_ms() + self.params.timer_rate_ms;
        self.floor_until_ms = 0;
        self.hispeed_since_ms = None;
    }

    fn tick(&mut self, device: &mut Device) {
        if device.cpu_governor() != "interactive" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.timer_rate_ms;
        let Some(load) = self.sampler.sample(device) else {
            return;
        };
        let p = &self.params;
        let now = device.now_ms();
        let cur = device.freq();
        let cur_ghz = device.table().freq(cur).0;
        let max_idx = device.table().max_freq();

        // Frequency that would bring load down to target_load.
        let scaled = device.table().freq_at_least(cur_ghz * load / p.target_load);

        let target = if load >= p.go_hispeed_load {
            let boosted = scaled.max(p.hispeed_freq);
            if boosted > p.hispeed_freq {
                // Exceeding hispeed requires sustained high load.
                match self.hispeed_since_ms {
                    Some(t0) if now.saturating_sub(t0) >= p.above_hispeed_delay_ms => boosted,
                    Some(_) => p.hispeed_freq.max(cur),
                    None => {
                        self.hispeed_since_ms = Some(now);
                        p.hispeed_freq.max(cur)
                    }
                }
            } else {
                boosted
            }
        } else {
            self.hispeed_since_ms = None;
            scaled
        };
        let target = target.min(max_idx);

        if target > cur {
            device.set_cpu_freq(target);
            self.floor_until_ms = now + p.min_sample_time_ms;
        } else if target < cur && now >= self.floor_until_ms {
            // Staircase release: at most `max_down_steps` per hold
            // window.
            let stepped = FreqIndex(cur.0.saturating_sub(p.max_down_steps).max(target.0));
            device.set_cpu_freq(stepped);
            self.floor_until_ms = now + p.down_step_hold_ms;
        }
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        if device.cpu_governor() != "interactive" {
            u64::MAX
        } else {
            self.next_sample_ms.max(device.now_ms() + 1)
        }
    }
}

/// Tunables of the [`Ondemand`] governor.
#[derive(Debug, Clone, PartialEq)]
pub struct OndemandParams {
    /// Sampling period, ms.
    pub sampling_rate_ms: u64,
    /// Load above which the governor jumps to the maximum frequency.
    pub up_threshold: f64,
}

impl Default for OndemandParams {
    fn default() -> Self {
        Self {
            sampling_rate_ms: 100,
            up_threshold: 0.80,
        }
    }
}

/// The classic Linux `ondemand` governor: periodically checks CPU load;
/// above `up_threshold` it jumps straight to the maximum frequency,
/// below it it scales the frequency proportionally so that the load
/// would sit just under the threshold.
#[derive(Debug, Clone)]
pub struct Ondemand {
    params: OndemandParams,
    sampler: LoadSampler,
    next_sample_ms: u64,
}

impl Ondemand {
    /// Create with explicit tunables.
    pub fn new(params: OndemandParams) -> Self {
        Self {
            params,
            sampler: LoadSampler::default(),
            next_sample_ms: 0,
        }
    }
}

impl Default for Ondemand {
    fn default() -> Self {
        Self::new(OndemandParams::default())
    }
}

impl Policy for Ondemand {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("ondemand");
        self.sampler.reset(device);
        self.next_sample_ms = device.now_ms() + self.params.sampling_rate_ms;
    }

    fn tick(&mut self, device: &mut Device) {
        if device.cpu_governor() != "ondemand" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sampling_rate_ms;
        let Some(load) = self.sampler.sample(device) else {
            return;
        };
        if load >= self.params.up_threshold {
            device.set_cpu_freq(device.table().max_freq());
        } else {
            let cur_ghz = device.table().freq(device.freq()).0;
            let target = device
                .table()
                .freq_at_least(cur_ghz * load / self.params.up_threshold);
            device.set_cpu_freq(target);
        }
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        if device.cpu_governor() != "ondemand" {
            u64::MAX
        } else {
            self.next_sample_ms.max(device.now_ms() + 1)
        }
    }
}

/// The `conservative` governor: like `ondemand` but moves one ladder
/// step at a time (up above 80 % load, down below 30 %).
#[derive(Debug, Clone)]
pub struct Conservative {
    sampler: LoadSampler,
    next_sample_ms: u64,
}

impl Conservative {
    /// Create with the kernel default thresholds.
    pub fn new() -> Self {
        Self {
            sampler: LoadSampler::default(),
            next_sample_ms: 0,
        }
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Conservative {
    fn name(&self) -> &str {
        "conservative"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("conservative");
        self.sampler.reset(device);
        self.next_sample_ms = device.now_ms() + 100;
    }

    fn tick(&mut self, device: &mut Device) {
        if device.cpu_governor() != "conservative" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + 100;
        let Some(load) = self.sampler.sample(device) else {
            return;
        };
        let cur = device.freq();
        if load > 0.80 && cur < device.table().max_freq() {
            device.set_cpu_freq(FreqIndex(cur.0 + 1));
        } else if load < 0.30 && cur.0 > 0 {
            device.set_cpu_freq(FreqIndex(cur.0 - 1));
        }
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        if device.cpu_governor() != "conservative" {
            u64::MAX
        } else {
            self.next_sample_ms.max(device.now_ms() + 1)
        }
    }
}

/// Tunables of the [`Schedutil`] governor.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedutilParams {
    /// Sampling period, ms (scheduler-tick driven in real kernels).
    pub sample_ms: u64,
    /// Headroom factor: `f_next = factor · f_cur · util`.
    pub headroom: f64,
    /// Minimum time before reducing frequency, ms (`down_rate_limit`).
    pub down_rate_limit_ms: u64,
}

impl Default for SchedutilParams {
    fn default() -> Self {
        Self {
            sample_ms: 10,
            headroom: 1.25,
            down_rate_limit_ms: 20,
        }
    }
}

/// The modern `schedutil` governor (not yet mainline at the paper's
/// Linux 3.10, provided as an additional comparison baseline): selects
/// `f = 1.25 · f_cur · util`, ramping both directions quickly with a
/// short down-rate limit.
#[derive(Debug, Clone)]
pub struct Schedutil {
    params: SchedutilParams,
    sampler: LoadSampler,
    next_sample_ms: u64,
    floor_until_ms: u64,
}

impl Schedutil {
    /// Create with explicit tunables.
    pub fn new(params: SchedutilParams) -> Self {
        Self {
            params,
            sampler: LoadSampler::default(),
            next_sample_ms: 0,
            floor_until_ms: 0,
        }
    }
}

impl Default for Schedutil {
    fn default() -> Self {
        Self::new(SchedutilParams::default())
    }
}

impl Policy for Schedutil {
    fn name(&self) -> &str {
        "schedutil"
    }

    fn start(&mut self, device: &mut Device) {
        // schedutil is not in the Nexus 6 governor list; it registers
        // as `userspace` at the sysfs level and drives the frequency
        // through the driver path, which is adequate for baselining.
        device.set_cpu_governor("userspace");
        self.sampler.reset(device);
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
    }

    fn tick(&mut self, device: &mut Device) {
        if device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.params.sample_ms;
        let Some(load) = self.sampler.sample(device) else {
            return;
        };
        let cur = device.freq();
        let cur_ghz = device.table().freq(cur).0;
        let target = device
            .table()
            .freq_at_least(self.params.headroom * cur_ghz * load);
        let now = device.now_ms();
        if target > cur {
            device.set_cpu_freq(target);
            self.floor_until_ms = now + self.params.down_rate_limit_ms;
        } else if target < cur && now >= self.floor_until_ms {
            device.set_cpu_freq(target);
        }
    }
    fn next_event_ms(&self, device: &Device) -> u64 {
        self.next_sample_ms.max(device.now_ms() + 1)
    }
}

/// The `userspace` governor: frequency is whatever a user-space agent
/// writes to `scaling_setspeed`; the governor itself does nothing.
#[derive(Debug, Clone, Default)]
pub struct UserspaceCpu;

impl Policy for UserspaceCpu {
    fn name(&self) -> &str {
        "userspace"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("userspace");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

/// The `performance` governor: pins the maximum frequency.
#[derive(Debug, Clone, Default)]
pub struct PerformanceCpu;

impl Policy for PerformanceCpu {
    fn name(&self) -> &str {
        "performance"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("performance");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

/// The `powersave` governor: pins the minimum frequency.
#[derive(Debug, Clone, Default)]
pub struct PowersaveCpu;

impl Policy for PowersaveCpu {
    fn name(&self) -> &str {
        "powersave"
    }

    fn start(&mut self, device: &mut Device) {
        device.set_cpu_governor("powersave");
    }

    fn tick(&mut self, _device: &mut Device) {}

    fn next_event_ms(&self, _device: &Device) -> u64 {
        // `tick` is a no-op: the event engine never needs to wake us.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{sim, ConstantWorkload, Demand, DeviceConfig, Executed, Workload};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    /// Heavy unbounded compute workload.
    struct Heavy;
    impl Workload for Heavy {
        fn name(&self) -> &str {
            "heavy"
        }
        fn demand(&mut self, _now_ms: u64) -> Demand {
            Demand {
                ipc0: 1.5,
                bytes_per_instr: 0.2,
                desired_gips: None,
                active_cores: 4.0,
                ..Demand::default()
            }
        }
        fn deliver(&mut self, _now_ms: u64, _executed: Executed) {}
        fn reset(&mut self) {}
    }

    #[test]
    fn interactive_ramps_to_max_under_sustained_load() {
        let mut dev = device();
        let mut gov = Interactive::default();
        let mut app = Heavy;
        sim::run(&mut dev, &mut app, &mut [&mut gov], 2_000);
        assert_eq!(dev.freq(), dev.table().max_freq());
    }

    #[test]
    fn interactive_visits_hispeed_on_the_way_up() {
        let mut dev = device();
        let mut gov = Interactive::default();
        let mut app = Heavy;
        let report = sim::run(&mut dev, &mut app, &mut [&mut gov], 2_000);
        assert!(
            report.stats.time_in_freq_ms[9] > 0,
            "hispeed_freq (f10) must be visited: {:?}",
            report.stats.time_in_freq_ms
        );
    }

    #[test]
    fn interactive_settles_low_for_light_load() {
        let mut dev = device();
        let mut gov = Interactive::default();
        // 0.05 GIPS of light work: base config delivers ~0.3+ GIPS.
        let mut app = ConstantWorkload::new("light", 0.05, 1.5, 0.5);
        sim::run(&mut dev, &mut app, &mut [&mut gov], 5_000);
        assert!(
            dev.freq().0 <= 2,
            "light load should settle at a low frequency, got {}",
            dev.freq()
        );
    }

    #[test]
    fn interactive_min_sample_time_damps_downward_ramps() {
        let mut dev = device();
        let mut gov = Interactive::default();
        gov.start(&mut dev);
        // Burst load to push frequency up.
        let mut app = Heavy;
        for _ in 0..200 {
            let now = dev.now_ms();
            let d = app.demand(now);
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        let peak = dev.freq();
        assert!(peak.0 > 5);
        // Go idle: frequency must NOT collapse within min_sample_time.
        let idle = Demand::idle();
        for _ in 0..19 {
            dev.tick(&idle);
            gov.tick(&mut dev);
        }
        assert!(
            dev.freq().0 >= peak.0.saturating_sub(3),
            "dropped too fast: {} -> {}",
            peak,
            dev.freq()
        );
        // But it does come down eventually (staircase release: at most
        // two ladder steps per 80 ms min_sample_time).
        for _ in 0..1500 {
            dev.tick(&idle);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(0));
    }

    #[test]
    fn ondemand_jumps_to_max_and_decays_proportionally() {
        let mut dev = device();
        let mut gov = Ondemand::default();
        gov.start(&mut dev);
        let mut app = Heavy;
        for _ in 0..300 {
            let now = dev.now_ms();
            let d = app.demand(now);
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), dev.table().max_freq(), "jump-to-max on load");
        let idle = Demand::idle();
        for _ in 0..600 {
            dev.tick(&idle);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(0), "decay to min when idle");
    }

    #[test]
    fn conservative_moves_one_step_at_a_time() {
        let mut dev = device();
        let mut gov = Conservative::default();
        gov.start(&mut dev);
        let mut app = Heavy;
        let mut last = dev.freq().0;
        for _ in 0..1000 {
            let now = dev.now_ms();
            let d = app.demand(now);
            dev.tick(&d);
            gov.tick(&mut dev);
            let cur = dev.freq().0;
            assert!(cur.abs_diff(last) <= 1, "jumped more than one step");
            last = cur;
        }
        assert!(dev.freq().0 >= 8, "should have climbed under load");
    }

    #[test]
    fn schedutil_tracks_load_both_ways() {
        let mut dev = device();
        let mut gov = Schedutil::default();
        gov.start(&mut dev);
        let mut app = Heavy;
        for _ in 0..1_000 {
            let now = dev.now_ms();
            let d = app.demand(now);
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), dev.table().max_freq(), "ramps up under load");
        let idle = Demand::idle();
        for _ in 0..500 {
            dev.tick(&idle);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(0), "collapses quickly when idle");
    }

    #[test]
    fn governors_are_inert_when_not_selected() {
        let mut dev = device();
        let mut gov = Ondemand::default();
        gov.start(&mut dev);
        // Another agent takes over (the paper's controller does this).
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(FreqIndex(5));
        let mut app = Heavy;
        for _ in 0..300 {
            let now = dev.now_ms();
            let d = app.demand(now);
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(5), "ondemand must not act");
    }

    #[test]
    fn performance_and_powersave_pin() {
        let mut dev = device();
        PerformanceCpu.start(&mut dev);
        assert_eq!(dev.freq(), dev.table().max_freq());
        PowersaveCpu.start(&mut dev);
        assert_eq!(dev.freq(), FreqIndex(0));
        UserspaceCpu.start(&mut dev);
        assert_eq!(dev.cpu_governor(), "userspace");
    }
}
