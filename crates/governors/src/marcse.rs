//! MAR-CSE: critical-speed DVFS from the memory access rate.
//!
//! The paper's §VI discusses Liang & Lai (EMC'10), a *model-based*
//! Android governor: offline, a set of benchmarks yields the
//! energy-optimal CPU frequency (*critical speed*, CS) as a function of
//! the *memory access rate* (MAR, bus bytes per instruction); online,
//! the governor reads the MAR from the PMU and applies the modeled
//! critical speed. It is application-agnostic and optimizes energy
//! *without a performance constraint* — exactly the two properties the
//! paper's controller improves on. Implemented here as a comparison
//! baseline; fit a model with `asgov_profiler::fit_mar_cse` or use the
//! bundled default.

use asgov_soc::{Device, Policy};

/// The MAR → critical-speed model: a piecewise-linear mapping from
/// memory access rate (bus bytes per instruction) to the energy-optimal
/// CPU frequency in GHz.
#[derive(Debug, Clone, PartialEq)]
pub struct MarCseModel {
    // (mar, critical_speed_ghz), sorted by mar.
    points: Vec<(f64, f64)>,
}

impl MarCseModel {
    /// Build a model from `(MAR, critical speed GHz)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains negative MARs.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "model needs at least one point");
        assert!(
            points.iter().all(|&(m, _)| m >= 0.0),
            "memory access rates are non-negative"
        );
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self { points }
    }

    /// A default fit for the simulated Nexus 6: compute-bound code
    /// (low MAR) runs efficiently near the knee of the V²f curve;
    /// memory-bound code (high MAR) gains nothing from frequency and
    /// drops to the low end of the ladder.
    pub fn nexus6_default() -> Self {
        Self::new(vec![
            (0.0, 1.9584),
            (0.5, 1.4976),
            (1.0, 1.0368),
            (2.0, 0.7296),
            (4.0, 0.4224),
        ])
    }

    /// The modeled critical speed for a measured MAR (clamped linear
    /// interpolation).
    pub fn critical_speed_ghz(&self, mar: f64) -> f64 {
        let pts = &self.points;
        if mar <= pts[0].0 {
            return pts[0].1;
        }
        if mar >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let hi = pts.iter().position(|&(m, _)| m >= mar).expect("in range");
        let (m0, c0) = pts[hi - 1];
        let (m1, c1) = pts[hi];
        let t = (mar - m0) / (m1 - m0).max(f64::EPSILON);
        c0 + t * (c1 - c0)
    }
}

/// The MAR-CSE governor: samples the PMU's bytes-per-instruction ratio
/// and pins the modeled critical speed.
#[derive(Debug, Clone)]
pub struct MarCse {
    model: MarCseModel,
    sample_ms: u64,
    next_sample_ms: u64,
    last_instructions: f64,
    last_bytes: f64,
}

impl MarCse {
    /// A governor driven by `model`, sampling every 100 ms (the paper's
    /// PMU floor).
    pub fn new(model: MarCseModel) -> Self {
        Self {
            model,
            sample_ms: 100,
            next_sample_ms: 0,
            last_instructions: 0.0,
            last_bytes: 0.0,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &MarCseModel {
        &self.model
    }
}

impl Default for MarCse {
    fn default() -> Self {
        Self::new(MarCseModel::nexus6_default())
    }
}

impl Policy for MarCse {
    fn name(&self) -> &str {
        "mar-cse"
    }

    fn start(&mut self, device: &mut Device) {
        // Like the controller, this is a frequency dictator: it takes
        // the userspace governor slot.
        device.set_cpu_governor("userspace");
        self.next_sample_ms = device.now_ms() + self.sample_ms;
        self.last_instructions = device.pmu().instructions();
        self.last_bytes = device.pmu().bus_bytes();
    }

    fn tick(&mut self, device: &mut Device) {
        if device.cpu_governor() != "userspace" || device.now_ms() < self.next_sample_ms {
            return;
        }
        self.next_sample_ms = device.now_ms() + self.sample_ms;
        let instructions = device.pmu().instructions();
        let bytes = device.pmu().bus_bytes();
        let delta_i = instructions - self.last_instructions;
        let delta_b = bytes - self.last_bytes;
        self.last_instructions = instructions;
        self.last_bytes = bytes;
        if delta_i <= 0.0 {
            return; // idle window: no information, hold frequency
        }
        let mar = delta_b / delta_i;
        let cs = self.model.critical_speed_ghz(mar);
        let idx = device.table().freq_at_least(cs);
        device.set_cpu_freq(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{Demand, DeviceConfig, FreqIndex};

    #[test]
    fn model_interpolates_and_clamps() {
        let m = MarCseModel::new(vec![(0.0, 2.0), (2.0, 1.0)]);
        assert_eq!(m.critical_speed_ghz(0.0), 2.0);
        assert_eq!(m.critical_speed_ghz(2.0), 1.0);
        assert!((m.critical_speed_ghz(1.0) - 1.5).abs() < 1e-12);
        assert_eq!(m.critical_speed_ghz(99.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_model_rejected() {
        let _ = MarCseModel::new(vec![]);
    }

    #[test]
    fn governor_tracks_memory_intensity() {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        let mut dev = Device::new(cfg);
        let mut gov = MarCse::default();
        gov.start(&mut dev);

        let compute = Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.05,
            desired_gips: None,
            active_cores: 2.0,
            ..Demand::default()
        };
        for _ in 0..500 {
            dev.tick(&compute);
            gov.tick(&mut dev);
        }
        let freq_compute = dev.freq();

        let memory = Demand {
            ipc0: 1.5,
            bytes_per_instr: 4.0,
            desired_gips: None,
            active_cores: 2.0,
            ..Demand::default()
        };
        for _ in 0..500 {
            dev.tick(&memory);
            gov.tick(&mut dev);
        }
        let freq_memory = dev.freq();
        assert!(
            freq_memory < freq_compute,
            "memory-bound code gets a lower critical speed: {freq_compute} vs {freq_memory}"
        );
    }

    #[test]
    fn idle_windows_hold_frequency() {
        let mut dev = Device::new(DeviceConfig::nexus6());
        let mut gov = MarCse::default();
        gov.start(&mut dev);
        dev.set_cpu_freq(FreqIndex(7));
        let idle = Demand::idle();
        for _ in 0..500 {
            dev.tick(&idle);
            gov.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(7));
    }
}
