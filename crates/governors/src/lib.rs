//! # asgov-governors — Linux/Android DVFS governor re-implementations
//!
//! The paper's baselines are the stock Android power managers: the
//! `cpufreq` subsystem's governors for CPU frequency and the `devfreq`
//! subsystem's governors for memory-bus bandwidth. These run
//! *independently of each other* — the central deficiency the paper's
//! coordinated controller exploits.
//!
//! CPU-frequency governors ([`cpufreq`]):
//!
//! - [`Interactive`] — the Android default: 20 ms load sampling, jumps
//!   to `hispeed_freq` (frequency №10 on the Nexus 6) when load crosses
//!   `go_hispeed_load`, scales to hold a target load otherwise, with a
//!   minimum dwell before lowering. Explains the paper's Fig. 1/4
//!   histograms (mass at f10 and f18).
//! - [`Ondemand`] — the classic Linux default: jump to max frequency
//!   above `up_threshold`, proportional decrease below it.
//! - [`Conservative`] — steps one frequency at a time.
//! - [`UserspaceCpu`] / [`PerformanceCpu`] / [`PowersaveCpu`].
//!
//! Memory-bandwidth governors ([`devfreq`]):
//!
//! - [`CpubwHwmon`] — monitors bus traffic from the L2 hardware
//!   counters, votes bandwidth up immediately and decays it with an
//!   exponential back-off (the behaviour visible in the paper's Fig. 5).
//! - [`UserspaceBw`] / [`PerformanceBw`] / [`PowersaveBw`].
//!
//! All governors implement [`asgov_soc::Policy`] and act only while
//! their name matches the device's selected governor, mirroring how the
//! kernel activates exactly one governor per subsystem.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpufreq;
pub mod devfreq;
pub mod gpufreq;
pub mod hotplug;
pub mod marcse;
pub mod netrate;

pub use cpufreq::{
    Conservative, Interactive, InteractiveParams, Ondemand, OndemandParams, PerformanceCpu,
    PowersaveCpu, Schedutil, SchedutilParams, UserspaceCpu,
};
pub use devfreq::{CpubwHwmon, CpubwHwmonParams, PerformanceBw, PowersaveBw, UserspaceBw};
pub use gpufreq::{AdrenoTz, AdrenoTzParams};
pub use hotplug::{MpDecision, MpDecisionParams};
pub use marcse::{MarCse, MarCseModel};
pub use netrate::{NetRateManager, NetRateManagerParams};

/// The default governor pair on the paper's Nexus 6:
/// `interactive` for the CPU and `cpubw_hwmon` for the memory bus.
pub fn android_defaults() -> (Interactive, CpubwHwmon) {
    (Interactive::default(), CpubwHwmon::default())
}

/// The full default governor set including the GPU's `msm-adreno-tz`.
pub fn android_defaults_with_gpu() -> (Interactive, CpubwHwmon, AdrenoTz) {
    (
        Interactive::default(),
        CpubwHwmon::default(),
        AdrenoTz::default(),
    )
}
