//! Property-based tests of the governors: ladder safety, selection
//! semantics and load responsiveness under randomized workloads.

use asgov_governors::{
    AdrenoTz, Conservative, CpubwHwmon, Interactive, MarCse, MpDecision, Ondemand, Schedutil,
};
use asgov_soc::{Demand, Device, DeviceConfig, Policy};
use proptest::prelude::*;

fn quiet() -> DeviceConfig {
    let mut cfg = DeviceConfig::nexus6();
    cfg.monitor_noise_w = 0.0;
    cfg
}

fn random_demand() -> impl Strategy<Value = Demand> {
    (
        0.3f64..2.0,  // ipc0
        0.05f64..3.0, // bpi
        0.0f64..4.0,  // desired gips
        0.3f64..4.0,  // cores
        0.0f64..0.5,  // gpu work
    )
        .prop_map(|(ipc0, bpi, want, cores, gpu)| Demand {
            ipc0,
            bytes_per_instr: bpi,
            desired_gips: Some(want),
            active_cores: cores,
            gpu_work: gpu,
            ..Demand::default()
        })
}

/// Run a CPU governor against a random demand sequence; the chosen
/// frequency must always stay on the ladder and the run must finish.
fn drive_cpu_governor(gov: &mut dyn Policy, demands: &[Demand]) {
    let mut dev = Device::new(quiet());
    gov.start(&mut dev);
    for d in demands {
        // Hold each random demand for a stretch so sampling governors
        // actually observe it.
        for _ in 0..40 {
            dev.tick(d);
            gov.tick(&mut dev);
            assert!(dev.freq().0 < dev.table().num_freqs());
            assert!(dev.bw().0 < dev.table().num_bws());
        }
    }
    gov.finish(&mut dev);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interactive_is_ladder_safe(demands in prop::collection::vec(random_demand(), 1..12)) {
        drive_cpu_governor(&mut Interactive::default(), &demands);
    }

    #[test]
    fn ondemand_is_ladder_safe(demands in prop::collection::vec(random_demand(), 1..12)) {
        drive_cpu_governor(&mut Ondemand::default(), &demands);
    }

    #[test]
    fn conservative_is_ladder_safe(demands in prop::collection::vec(random_demand(), 1..12)) {
        drive_cpu_governor(&mut Conservative::default(), &demands);
    }

    #[test]
    fn schedutil_is_ladder_safe(demands in prop::collection::vec(random_demand(), 1..12)) {
        drive_cpu_governor(&mut Schedutil::default(), &demands);
    }

    #[test]
    fn marcse_is_ladder_safe(demands in prop::collection::vec(random_demand(), 1..12)) {
        drive_cpu_governor(&mut MarCse::default(), &demands);
    }

    #[test]
    fn full_stock_stack_is_safe(demands in prop::collection::vec(random_demand(), 1..10)) {
        let mut dev = Device::new(quiet());
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut mp = MpDecision::default();
        for p in [&mut cpu as &mut dyn Policy, &mut bw, &mut gpu, &mut mp] {
            p.start(&mut dev);
        }
        for d in &demands {
            for _ in 0..60 {
                dev.tick(d);
                cpu.tick(&mut dev);
                bw.tick(&mut dev);
                gpu.tick(&mut dev);
                mp.tick(&mut dev);
                prop_assert!((1.0..=4.0).contains(&dev.online_cores()));
                prop_assert!(dev.monitor().energy_j().is_finite());
            }
        }
    }

    /// Higher sustained demand never yields a *lower* settled frequency
    /// under `interactive` (monotone response).
    #[test]
    fn interactive_response_is_monotone(lo in 0.05f64..0.5, extra in 0.3f64..2.0) {
        let settle = |rate: f64| {
            let mut dev = Device::new(quiet());
            let mut gov = Interactive::default();
            gov.start(&mut dev);
            let d = Demand {
                ipc0: 1.5,
                bytes_per_instr: 0.2,
                desired_gips: Some(rate),
                active_cores: 2.0,
                ..Demand::default()
            };
            for _ in 0..4_000 {
                dev.tick(&d);
                gov.tick(&mut dev);
            }
            // Average frequency index over the last second.
            dev.reset_stats();
            for _ in 0..1_000 {
                dev.tick(&d);
                gov.tick(&mut dev);
            }
            let hist = dev.stats().freq_histogram();
            hist.iter().enumerate().map(|(i, f)| i as f64 * f).sum::<f64>()
        };
        let f_lo = settle(lo);
        let f_hi = settle(lo + extra);
        prop_assert!(
            f_hi >= f_lo - 1.0,
            "heavier load settled clearly lower: {f_lo:.2} -> {f_hi:.2}"
        );
    }
}
