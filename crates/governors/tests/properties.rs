//! Property-based tests of the governors: ladder safety, selection
//! semantics and load responsiveness under randomized workloads.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_governors::{
    AdrenoTz, Conservative, CpubwHwmon, Interactive, MarCse, MpDecision, Ondemand, Schedutil,
};
use asgov_soc::{Demand, Device, DeviceConfig, Policy};
use asgov_util::Rng;

fn quiet() -> DeviceConfig {
    let mut cfg = DeviceConfig::nexus6();
    cfg.monitor_noise_w = 0.0;
    cfg
}

fn random_demand(rng: &mut Rng) -> Demand {
    Demand {
        ipc0: rng.gen_range(0.3..2.0),
        bytes_per_instr: rng.gen_range(0.05..3.0),
        desired_gips: Some(rng.gen_range(0.0..4.0)),
        active_cores: rng.gen_range(0.3..4.0),
        gpu_work: rng.gen_range(0.0..0.5),
        ..Demand::default()
    }
}

fn random_demands(rng: &mut Rng, max_len: usize) -> Vec<Demand> {
    let len = rng.gen_range_usize(1..max_len);
    (0..len).map(|_| random_demand(rng)).collect()
}

/// Run a CPU governor against a random demand sequence; the chosen
/// frequency must always stay on the ladder and the run must finish.
fn drive_cpu_governor(gov: &mut dyn Policy, demands: &[Demand]) {
    let mut dev = Device::new(quiet());
    gov.start(&mut dev);
    for d in demands {
        // Hold each random demand for a stretch so sampling governors
        // actually observe it.
        for _ in 0..40 {
            dev.tick(d);
            gov.tick(&mut dev);
            assert!(dev.freq().0 < dev.table().num_freqs());
            assert!(dev.bw().0 < dev.table().num_bws());
        }
    }
    gov.finish(&mut dev);
}

/// Drive `make()`-built governors over seeded random demand sequences.
fn ladder_safe(seed: u64, mut make: impl FnMut() -> Box<dyn Policy>) {
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..24 {
        let demands = random_demands(&mut rng, 12);
        drive_cpu_governor(make().as_mut(), &demands);
    }
}

#[test]
fn interactive_is_ladder_safe() {
    ladder_safe(0x90_0001, || Box::new(Interactive::default()));
}

#[test]
fn ondemand_is_ladder_safe() {
    ladder_safe(0x90_0002, || Box::new(Ondemand::default()));
}

#[test]
fn conservative_is_ladder_safe() {
    ladder_safe(0x90_0003, || Box::new(Conservative::default()));
}

#[test]
fn schedutil_is_ladder_safe() {
    ladder_safe(0x90_0004, || Box::new(Schedutil::default()));
}

#[test]
fn marcse_is_ladder_safe() {
    ladder_safe(0x90_0005, || Box::new(MarCse::default()));
}

#[test]
fn full_stock_stack_is_safe() {
    let mut rng = Rng::seed_from_u64(0x90_0006);
    for case in 0..24 {
        let demands = random_demands(&mut rng, 10);
        let mut dev = Device::new(quiet());
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut mp = MpDecision::default();
        for p in [&mut cpu as &mut dyn Policy, &mut bw, &mut gpu, &mut mp] {
            p.start(&mut dev);
        }
        for d in &demands {
            for _ in 0..60 {
                dev.tick(d);
                cpu.tick(&mut dev);
                bw.tick(&mut dev);
                gpu.tick(&mut dev);
                mp.tick(&mut dev);
                assert!(
                    (1.0..=4.0).contains(&dev.online_cores()),
                    "case {case}: cores {}",
                    dev.online_cores()
                );
                assert!(dev.monitor().energy_j().is_finite(), "case {case}");
            }
        }
    }
}

/// Higher sustained demand never yields a *lower* settled frequency
/// under `interactive` (monotone response).
#[test]
fn interactive_response_is_monotone() {
    let settle = |rate: f64| {
        let mut dev = Device::new(quiet());
        let mut gov = Interactive::default();
        gov.start(&mut dev);
        let d = Demand {
            ipc0: 1.5,
            bytes_per_instr: 0.2,
            desired_gips: Some(rate),
            active_cores: 2.0,
            ..Demand::default()
        };
        for _ in 0..4_000 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        // Average frequency index over the last second.
        dev.reset_stats();
        for _ in 0..1_000 {
            dev.tick(&d);
            gov.tick(&mut dev);
        }
        let hist = dev.stats().freq_histogram();
        hist.iter()
            .enumerate()
            .map(|(i, f)| i as f64 * f)
            .sum::<f64>()
    };
    let mut rng = Rng::seed_from_u64(0x90_0007);
    for case in 0..8 {
        let lo = rng.gen_range(0.05..0.5);
        let extra = rng.gen_range(0.3..2.0);
        let f_lo = settle(lo);
        let f_hi = settle(lo + extra);
        assert!(
            f_hi >= f_lo - 1.0,
            "case {case}: heavier load settled clearly lower: {f_lo:.2} -> {f_hi:.2}"
        );
    }
}
