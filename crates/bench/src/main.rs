//! Benchmark runner: three suites (`optimizer`, `controller`,
//! `simulator`), each written as `BENCH_<suite>.json` at the repository
//! root. `--quick` shrinks the sampling plan for CI smoke runs.

use asgov_bench::{bench, suite_report, synthetic_profile, synthetic_table, BenchConfig};
use asgov_control::{AdaptiveIntegrator, KalmanFilter};
use asgov_core::{ControllerBuilder, EnergyController, EnergyOptimizer};
use asgov_governors::{AdrenoTz, CpubwHwmon};
use asgov_linprog::{two_point, HullSolver};
use asgov_obs::{CycleRecord, RingSink, TraceSink as _};
use asgov_soc::{event, sim, ConstantWorkload, Device, DeviceConfig, Policy};
use asgov_util::{Json, Rng};
use asgov_workloads::{apps, BackgroundLoad};
use std::cell::{Cell, RefCell};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::rc::Rc;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// A deterministic sweep of solve targets spanning the synthetic
/// profile's speedup range (1.0 ..= 3.2), plus out-of-range extremes.
fn targets(count: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(0xbe9c);
    (0..count).map(|_| rng.gen_range(0.8..3.4)).collect()
}

fn optimizer_suite(quick: bool) -> Json {
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::full()
    };
    let sweep = targets(256);
    let mut results = Vec::new();
    let mut hull_median_234 = f64::NAN;
    let mut two_point_median_234 = f64::NAN;

    for &n in &[18usize, 64, 234] {
        let (s, p) = synthetic_profile(n);
        let hull = HullSolver::new(&s, &p).expect("finite synthetic profile");

        results.push(bench(&format!("hull_build/{n}"), &cfg, || {
            black_box(HullSolver::new(black_box(&s), black_box(&p)));
        }));

        let mut k = 0usize;
        let r = bench(&format!("hull_solve/{n}"), &cfg, || {
            let t = sweep[k % sweep.len()];
            k += 1;
            black_box(hull.solve(black_box(t), 2.0));
        });
        if n == 234 {
            hull_median_234 = r.median_ns;
        }
        results.push(r);

        let mut k = 0usize;
        let r = bench(&format!("two_point/{n}"), &cfg, || {
            let t = sweep[k % sweep.len()];
            k += 1;
            black_box(two_point::optimize(black_box(&s), black_box(&p), t, 2.0));
        });
        if n == 234 {
            two_point_median_234 = r.median_ns;
        }
        results.push(r);
    }

    // Energy parity of the two solvers at the full table size: the
    // hull is an exact reformulation, so over a dense target sweep the
    // cheapest-schedule energies must agree to 1e-9 J.
    let (s, p) = synthetic_profile(234);
    let hull = HullSolver::new(&s, &p).expect("finite synthetic profile");
    let mut max_diff = 0.0f64;
    let mut disagreements = 0usize;
    let parity_sweep = targets(1000);
    for &t in &parity_sweep {
        match (hull.solve(t, 2.0), two_point::optimize(&s, &p, t, 2.0)) {
            (Some(a), Some(b)) => max_diff = max_diff.max((a.energy_j - b.energy_j).abs()),
            (None, None) => {}
            _ => disagreements += 1,
        }
    }

    let mut derived = Json::object();
    derived.set(
        "hull_speedup_at_234",
        two_point_median_234 / hull_median_234,
    );
    derived.set("hull_median_ns_at_234", hull_median_234);
    derived.set("two_point_median_ns_at_234", two_point_median_234);
    derived.set("energy_parity_targets", parity_sweep.len());
    derived.set("max_abs_energy_diff_at_234", max_diff);
    derived.set("solver_disagreements", disagreements);
    suite_report("optimizer", quick, &results, derived)
}

fn controller_suite(quick: bool) -> Json {
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::full()
    };
    let sweep = targets(256);
    let mut results = Vec::new();

    let mut kalman = KalmanFilter::new(0.2, 1.0, 1e-4, 1e-2);
    let mut k = 0usize;
    results.push(bench(
        "kalman_update",
        &cfg.with_inner(cfg.inner * 50),
        || {
            let y = sweep[k % sweep.len()];
            k += 1;
            black_box(kalman.update(black_box(y), 1.0));
        },
    ));

    let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 3.2);
    let mut k = 0usize;
    results.push(bench(
        "regulator_step",
        &cfg.with_inner(cfg.inner * 50),
        || {
            let m = sweep[k % sweep.len()];
            k += 1;
            black_box(reg.step(2.0, black_box(m), 0.2));
        },
    ));

    // The optimizer exactly as the controller invokes it per cycle.
    let table = synthetic_table();
    let opt = EnergyOptimizer::new(&table);
    let mut k = 0usize;
    results.push(bench("optimizer_solve/234", &cfg, || {
        let t = sweep[k % sweep.len()];
        k += 1;
        black_box(opt.solve(black_box(t), 2.0));
    }));

    // A full closed-loop run: device + app + controller stack for
    // `sim_ms` simulated milliseconds (control cycle = 2 s).
    let sim_ms: u64 = if quick { 4_000 } else { 20_000 };
    let run_cfg = BenchConfig {
        warmup_iters: 1,
        samples: if quick { 5 } else { 15 },
        inner: 1,
    };
    let r = bench(&format!("controller_run/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let controller: EnergyController = ControllerBuilder::new(table.clone())
            .target_gips(0.5)
            .seed(0xc0de)
            .build();
        let mut gpu = AdrenoTz::default();
        let mut ctrl = controller;
        let mut policies: [&mut dyn Policy; 2] = [&mut gpu, &mut ctrl];
        black_box(sim::run(&mut device, &mut app, &mut policies, sim_ms));
    });
    let ns_per_sim_ms = r.median_ns / sim_ms as f64;
    let untraced_median_ns = r.median_ns;
    results.push(r);

    // The same closed loop with the observability sink installed: the
    // delta against the untraced run is the tracing overhead budget
    // (acceptance: < 5 % per cycle).
    let r = bench(
        &format!("controller_run_traced/{sim_ms}ms"),
        &run_cfg,
        || {
            let mut device = Device::new(DeviceConfig::nexus6());
            let mut app = apps::spotify(BackgroundLoad::baseline(1));
            let controller: EnergyController = ControllerBuilder::new(table.clone())
                .target_gips(0.5)
                .seed(0xc0de)
                .build();
            let sink = Rc::new(RefCell::new(RingSink::new(4096)));
            device.install_obs_sink(sink.clone());
            let mut gpu = AdrenoTz::default();
            let mut ctrl = controller;
            let mut policies: [&mut dyn Policy; 2] = [&mut gpu, &mut ctrl];
            black_box(sim::run(&mut device, &mut app, &mut policies, sim_ms));
            black_box(sink.borrow().ring().len());
        },
    );
    let traced_median_ns = r.median_ns;
    results.push(r);

    // The sink's record path in isolation.
    let mut sink = RingSink::new(4096);
    let rec = CycleRecord {
        cycle: 7,
        t_ms: 16_000,
        innovation: -0.02,
        solve_ns: 1_800,
        actuation_ns: 9_400,
        ..CycleRecord::default()
    };
    results.push(bench(
        "trace_record_cycle",
        &cfg.with_inner(cfg.inner * 50),
        || {
            sink.record_cycle(black_box(&rec));
        },
    ));

    let mut derived = Json::object();
    derived.set("controller_run_ns_per_sim_ms", ns_per_sim_ms);
    // A faster traced run than untraced run is measurement noise, not a
    // negative overhead: clamp at zero so the report never carries a
    // nonsensical negative percentage.
    let trace_overhead_pct =
        ((traced_median_ns - untraced_median_ns) / untraced_median_ns * 100.0).max(0.0);
    derived.set("trace_overhead_pct", trace_overhead_pct);
    derived.set("controller_run_traced_median_ns", traced_median_ns);
    derived.set("controller_run_untraced_median_ns", untraced_median_ns);
    // Fail loudly only on a genuine budget violation (§V-A1 acceptance:
    // tracing must stay under 5 % of the untraced loop).
    assert!(
        trace_overhead_pct <= 5.0,
        "tracing overhead {trace_overhead_pct:.2}% exceeds the 5% budget \
         (untraced {untraced_median_ns:.0} ns, traced {traced_median_ns:.0} ns)"
    );
    suite_report("controller", quick, &results, derived)
}

fn simulator_suite(quick: bool) -> Json {
    let sim_ms: u64 = if quick { 4_000 } else { 20_000 };
    let run_cfg = BenchConfig {
        warmup_iters: 1,
        samples: if quick { 5 } else { 15 },
        inner: 1,
    };
    let mut results = Vec::new();

    let r = bench(&format!("sim_bare/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        black_box(sim::run(&mut device, &mut app, &mut [], sim_ms));
    });
    let bare_ns_per_tick = r.median_ns / sim_ms as f64;
    results.push(r);

    let r = bench(&format!("sim_governors/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 2] = [&mut bw, &mut gpu];
        black_box(sim::run(&mut device, &mut app, &mut policies, sim_ms));
    });
    let gov_ns_per_tick = r.median_ns / sim_ms as f64;
    results.push(r);

    // Event-core rows: a steady, span-friendly scenario (constant
    // demand, no monitor noise) run through BOTH cores, so the derived
    // speedups compare bit-identical work. The spotify rows above are
    // per-millisecond by construction (the app and background load draw
    // randomness every millisecond) and cannot coalesce without
    // changing results — see DESIGN.md §9.
    let steady_cfg = || {
        let mut c = DeviceConfig::nexus6();
        c.monitor_noise_w = 0.0;
        c
    };
    let steady_app = || ConstantWorkload::new("steady", 0.5, 1.5, 1.0);

    let r = bench(&format!("sim_tick_bare/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(steady_cfg());
        let mut app = steady_app();
        black_box(sim::run(&mut device, &mut app, &mut [], sim_ms));
    });
    let tick_bare_ns = r.median_ns;
    results.push(r);

    let events = Cell::new(0u64);
    let r = bench(&format!("sim_event_bare/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(steady_cfg());
        let mut app = steady_app();
        let (report, engine) = event::run_counted(&mut device, &mut app, &mut [], sim_ms);
        events.set(engine.events);
        black_box(report);
    });
    let event_bare_ns = r.median_ns;
    let bare_events = events.get();
    results.push(r);

    let r = bench(&format!("sim_tick_governors/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(steady_cfg());
        let mut app = steady_app();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 2] = [&mut bw, &mut gpu];
        black_box(sim::run(&mut device, &mut app, &mut policies, sim_ms));
    });
    let tick_gov_ns = r.median_ns;
    results.push(r);

    let r = bench(&format!("sim_event_governors/{sim_ms}ms"), &run_cfg, || {
        let mut device = Device::new(steady_cfg());
        let mut app = steady_app();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 2] = [&mut bw, &mut gpu];
        let (report, engine) = event::run_counted(&mut device, &mut app, &mut policies, sim_ms);
        events.set(engine.events);
        black_box(report);
    });
    let event_gov_ns = r.median_ns;
    let gov_events = events.get();
    results.push(r);

    let mut derived = Json::object();
    derived.set("bare_ns_per_tick", bare_ns_per_tick);
    derived.set("governors_ns_per_tick", gov_ns_per_tick);
    derived.set("bare_ticks_per_sec", 1e9 / bare_ns_per_tick);
    // Event-core aggregates (bit-identical runs, same simulated span).
    derived.set("event_speedup_bare", tick_bare_ns / event_bare_ns);
    derived.set("event_speedup_governors", tick_gov_ns / event_gov_ns);
    derived.set("event_bare_events", bare_events as f64);
    derived.set("event_governors_events", gov_events as f64);
    derived.set("events_per_sec", gov_events as f64 / (event_gov_ns * 1e-9));
    derived.set("sim_ms_per_wall_ms", sim_ms as f64 / (event_bare_ns * 1e-6));
    suite_report("simulator", quick, &results, derived)
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--quick`)");
                std::process::exit(2);
            }
        }
    }
    let root = repo_root();
    for (suite, report) in [
        ("optimizer", optimizer_suite(quick)),
        ("controller", controller_suite(quick)),
        ("simulator", simulator_suite(quick)),
    ] {
        let path = root.join(format!("BENCH_{suite}.json"));
        std::fs::write(&path, report.to_pretty()).expect("write benchmark report");
        println!("wrote {}", path.display());
        if suite == "optimizer" {
            let speedup = report
                .get("derived")
                .and_then(|d| d.get("hull_speedup_at_234"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            println!("  hull vs two-point at N=234: {speedup:.1}x");
        }
    }
}
