//! # asgov-bench — Criterion micro-benchmarks
//!
//! Verifies the paper's §V-A1 overhead claims on this implementation:
//! the performance regulator and the energy optimizer together must
//! execute in well under 10 ms per control cycle even for the full
//! 18 × 13 = 234-configuration table, and the device simulator must be
//! fast enough to regenerate every experiment.
//!
//! Benchmarks (see `benches/`):
//!
//! - `optimizer` — the O(N²) two-configuration search vs N, plus the
//!   general simplex solver for comparison.
//! - `controller` — regulator step, Kalman update, and a full control
//!   cycle (measure → regulate → optimize → schedule).
//! - `simulator` — device ticks per second with and without governors.

/// Build a synthetic profile of `n` configurations with plausible
/// speedup/power curves (for benchmarking the optimizer at any N).
pub fn synthetic_profile(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0);
    let mut speedups = Vec::with_capacity(n);
    let mut powers = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f64 / (n - 1).max(1) as f64;
        // Concave speedup, superlinear power — typical DVFS shape.
        speedups.push(1.0 + 2.2 * x.powf(0.7));
        powers.push(1.5 + 2.5 * x.powf(1.4));
    }
    (speedups, powers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profile_is_monotone() {
        let (s, p) = synthetic_profile(234);
        assert_eq!(s.len(), 234);
        assert!(s.windows(2).all(|w| w[1] >= w[0]));
        assert!(p.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn synthetic_profile_solvable() {
        let (s, p) = synthetic_profile(50);
        let sched = asgov_linprog::two_point::optimize(&s, &p, 2.0, 2.0).unwrap();
        assert!((sched.expected_speedup(&s) - 2.0).abs() < 1e-9);
    }
}
