//! # asgov-bench — hermetic micro-benchmarks
//!
//! Verifies the paper's §V-A1 overhead claims on this implementation:
//! the performance regulator and the energy optimizer together must
//! execute in well under 10 ms per control cycle even for the full
//! 18 × 13 = 234-configuration table, and the device simulator must be
//! fast enough to regenerate every experiment.
//!
//! The harness is in-tree and dependency-free (no criterion): a
//! warmup, then `samples` timed samples of `inner` iterations each,
//! reported as min / median / p95 / mean nanoseconds per iteration.
//! The `asgov-bench` binary runs three suites — `optimizer`,
//! `controller`, `simulator` — and writes one `BENCH_<suite>.json`
//! per suite at the repository root (schema documented in README.md).

use asgov_util::Json;
use std::time::Instant;

/// Sampling plan for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations run first (JIT-free here, but they warm
    /// caches and the branch predictor).
    pub warmup_iters: usize,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample; per-iteration cost is `elapsed / inner`,
    /// which amortizes the `Instant` read for nanosecond-scale bodies.
    pub inner: usize,
}

impl BenchConfig {
    /// The default plan used by the full benchmark run.
    pub fn full() -> Self {
        Self {
            warmup_iters: 50,
            samples: 40,
            inner: 20,
        }
    }

    /// A reduced plan for smoke runs (`--quick`, CI).
    pub fn quick() -> Self {
        Self {
            warmup_iters: 5,
            samples: 10,
            inner: 5,
        }
    }

    /// Same plan with a different `inner` count (for very cheap or
    /// very expensive bodies).
    pub fn with_inner(mut self, inner: usize) -> Self {
        self.inner = inner.max(1);
        self
    }
}

/// Summary statistics of one benchmark, nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `"hull_solve/234"`.
    pub name: String,
    /// Timed samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub inner: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

impl BenchResult {
    /// JSON object for the `results` array of `BENCH_<suite>.json`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("name", self.name.as_str());
        o.set("samples", self.samples);
        o.set("inner", self.inner);
        o.set("min_ns", self.min_ns);
        o.set("median_ns", self.median_ns);
        o.set("p95_ns", self.p95_ns);
        o.set("mean_ns", self.mean_ns);
        o
    }
}

/// Time `f` under the given sampling plan and return per-iteration
/// statistics. Use `std::hint::black_box` inside `f` to keep the
/// optimizer from deleting the measured work.
///
/// # Panics
///
/// Panics if the plan has zero samples or zero inner iterations.
pub fn bench<F: FnMut()>(name: &str, cfg: &BenchConfig, mut f: F) -> BenchResult {
    assert!(cfg.samples > 0 && cfg.inner > 0, "empty sampling plan");
    for _ in 0..cfg.warmup_iters {
        f();
    }
    let mut per_iter_ns: Vec<f64> = (0..cfg.samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..cfg.inner {
                f();
            }
            t0.elapsed().as_nanos() as f64 / cfg.inner as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let n = per_iter_ns.len();
    let pick = |q: f64| per_iter_ns[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
    BenchResult {
        name: name.to_string(),
        samples: cfg.samples,
        inner: cfg.inner,
        min_ns: per_iter_ns[0],
        median_ns: pick(0.5),
        p95_ns: pick(0.95),
        mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
    }
}

/// Assemble one suite report: `{schema, suite, quick, results, derived}`.
pub fn suite_report(suite: &str, quick: bool, results: &[BenchResult], derived: Json) -> Json {
    let mut o = Json::object();
    o.set("schema", "asgov-bench/v1");
    o.set("suite", suite);
    o.set("quick", quick);
    o.set(
        "results",
        Json::Arr(results.iter().map(BenchResult::to_json).collect()),
    );
    o.set("derived", derived);
    o
}

/// Build a synthetic profile of `n` configurations with plausible
/// speedup/power curves (for benchmarking the optimizer at any N).
pub fn synthetic_profile(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0);
    let mut speedups = Vec::with_capacity(n);
    let mut powers = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f64 / (n - 1).max(1) as f64;
        // Concave speedup, superlinear power — typical DVFS shape.
        speedups.push(1.0 + 2.2 * x.powf(0.7));
        powers.push(1.5 + 2.5 * x.powf(1.4));
    }
    (speedups, powers)
}

/// A full 18 × 13 = 234-row synthetic [`asgov_profiler::ProfileTable`]
/// over the Nexus 6 configuration grid, for controller-level benches.
pub fn synthetic_table() -> asgov_profiler::ProfileTable {
    use asgov_profiler::{Config, ProfileEntry, ProfileTable};
    use asgov_soc::{BwIndex, FreqIndex};
    let n = 18 * 13;
    let (speedups, powers) = synthetic_profile(n);
    let entries = (0..n)
        .map(|i| ProfileEntry {
            config: Config::new(FreqIndex(i / 13), BwIndex(i % 13)),
            speedup: speedups[i],
            power_w: powers[i],
            measured: i % 13 == 0 || i % 13 == 12,
        })
        .collect();
    ProfileTable {
        app: "synthetic".into(),
        base_gips: 0.2,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profile_is_monotone() {
        let (s, p) = synthetic_profile(234);
        assert_eq!(s.len(), 234);
        assert!(s.windows(2).all(|w| w[1] >= w[0]));
        assert!(p.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn synthetic_profile_solvable() {
        let (s, p) = synthetic_profile(50);
        let sched = asgov_linprog::two_point::optimize(&s, &p, 2.0, 2.0).unwrap();
        assert!((sched.expected_speedup(&s) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_table_covers_the_grid() {
        let t = synthetic_table();
        assert_eq!(t.len(), 234);
        let opt = asgov_core::EnergyOptimizer::new(&t);
        assert!(opt.solve(2.0, 2.0).is_some());
    }

    #[test]
    fn bench_reports_sane_statistics() {
        let cfg = BenchConfig {
            warmup_iters: 2,
            samples: 9,
            inner: 3,
        };
        let r = bench("spin", &cfg, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(r.samples, 9);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.mean_ns > 0.0);
        let j = r.to_json();
        assert_eq!(j.get("name").and_then(Json::as_str), Some("spin"));
        assert!(j.get("median_ns").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn suite_report_has_schema_fields() {
        let r = bench("x", &BenchConfig::quick(), || {
            std::hint::black_box(1 + 1);
        });
        let rep = suite_report("optimizer", true, &[r], Json::object());
        assert_eq!(
            rep.get("schema").and_then(Json::as_str),
            Some("asgov-bench/v1")
        );
        assert_eq!(
            rep.get("results")
                .and_then(Json::as_array)
                .map(<[asgov_util::Json]>::len),
            Some(1)
        );
        // Round-trips through the parser.
        let parsed = Json::parse(&rep.to_pretty()).unwrap();
        assert_eq!(
            parsed.get("suite").and_then(Json::as_str),
            Some("optimizer")
        );
    }
}
