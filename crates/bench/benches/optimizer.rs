//! Energy-optimizer overhead (paper §V-A1: regulator + optimizer
//! together < 10 ms per 2 s control cycle).

use asgov_bench::synthetic_profile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_two_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_point_optimize");
    // 18 = one bandwidth row; 117 = the paper's interpolated table
    // (9 freqs × 13 bandwidths); 234 = the exhaustive 18 × 13 grid.
    for n in [18, 117, 234, 468] {
        let (speedups, powers) = synthetic_profile(n);
        let target = 2.0;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                asgov_linprog::two_point::optimize(
                    black_box(&speedups),
                    black_box(&powers),
                    black_box(target),
                    2.0,
                )
            })
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_solve");
    for n in [18, 117, 234] {
        let (speedups, powers) = synthetic_profile(n);
        let a = vec![speedups.clone(), vec![1.0; n]];
        let b_vec = vec![2.0 * 2.0, 2.0];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| asgov_linprog::simplex::solve(black_box(&a), black_box(&b_vec), black_box(&powers)))
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_descend");
    for n in [18, 117, 234] {
        let (speedups, powers) = synthetic_profile(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                asgov_linprog::gradient::descend(
                    black_box(&speedups),
                    black_box(&powers),
                    black_box(2.0),
                    2.0,
                    n / 2,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_point, bench_simplex, bench_gradient);
criterion_main!(benches);
