//! Controller-path overhead: regulator step, Kalman update, full
//! control-cycle computation (paper §V-A1: < 10 ms per cycle, we expect
//! microseconds).

use asgov_bench::synthetic_profile;
use asgov_control::{AdaptiveIntegrator, KalmanFilter};
use asgov_core::EnergyOptimizer;
use asgov_profiler::{Config, ProfileEntry, ProfileTable};
use asgov_soc::{BwIndex, FreqIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table_of(n: usize) -> ProfileTable {
    let (speedups, powers) = synthetic_profile(n);
    ProfileTable {
        app: "bench".into(),
        base_gips: 0.129,
        entries: (0..n)
            .map(|i| ProfileEntry {
                config: Config {
                    freq: FreqIndex(i % 18),
                    bw: BwIndex(i % 13),
                    gpu: None,
                },
                speedup: speedups[i],
                power_w: powers[i],
                measured: true,
            })
            .collect(),
    }
}

fn bench_regulator(c: &mut Criterion) {
    c.bench_function("integrator_step", |b| {
        let mut reg = AdaptiveIntegrator::new(1.0, 1.0, 3.0);
        b.iter(|| reg.step(black_box(0.25), black_box(0.2), black_box(0.129)))
    });
    c.bench_function("kalman_update", |b| {
        let mut kf = KalmanFilter::new(0.129, 0.01, 1e-5, 1e-3);
        b.iter(|| kf.update(black_box(0.25), black_box(2.0)))
    });
}

fn bench_control_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_cycle_compute");
    for n in [117, 234] {
        let table = table_of(n);
        let optimizer = EnergyOptimizer::new(&table);
        let mut reg = AdaptiveIntegrator::new(1.5, optimizer.min_speedup(), optimizer.max_speedup());
        let mut kf = KalmanFilter::new(0.129, 0.01, 1e-5, 1e-3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // One full cycle of computation: Kalman, integrator, LP.
                let est = kf.update(black_box(0.25), black_box(2.0));
                let s = reg.step(black_box(0.26), black_box(0.25), est.value.max(1e-9));
                optimizer.solve(s, 2.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regulator, bench_control_cycle);
criterion_main!(benches);
