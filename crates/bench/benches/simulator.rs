//! Device-simulator throughput: ticks per second with different policy
//! stacks (gates how fast the experiment suite can regenerate the
//! paper's tables).

use asgov_governors::{CpubwHwmon, Interactive};
use asgov_soc::{Device, DeviceConfig, Policy, Workload};
use asgov_workloads::{apps, BackgroundLoad};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_bare_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("bare_device_1000_ticks", |b| {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
        b.iter(|| {
            for _ in 0..1000 {
                let now = device.now_ms();
                let demand = app.demand(now);
                let out = device.tick(black_box(&demand));
                app.deliver(now, out.executed);
            }
        })
    });
    group.bench_function("device_with_governors_1000_ticks", |b| {
        let mut device = Device::new(DeviceConfig::nexus6());
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        cpu.start(&mut device);
        bw.start(&mut device);
        let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
        b.iter(|| {
            for _ in 0..1000 {
                let now = device.now_ms();
                let demand = app.demand(now);
                let out = device.tick(black_box(&demand));
                app.deliver(now, out.executed);
                cpu.tick(&mut device);
                bw.tick(&mut device);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bare_ticks);
criterion_main!(benches);
