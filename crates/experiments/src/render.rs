//! Plain-text rendering helpers for experiment output.

/// Render a histogram (fractions summing to 1) as an ASCII bar chart
/// with one row per bin, labelled 1-based like the paper.
pub fn histogram(title: &str, fractions: &[f64], label: &str) -> String {
    let mut out = format!("{title}\n");
    for (i, &f) in fractions.iter().enumerate() {
        let bar = "#".repeat((f * 60.0).round() as usize);
        out.push_str(&format!("{label}{:<3} {:>6.2}% |{bar}\n", i + 1, f * 100.0));
    }
    out
}

/// Render two histograms side by side (controller vs default), the
/// shape of the paper's Figs. 4 and 5.
pub fn paired_histogram(title: &str, controller: &[f64], default: &[f64], label: &str) -> String {
    let mut out = format!(
        "{title}\n{:<6} {:>10} {:>10}\n",
        "", "controller", "default"
    );
    for i in 0..controller.len().max(default.len()) {
        let c = controller.get(i).copied().unwrap_or(0.0);
        let d = default.get(i).copied().unwrap_or(0.0);
        out.push_str(&format!(
            "{label}{:<4} {:>9.2}% {:>9.2}%  {}\n",
            i + 1,
            c * 100.0,
            d * 100.0,
            bar_pair(c, d)
        ));
    }
    out
}

fn bar_pair(c: f64, d: f64) -> String {
    let cb = "C".repeat((c * 40.0).round() as usize);
    let db = "d".repeat((d * 40.0).round() as usize);
    format!("{cb}|{db}")
}

/// Format a signed percentage like the paper's tables.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Format a percentage cell, flagging comparisons whose baseline is
/// degenerate (see `Comparison::baseline_degenerate`) as `n/a` rather
/// than printing a misleading `+0.0%`.
pub fn pct_flagged(v: f64, degenerate: bool) -> String {
    if degenerate {
        "n/a".to_string()
    } else {
        pct(v)
    }
}

/// Render rows as CSV with a header. Fields are escaped minimally
/// (quotes around fields containing commas or quotes).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = header
        .iter()
        .map(|h| field(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_all_bins() {
        let h = histogram("t", &[0.5, 0.25, 0.25], "f");
        assert!(h.contains("f1"));
        assert!(h.contains("f3"));
        assert!(h.contains("50.00%"));
    }

    #[test]
    fn paired_histogram_handles_uneven_lengths() {
        let s = paired_histogram("t", &[1.0], &[0.5, 0.5], "bw");
        assert!(s.contains("bw2"));
    }

    #[test]
    fn pct_signs() {
        assert_eq!(pct(4.2), "+4.2%");
        assert_eq!(pct(-0.4), "-0.4%");
    }

    #[test]
    fn pct_flagged_marks_degenerate_baselines() {
        assert_eq!(pct_flagged(4.2, false), "+4.2%");
        assert_eq!(pct_flagged(0.0, true), "n/a");
    }

    #[test]
    fn csv_escapes() {
        let out = csv(
            &["app", "note"],
            &[vec!["AngryBirds".into(), "hello, \"world\"".into()]],
        );
        assert_eq!(out, "app,note\nAngryBirds,\"hello, \"\"world\"\"\"\n");
    }
}
