//! Shared experiment harness: profile an app, measure the default
//! baseline, run the controller, and compare — the procedure behind
//! Tables III, IV and V.

use asgov_core::{ControlMode, ControllerBuilder, EnergyController, Supervisor, SupervisorConfig};
use asgov_governors::{AdrenoTz, CpubwHwmon};
use asgov_obs::RingSink;
use asgov_profiler::{
    measure_default, measure_fixed, profile_app, DefaultMeasurement, ProfileOptions, ProfileTable,
};
use asgov_soc::sim::RunReport;
use asgov_soc::{event, Device, DeviceConfig, FaultInjector, Policy, Workload as _};
use asgov_workloads::{AppKind, PhasedApp};
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome of one app's default-vs-controller comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Application name.
    pub app: String,
    /// The offline profile used.
    pub profile: ProfileTable,
    /// Default-governor baseline (averaged runs).
    pub default: DefaultMeasurement,
    /// Controller runs (averaged).
    pub controller: DefaultMeasurement,
    /// Whether the figure of merit is execution time (batch) or GIPS.
    pub deadline_based: bool,
}

impl Comparison {
    /// `true` when the default-governor baseline cannot anchor a
    /// percent comparison: zero or non-finite energy, GIPS (rate-based
    /// apps) or duration (deadline-based apps). A whole-run perf
    /// dropout or a zero-length measurement window produces such legs;
    /// dividing by them used to leak NaN/inf into experiment JSON.
    /// Reports must flag or exclude rows where this is set.
    pub fn baseline_degenerate(&self) -> bool {
        let perf_base = if self.deadline_based {
            self.default.duration_ms
        } else {
            self.default.gips
        };
        !usable_baseline(self.default.energy_j) || !usable_baseline(perf_base)
    }

    /// Performance difference in percent, positive = controller better.
    /// Deadline-critical apps (VidCon, MobileBench, MX Player in the
    /// paper) compare execution time; the rest compare GIPS.
    ///
    /// A degenerate baseline (see [`Comparison::baseline_degenerate`])
    /// yields a defined `0.0` instead of NaN/inf.
    pub fn performance_delta_pct(&self) -> f64 {
        if self.deadline_based {
            // Shorter is better.
            percent_delta(
                self.default.duration_ms - self.controller.duration_ms,
                self.default.duration_ms,
            )
        } else {
            percent_delta(self.controller.gips - self.default.gips, self.default.gips)
        }
    }

    /// Energy savings in percent, positive = controller saves energy.
    ///
    /// A degenerate baseline (see [`Comparison::baseline_degenerate`])
    /// yields a defined `0.0` instead of NaN/inf.
    pub fn energy_savings_pct(&self) -> f64 {
        percent_delta(
            self.default.energy_j - self.controller.energy_j,
            self.default.energy_j,
        )
    }

    /// Health counters aggregated over the controller runs (`None`
    /// when no run reported health).
    pub fn health(&self) -> Option<asgov_soc::HealthReport> {
        self.controller
            .reports
            .iter()
            .filter_map(|r| r.health)
            .reduce(|a, b| a.merge(&b))
    }

    /// One-line failure summary for report footers; `None` when every
    /// controller run was fault-free.
    pub fn failure_summary(&self) -> Option<String> {
        self.health()
            .filter(|h| !h.is_clean())
            .map(|h| format!("{}: {}", self.app, h.summary()))
    }
}

/// A baseline denominator is usable when it is finite and positive
/// (energies, GIPS and durations are all non-negative quantities).
fn usable_baseline(v: f64) -> bool {
    v.is_finite() && v > 0.0
}

/// `delta / base * 100`, with a defined `0.0` when `base` is zero or
/// non-finite so degenerate baselines never propagate NaN/inf into
/// report output.
fn percent_delta(delta: f64, base: f64) -> f64 {
    if usable_baseline(base) {
        delta / base * 100.0
    } else {
        0.0
    }
}

/// Experiment-wide options.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Offline profiling options.
    pub profile: ProfileOptions,
    /// Runs averaged per measurement (paper: 3).
    pub runs: usize,
    /// Override of the app's test duration, ms.
    pub duration_ms: Option<u64>,
    /// Controller mode.
    pub mode: ControlMode,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            profile: ProfileOptions::default(),
            runs: 3,
            duration_ms: None,
            mode: ControlMode::Coordinated,
        }
    }
}

impl ExperimentOptions {
    /// A faster variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            profile: ProfileOptions {
                runs_per_config: 1,
                run_ms: 5_000,
                freq_stride: 2,
                interpolate: true,
            },
            runs: 1,
            duration_ms: Some(60_000),
            mode: ControlMode::Coordinated,
        }
    }
}

/// Build the controller policy stack for the given mode.
///
/// Deadline-critical (batch) applications get a zero target margin: for
/// them the figure of merit is completion time, and any slack directly
/// lengthens the run.
fn controller_stack(
    profile: &ProfileTable,
    target_gips: f64,
    mode: ControlMode,
    deadline_based: bool,
    run: usize,
) -> Vec<Box<dyn Policy>> {
    let controller: EnergyController = ControllerBuilder::new(profile.clone())
        .target_gips(target_gips)
        .target_margin(if deadline_based { 0.0 } else { 0.01 })
        .mode(mode)
        .seed(0xc0de + run as u64)
        .build();
    // The stock GPU governor runs in every configuration (the GPU is
    // not part of the paper's controlled configuration).
    match mode {
        ControlMode::Coordinated => vec![
            Box::new(AdrenoTz::default()) as Box<dyn Policy>,
            Box::new(controller),
        ],
        ControlMode::CpuOnly => vec![
            Box::new(CpubwHwmon::default()) as Box<dyn Policy>,
            Box::new(AdrenoTz::default()),
            Box::new(controller),
        ],
    }
}

/// Profile `app`, measure the default baseline and the controller, and
/// return the comparison. This is one row of Table III (or V with
/// `mode = CpuOnly`).
pub fn compare(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ExperimentOptions,
) -> Comparison {
    let duration = opts.duration_ms.unwrap_or(app.spec().test_duration_ms);
    let deadline_based = matches!(app.spec().kind, AppKind::Batch { .. });

    let profile = profile_app_for_mode(dev_cfg, app, opts);
    let default = measure_default(dev_cfg, app, opts.runs, duration);
    let target = default.gips;

    let profile_for_ctrl = profile.clone();
    let mode = opts.mode;
    let mut run_idx = 0;
    let controller = measure_fixed(dev_cfg, app, opts.runs, duration, || {
        run_idx += 1;
        controller_stack(&profile_for_ctrl, target, mode, deadline_based, run_idx)
    });

    Comparison {
        app: app.spec().name.to_string(),
        profile,
        default,
        controller,
        deadline_based,
    }
}

/// Run [`compare`] for every app, fanning the apps out across
/// `std::thread::scope` workers, and return the comparisons in input
/// order.
///
/// Results are identical to calling [`compare`] serially per app: every
/// simulation seed derives from the device seed and the run index, never
/// from scheduling, and each worker owns a private clone of its app.
pub fn compare_all(
    dev_cfg: &DeviceConfig,
    apps: &[PhasedApp],
    opts: &ExperimentOptions,
) -> Vec<Comparison> {
    asgov_util::par::ordered_map(
        apps.len(),
        asgov_util::par::default_threads(apps.len()),
        |i| {
            let mut app = apps[i].clone();
            compare(dev_cfg, &mut app, opts)
        },
    )
}

/// Profile the app as appropriate for the controller mode: coordinated
/// control profiles the (frequency, bandwidth) grid; CPU-only control
/// re-profiles with the bandwidth under `cpubw_hwmon` (paper §V-D).
pub fn profile_app_for_mode(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ExperimentOptions,
) -> ProfileTable {
    match opts.mode {
        ControlMode::Coordinated => profile_app(dev_cfg, app, &opts.profile),
        ControlMode::CpuOnly => asgov_profiler::profile_app_cpu_only(dev_cfg, app, &opts.profile),
    }
}

/// Run an app under the default governors only, returning the report
/// (for histogram figures).
pub fn default_run(dev_cfg: &DeviceConfig, app: &mut PhasedApp, duration_ms: u64) -> RunReport {
    let m = measure_default(dev_cfg, app, 1, duration_ms);
    m.reports.into_iter().next().expect("one run requested")
}

/// Run the controller once with a [`RingSink`] installed on the device
/// (optionally under an injected fault plan), returning the run report
/// and the sink with the per-cycle trace and aggregated metrics.
///
/// This is the traced twin of the controller leg of [`compare`]: same
/// policy stack (stock GPU governor + coordinated controller), same
/// seeding discipline.
pub fn traced_controller_run(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &ProfileTable,
    target_gips: f64,
    duration_ms: u64,
    capacity: usize,
    faults: Option<FaultInjector>,
) -> (RunReport, Rc<RefCell<RingSink>>) {
    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(target_gips)
        .build();
    let mut gpu_gov = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    if let Some(injector) = faults {
        device.install_faults(injector);
    }
    let sink = Rc::new(RefCell::new(RingSink::new(capacity)));
    device.install_obs_sink(sink.clone());
    app.reset();
    let mut policies: [&mut dyn Policy; 2] = [&mut gpu_gov, &mut controller];
    let report = event::run(&mut device, app, &mut policies, duration_ms);
    (report, sink)
}

/// Run the controller under a [`Supervisor`] (optionally with an
/// injected fault plan), returning the run report. Same policy stack
/// and seeding discipline as [`traced_controller_run`]; the report's
/// health carries the supervisor's restart/downtime/recovery counters.
///
/// This is the leg behind the chaos binary's kill matrix: the fault
/// plan injects controller kills, the supervisor brings the controller
/// back (cold or warm per `sup_cfg.warm`), and the report shows what
/// the outage cost.
pub fn supervised_run(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &ProfileTable,
    target_gips: f64,
    duration_ms: u64,
    faults: Option<FaultInjector>,
    sup_cfg: SupervisorConfig,
) -> RunReport {
    let factory_profile = profile.clone();
    let mut supervisor = Supervisor::new(
        move || {
            ControllerBuilder::new(factory_profile.clone())
                .target_gips(target_gips)
                .build()
        },
        sup_cfg,
    );
    let mut gpu_gov = AdrenoTz::default();
    let mut device = Device::new(dev_cfg.clone());
    if let Some(injector) = faults {
        device.install_faults(injector);
    }
    app.reset();
    let mut policies: [&mut dyn Policy; 2] = [&mut gpu_gov, &mut supervisor];
    event::run(&mut device, app, &mut policies, duration_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_workloads::{apps, BackgroundLoad};

    /// Regression: a baseline leg that measured nothing (the outcome of
    /// a whole-run perf dropout, reproduced here by a zero-length
    /// measurement window through the real measurement pipeline) used
    /// to make both percentage methods return NaN or inf, which leaked
    /// into experiment JSON. They must now return a defined 0.0 and the
    /// comparison must self-identify as degenerate so reports can flag
    /// the row.
    #[test]
    fn zero_baseline_yields_defined_flagged_percentages() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let degenerate = measure_default(&dev_cfg, &mut app, 1, 0);
        assert!(
            degenerate.energy_j <= 0.0 || degenerate.gips <= 0.0,
            "a zero-length window must produce an unusable baseline"
        );
        let healthy = measure_default(&dev_cfg, &mut app, 1, 2_000);

        for deadline_based in [false, true] {
            let c = Comparison {
                app: "Spotify".to_string(),
                profile: ProfileTable {
                    app: "Spotify".to_string(),
                    base_gips: 0.1,
                    entries: Vec::new(),
                },
                default: degenerate.clone(),
                controller: healthy.clone(),
                deadline_based,
            };
            assert!(c.baseline_degenerate());
            let perf = c.performance_delta_pct();
            let energy = c.energy_savings_pct();
            assert!(perf.is_finite(), "perf delta must be defined, got {perf}");
            assert!(energy.is_finite(), "savings must be defined, got {energy}");
            assert_eq!(perf, 0.0);
            assert_eq!(energy, 0.0);
        }

        // A healthy baseline is not flagged and keeps real percentages.
        let c = Comparison {
            app: "Spotify".to_string(),
            profile: ProfileTable {
                app: "Spotify".to_string(),
                base_gips: 0.1,
                entries: Vec::new(),
            },
            default: healthy.clone(),
            controller: healthy,
            deadline_based: false,
        };
        assert!(!c.baseline_degenerate());
        assert!(c.performance_delta_pct().is_finite());
    }
}
