//! # asgov-experiments — regenerating the paper's tables and figures
//!
//! A shared harness ([`harness`]) plus one binary per artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | Table I — sample AngryBirds profile table |
//! | `table2` | Table II — the frequency/bandwidth ladders |
//! | `table3` | Table III — energy savings & performance, 6 apps |
//! | `table4` | Table IV — BL / NL / HL background loads |
//! | `table5` | Table V — CPU-only DVFS ablation |
//! | `fig1`   | Fig. 1 — eBook CPU-frequency histogram (default) |
//! | `fig3`   | Fig. 3 — two-configuration optimization example |
//! | `fig4`   | Fig. 4 — per-app CPU-frequency histograms |
//! | `fig5`   | Fig. 5 — per-app memory-bandwidth histograms |
//!
//! Run e.g. `cargo run --release -p asgov-experiments --bin table3`.

pub mod harness;
pub mod render;
pub mod stats;
