//! Small statistics helpers for multi-run experiment reporting.
//!
//! The paper averages three runs per number; these helpers add the
//! spread so readers can judge which differences are real.

/// Mean and sample standard deviation of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarize a series.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        };
        Self { mean, std, n }
    }

    /// Format as `mean ± std`.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std)
    }

    /// A crude significance check: do two summaries differ by more than
    /// the sum of their standard errors? (Not a t-test; a reading aid.)
    pub fn clearly_differs_from(&self, other: &Summary) -> bool {
        if self.n < 2 || other.n < 2 {
            return false;
        }
        let se = self.std / (self.n as f64).sqrt() + other.std / (other.n as f64).sqrt();
        (self.mean - other.mean).abs() > se
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138).abs() < 0.01);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn degenerate_series() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.std, 0.0);
    }

    #[test]
    fn display_rounds() {
        let s = Summary::of(&[1.0, 2.0]);
        assert_eq!(s.display(1), "1.5 ± 0.7");
    }

    #[test]
    fn difference_check() {
        let a = Summary::of(&[10.0, 10.1, 9.9]);
        let b = Summary::of(&[12.0, 12.1, 11.9]);
        assert!(a.clearly_differs_from(&b));
        let c = Summary::of(&[10.0, 12.0, 8.0]);
        assert!(!a.clearly_differs_from(&c));
        assert!(!a.clearly_differs_from(&Summary::of(&[5.0])));
    }
}
