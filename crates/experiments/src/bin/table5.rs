//! Table V — the CPU-only DVFS ablation: the controller actuates only
//! the CPU frequency while `cpubw_hwmon` keeps the bandwidth.

use asgov_core::ControlMode;
use asgov_experiments::harness::{compare_all, ExperimentOptions};
use asgov_experiments::render::pct_flagged;
use asgov_soc::DeviceConfig;
use asgov_workloads::{paper_apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let mut opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };

    println!("=== Table V: CPU-only DVFS controller vs default (paper §V-D) ===\n");
    println!(
        "{:<18} {:>12} {:>10} {:>14}   (paper: perf, energy)",
        "Application", "Performance", "Energy", "coord. energy"
    );
    let paper = [
        ("+2.8%", "13.1%"),
        ("-2.9%", "7.6%"),
        ("-2.6%", "9.6%"),
        ("+4.7%", "22.3%"),
        ("0.0%", "0.4%"),
        ("+3.3%", "33.3%"),
    ];
    let mut cpu_only_sum = 0.0;
    let mut coord_sum = 0.0;
    let mut counted = 0;
    // Both modes fan out across all six apps; rows stay in app order.
    let apps = paper_apps(BackgroundLoad::baseline(1));
    opts.mode = ControlMode::CpuOnly;
    let cpu_only_rows = compare_all(&dev_cfg, &apps, &opts);
    opts.mode = ControlMode::Coordinated;
    let coord_rows = compare_all(&dev_cfg, &apps, &opts);
    for (i, (cpu_only, coord)) in cpu_only_rows.into_iter().zip(coord_rows).enumerate() {
        println!(
            "{:<18} {:>12} {:>10} {:>14}   ({:>6}, {:>6})",
            cpu_only.app,
            pct_flagged(
                cpu_only.performance_delta_pct(),
                cpu_only.baseline_degenerate()
            ),
            pct_flagged(
                cpu_only.energy_savings_pct(),
                cpu_only.baseline_degenerate()
            ),
            pct_flagged(coord.energy_savings_pct(), coord.baseline_degenerate()),
            paper[i].0,
            paper[i].1,
        );
        // The paper excludes MX Player ("practically does not save
        // energy") from the average; degenerate baselines would drag
        // the mean toward 0 with rows that measured nothing.
        if cpu_only.app != "MXPlayer"
            && !cpu_only.baseline_degenerate()
            && !coord.baseline_degenerate()
        {
            cpu_only_sum += cpu_only.energy_savings_pct();
            coord_sum += coord.energy_savings_pct();
            counted += 1;
        }
    }
    if counted == 0 {
        println!("\nAverage savings: n/a (no usable baselines)");
        return;
    }
    let (c, k) = (coord_sum / counted as f64, cpu_only_sum / counted as f64);
    println!("\nAverage savings (excl. MXPlayer): coordinated {c:.1}%, cpu-only {k:.1}%");
    if k > 0.0 {
        println!(
            "Energy-consumption increase of CPU-only vs coordinated: {:.0}% (paper: 53%)",
            (c - k) / k.max(1e-9) * 100.0
        );
    }
}
