//! Ablations over the controller's design parameters (not in the paper,
//! but motivated by its §IV-B/§V-A1 discussion of implementation
//! choices): control-cycle duration, minimum dwell, integrator gain,
//! profiling stride and bandwidth interpolation.
//!
//! Run: `cargo run --release -p asgov-experiments --bin ablations`

use asgov_core::{ControllerBuilder, EnergyController};
use asgov_governors::{AdrenoTz, CpubwHwmon, Interactive, MpDecision};
use asgov_profiler::{
    measure_default, measure_fixed, profile_app, DefaultMeasurement, ProfileOptions, ProfileTable,
};
use asgov_soc::{event, Device};
use asgov_soc::{DeviceConfig, Policy};
use asgov_workloads::{apps, BackgroundLoad, PhasedApp};

const DURATION_MS: u64 = 90_000;

fn app() -> PhasedApp {
    apps::angrybirds(BackgroundLoad::baseline(1))
}

fn run_controller<F>(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    profile: &ProfileTable,
    target: f64,
    tweak: F,
) -> DefaultMeasurement
where
    F: Fn(ControllerBuilder) -> ControllerBuilder + Copy,
{
    let profile = profile.clone();
    measure_fixed(dev_cfg, app, 1, DURATION_MS, move || {
        let builder = tweak(ControllerBuilder::new(profile.clone()).target_gips(target));
        let controller: EnergyController = builder.build();
        vec![
            Box::new(AdrenoTz::default()) as Box<dyn Policy>,
            Box::new(controller),
        ]
    })
}

fn row(label: &str, default: &DefaultMeasurement, m: &DefaultMeasurement) {
    println!(
        "{:<26} {:>8.1}% {:>9.2}%",
        label,
        (default.energy_j - m.energy_j) / default.energy_j * 100.0,
        (m.gips - default.gips) / default.gips * 100.0,
    );
}

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut a = app();
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 20_000,
        freq_stride: 2,
        interpolate: true,
    };
    let profile = profile_app(&dev_cfg, &mut a, &opts);
    let default = measure_default(&dev_cfg, &mut a, 1, DURATION_MS);
    println!(
        "AngryBirds, default: {:.1} J at {:.3} GIPS\n",
        default.energy_j, default.gips
    );
    println!("{:<26} {:>9} {:>10}", "variant", "energy", "perf");

    println!("-- control cycle duration (paper: 2000 ms) --");
    for period in [500u64, 1_000, 2_000, 4_000] {
        let m = run_controller(&dev_cfg, &mut a, &profile, default.gips, |b| {
            b.period_ms(period)
        });
        row(&format!("T = {period} ms"), &default, &m);
    }

    println!("-- minimum dwell (paper: 200 ms) --");
    for dwell in [50u64, 200, 500, 1_000] {
        let m = run_controller(&dev_cfg, &mut a, &profile, default.gips, |b| {
            b.min_dwell_ms(dwell)
        });
        row(&format!("dwell = {dwell} ms"), &default, &m);
    }

    println!("-- integrator gain (deadbeat = 1.0) --");
    for gain in [0.3, 0.6, 1.0] {
        let m = run_controller(&dev_cfg, &mut a, &profile, default.gips, move |b| {
            b.gain(gain)
        });
        row(&format!("gain = {gain}"), &default, &m);
    }

    println!("-- phase detection (paper §V-B) --");
    for detect in [false, true] {
        let m = run_controller(&dev_cfg, &mut a, &profile, default.gips, move |b| {
            b.phase_detection(detect)
        });
        row(&format!("phase detection = {detect}"), &default, &m);
    }

    println!("-- profiling stride (paper: every alternate frequency) --");
    for stride in [1usize, 2, 4] {
        let mut o = opts.clone();
        o.freq_stride = stride;
        let p = profile_app(&dev_cfg, &mut a, &o);
        let m = run_controller(&dev_cfg, &mut a, &p, default.gips, |b| b);
        row(
            &format!("stride = {stride} ({} cfgs)", p.len()),
            &default,
            &m,
        );
    }

    println!("-- mpdecision hotplugging (paper: disabled, §IV-A) --");
    {
        let hot = measure_fixed(&dev_cfg, &mut a, 1, DURATION_MS, || {
            vec![
                Box::new(Interactive::default()) as Box<dyn Policy>,
                Box::new(CpubwHwmon::default()),
                Box::new(AdrenoTz::default()),
                Box::new(MpDecision::default()),
            ]
        });
        // Relative to the (hotplug-disabled) default baseline.
        row("default + mpdecision", &default, &hot);
    }

    println!("-- cpuidle deep sleep (not modeled in the Table III calibration) --");
    {
        let mut cfg = dev_cfg.clone();
        cfg.cpuidle_leak_reduction = 0.8;
        let mut idle_dev = Device::new(cfg);
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        use asgov_soc::Workload as _;
        a.reset();
        let report = event::run(
            &mut idle_dev,
            &mut a,
            &mut [&mut cpu, &mut bw, &mut gpu],
            DURATION_MS,
        );
        println!(
            "{:<26} {:>8.1}% {:>9.2}%",
            "default + cpuidle",
            (default.energy_j - report.energy_j) / default.energy_j * 100.0,
            (report.avg_gips - default.gips) / default.gips * 100.0,
        );
    }

    println!("-- bandwidth interpolation (paper: on) --");
    for interp in [true, false] {
        let mut o = opts.clone();
        o.interpolate = interp;
        let p = profile_app(&dev_cfg, &mut a, &o);
        let m = run_controller(&dev_cfg, &mut a, &p, default.gips, |b| b);
        row(
            &format!("interpolate = {interp} ({} cfgs)", p.len()),
            &default,
            &m,
        );
    }
}
