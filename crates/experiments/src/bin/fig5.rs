//! Fig. 5 — memory-bandwidth histograms, controller vs default, 6 apps.

use asgov_experiments::harness::{compare, ExperimentOptions};
use asgov_experiments::render::paired_histogram;
use asgov_soc::DeviceConfig;
use asgov_workloads::{paper_apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    println!("=== Fig. 5: memory bandwidth residency, controller vs default ===\n");
    let mut bw1_fracs = Vec::new();
    for mut app in paper_apps(BackgroundLoad::baseline(1)) {
        let c = compare(&dev_cfg, &mut app, &opts);
        let ctrl_hist = c.controller.reports[0].stats.bw_histogram();
        bw1_fracs.push((c.app.clone(), ctrl_hist[0]));
        println!(
            "{}",
            paired_histogram(
                &format!("--- {} ---", c.app),
                &ctrl_hist,
                &c.default.reports[0].stats.bw_histogram(),
                "bw",
            )
        );
    }
    println!("Controller time at bw1 (paper: >60% in all six cases):");
    for (app, f) in bw1_fracs {
        println!("  {:<14} {:.1}%", app, f * 100.0);
    }
}
