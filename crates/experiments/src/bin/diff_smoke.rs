//! Differential smoke test: run a sample of app x policy x fault
//! configurations through both simulator cores — the retained 1 ms tick
//! loop (`asgov_soc::sim`) and the event-driven engine
//! (`asgov_soc::event`) — and verify the reports are bit-identical.
//!
//! `tests/event_core.rs` proves the full matrix under `cargo test`;
//! this binary puts the same guarantee into the experiment pipeline so
//! `scripts/run_all_experiments.sh` (including `--quick`) fails loudly
//! if the two cores ever diverge on the machine producing the results.

use asgov_governors::{AdrenoTz, CpubwHwmon, Interactive, Ondemand};
use asgov_soc::{event, sim, Device, DeviceConfig, FaultInjector, FaultKind, FaultPlan, Policy};
use asgov_workloads::{apps, BackgroundLoad, PhasedApp};

/// Constructor signature shared by every packaged application.
type AppCtor = fn(BackgroundLoad) -> PhasedApp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let run_ms: u64 = if quick { 2_000 } else { 10_000 };

    let apps: Vec<(&str, AppCtor)> = vec![
        ("spotify", apps::spotify as AppCtor),
        ("wechat", apps::wechat),
        ("angrybirds", apps::angrybirds),
    ];
    let plans: Vec<(&str, Option<FaultPlan>)> = vec![
        ("none", None),
        (
            "thermal+hotplug",
            Some(
                FaultPlan::new()
                    .window(run_ms / 8, run_ms / 3, FaultKind::ThermalClamp(4))
                    .and_then(|p| p.window(run_ms / 2, run_ms * 3 / 4, FaultKind::Hotplug(2.0)))
                    .expect("valid windows"),
            ),
        ),
    ];

    println!("=== Differential smoke: tick core vs event core ({run_ms} ms runs) ===\n");
    println!(
        "{:<12} {:<12} {:<16} {:>12} {:>12} {:>10}",
        "app", "policy", "faults", "energy (J)", "GIPS", "identical"
    );

    let mut checked = 0usize;
    for (app_name, app_fn) in &apps {
        for policy in ["none", "ondemand", "interactive"] {
            for (plan_name, plan) in &plans {
                let run = |use_event: bool| {
                    let mut device = Device::new(DeviceConfig::nexus6());
                    if let Some(plan) = plan {
                        device.install_faults(FaultInjector::new(plan.clone(), 0x5eed));
                    }
                    let mut app = app_fn(BackgroundLoad::baseline(1));
                    let mut cpu_ondemand = Ondemand::default();
                    let mut cpu_interactive = Interactive::default();
                    let mut bw = CpubwHwmon::default();
                    let mut gpu = AdrenoTz::default();
                    let mut policies: Vec<&mut dyn Policy> = match policy {
                        "none" => vec![],
                        "ondemand" => vec![&mut cpu_ondemand, &mut bw, &mut gpu],
                        _ => vec![&mut cpu_interactive, &mut bw, &mut gpu],
                    };
                    if use_event {
                        event::run(&mut device, &mut app, &mut policies, run_ms)
                    } else {
                        sim::run(&mut device, &mut app, &mut policies, run_ms)
                    }
                };
                let tick = run(false);
                let event = run(true);
                let identical = tick == event
                    && tick.energy_j.to_bits() == event.energy_j.to_bits()
                    && tick.instructions.to_bits() == event.instructions.to_bits();
                println!(
                    "{:<12} {:<12} {:<16} {:>12.3} {:>12.4} {:>10}",
                    app_name, policy, plan_name, tick.energy_j, tick.avg_gips, identical
                );
                assert!(
                    identical,
                    "cores diverged on {app_name}/{policy}/{plan_name}: \
                     tick energy {:.17e} vs event {:.17e}",
                    tick.energy_j, event.energy_j
                );
                checked += 1;
            }
        }
    }
    println!("\nall {checked} configurations bit-identical across both cores");
}
