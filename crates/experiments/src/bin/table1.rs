//! Table I — sample offline profile table for AngryBirds.

use asgov_profiler::{profile_app, ProfileOptions};
use asgov_soc::DeviceConfig;
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let table = profile_app(&dev_cfg, &mut app, &ProfileOptions::default());
    println!("=== Table I: profile table for AngryBirds (paper §III-A) ===\n");
    println!("{}", table.render(&dev_cfg.table));
    println!(
        "Paper reference points: speedup 1.0 / ~1624 mW at (0.3 GHz, 762 MBps); \
         speedup 1.837 / ~2219 mW at (0.8832 GHz, 762 MBps); base speed 0.129 GIPS."
    );
}
