//! §V-B application scope: the two application types the paper says are
//! *not* suited to the controller — near-idle apps (nothing left to
//! save via CPU DVFS) and flat-out compute apps (nothing to save
//! without losing performance).

use asgov_experiments::harness::{compare, ExperimentOptions};
use asgov_experiments::render::pct_flagged;
use asgov_soc::DeviceConfig;
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    println!("=== §V-B application scope: where the controller cannot help ===\n");
    println!(
        "{:<12} {:>12} {:>9}",
        "Application", "Performance", "Energy"
    );
    for mut app in [
        apps::idler(BackgroundLoad::baseline(1)),
        apps::cruncher(BackgroundLoad::baseline(1)),
    ] {
        let c = compare(&dev_cfg, &mut app, &opts);
        println!(
            "{:<12} {:>12} {:>9}",
            c.app,
            pct_flagged(c.performance_delta_pct(), c.baseline_degenerate()),
            pct_flagged(c.energy_savings_pct(), c.baseline_degenerate()),
        );
    }
    println!("\nA reference point from Table III (controller in scope):");
    let mut ab = apps::angrybirds(BackgroundLoad::baseline(1));
    let c = compare(&dev_cfg, &mut ab, &opts);
    println!(
        "{:<12} {:>12} {:>9}",
        c.app,
        pct_flagged(c.performance_delta_pct(), c.baseline_degenerate()),
        pct_flagged(c.energy_savings_pct(), c.baseline_degenerate()),
    );
    println!("\nThe paper (\u{00a7}V-B): for the idle type \"it is hard to obtain additional");
    println!("energy savings through CPU DVFS\"; for the compute type \"it is hard to");
    println!("save more energy without performance degradation\".");
}
