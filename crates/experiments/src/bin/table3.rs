//! Table III — energy savings and performance of the coordinated
//! controller vs the default governors, six applications.

use asgov_experiments::harness::{compare_all, ExperimentOptions};
use asgov_experiments::render::pct_flagged;
use asgov_experiments::stats::Summary;
use asgov_soc::DeviceConfig;
use asgov_workloads::{paper_apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    println!("=== Table III: controller vs default governors (baseline load) ===\n");
    println!(
        "{:<18} {:>12} {:>8} {:>16}   (paper: perf, energy)",
        "Application", "Performance", "Energy", "ctrl W (mean±std)"
    );
    let paper = [
        ("-0.4%", "25.3%"),
        ("+4.1%", "15.3%"),
        ("+0.6%", "14.9%"),
        ("-0.4%", "27.2%"),
        ("0.0%", "4.2%"),
        ("+9.3%", "31.6%"),
    ];
    // All six apps run concurrently; the rows come back in app order.
    let apps = paper_apps(BackgroundLoad::baseline(1));
    let mut failures = Vec::new();
    for (i, c) in compare_all(&dev_cfg, &apps, &opts).into_iter().enumerate() {
        let powers: Vec<f64> = c.controller.reports.iter().map(|r| r.avg_power_w).collect();
        println!(
            "{:<18} {:>12} {:>8} {:>16}   ({:>6}, {:>6})",
            c.app,
            pct_flagged(c.performance_delta_pct(), c.baseline_degenerate()),
            pct_flagged(c.energy_savings_pct(), c.baseline_degenerate()),
            Summary::of(&powers).display(3),
            paper[i].0,
            paper[i].1,
        );
        failures.extend(c.failure_summary());
    }
    if failures.is_empty() {
        println!("\nall controller runs healthy: no actuation or measurement faults");
    } else {
        println!("\ncontroller failure summary:");
        for f in &failures {
            println!("  {f}");
        }
    }
}
