//! Time-series exporter: per-second power/GIPS series and the DVFS
//! transition trace for a default-vs-controller pair, as CSV — the raw
//! material for plotting any of the paper's figures.
//!
//! Run: `cargo run --release -p asgov-experiments --bin traces [--app NAME]`
//! Writes `results/<app>_{default,controller}_{series,events}.csv`.

use asgov_core::ControllerBuilder;
use asgov_experiments::render::csv;
use asgov_governors::{AdrenoTz, CpubwHwmon, Interactive};
use asgov_profiler::{measure_default, profile_app, ProfileOptions};
use asgov_soc::{event, Device, DeviceConfig, Policy, Workload};
use asgov_workloads::{apps, BackgroundLoad};

fn series_and_events(
    dev_cfg: &DeviceConfig,
    app: &mut dyn Workload,
    policies: &mut [&mut dyn Policy],
    duration_ms: u64,
) -> (String, String) {
    let mut device = Device::new(dev_cfg.clone());
    device.trace_mut().set_enabled(true);
    device.monitor_mut().set_keep_trace(true);
    app.reset();
    let _ = event::run(&mut device, app, policies, duration_ms);

    // Down-sample the 1 ms power trace to 100 ms rows with mean power.
    let trace = device.monitor().trace();
    let mut rows = Vec::new();
    for chunk in trace.chunks(100) {
        let t = chunk[0].t_ms;
        let mean: f64 = chunk.iter().map(|s| s.power_w).sum::<f64>() / chunk.len() as f64;
        rows.push(vec![t.to_string(), format!("{mean:.4}")]);
    }
    let series = csv(&["t_ms", "power_w"], &rows);
    let events = device.trace().to_csv();
    (series, events)
}

fn main() {
    let app_name = std::env::args()
        .skip_while(|a| a != "--app")
        .nth(1)
        .unwrap_or_else(|| "AngryBirds".into());
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = match app_name.as_str() {
        "VidCon" => apps::vidcon(BackgroundLoad::baseline(1)),
        "WeChat" => apps::wechat(BackgroundLoad::baseline(1)),
        "Spotify" => apps::spotify(BackgroundLoad::baseline(1)),
        _ => apps::angrybirds(BackgroundLoad::baseline(1)),
    };
    let duration = 60_000;
    std::fs::create_dir_all("results").expect("create results dir");

    // Default governors.
    let mut cpu = Interactive::default();
    let mut bw = CpubwHwmon::default();
    let mut gpu = AdrenoTz::default();
    let (series, events) = series_and_events(
        &dev_cfg,
        &mut app,
        &mut [&mut cpu, &mut bw, &mut gpu],
        duration,
    );
    std::fs::write(format!("results/{app_name}_default_series.csv"), series).unwrap();
    std::fs::write(format!("results/{app_name}_default_events.csv"), events).unwrap();

    // Controller.
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 20_000,
        freq_stride: 2,
        interpolate: true,
    };
    let profile = profile_app(&dev_cfg, &mut app, &opts);
    let target = measure_default(&dev_cfg, &mut app, 1, duration).gips;
    let mut controller = ControllerBuilder::new(profile).target_gips(target).build();
    let mut gpu = AdrenoTz::default();
    let (series, events) = series_and_events(
        &dev_cfg,
        &mut app,
        &mut [&mut gpu, &mut controller],
        duration,
    );
    std::fs::write(format!("results/{app_name}_controller_series.csv"), series).unwrap();
    std::fs::write(format!("results/{app_name}_controller_events.csv"), events).unwrap();

    println!("wrote results/{app_name}_{{default,controller}}_{{series,events}}.csv");
}
