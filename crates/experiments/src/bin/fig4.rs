//! Fig. 4 — CPU-frequency histograms, controller vs default, 6 apps.

use asgov_experiments::harness::{compare, ExperimentOptions};
use asgov_experiments::render::paired_histogram;
use asgov_soc::DeviceConfig;
use asgov_workloads::{paper_apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    println!("=== Fig. 4: CPU frequency residency, controller vs default ===\n");
    for mut app in paper_apps(BackgroundLoad::baseline(1)) {
        let c = compare(&dev_cfg, &mut app, &opts);
        println!(
            "{}",
            paired_histogram(
                &format!("--- {} ---", c.app),
                &c.controller.reports[0].stats.freq_histogram(),
                &c.default.reports[0].stats.freq_histogram(),
                "f",
            )
        );
    }
}
