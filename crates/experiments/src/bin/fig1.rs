//! Fig. 1 — histogram of CPU frequencies chosen by the default governor
//! for the e-book reader (the paper's motivating observation).

use asgov_experiments::harness::default_run;
use asgov_experiments::render::histogram;
use asgov_soc::DeviceConfig;
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::ebook(BackgroundLoad::baseline(1));
    let report = default_run(&dev_cfg, &mut app, 120_000);
    println!("=== Fig. 1: eBook reading, default governor ===\n");
    println!(
        "{}",
        histogram(
            "CPU frequency residency",
            &report.stats.freq_histogram(),
            "f"
        )
    );
    let h = report.stats.freq_histogram();
    let at_f10 = h[9] * 100.0;
    let high: f64 = h[13..].iter().sum::<f64>() * 100.0;
    println!("time at f10: {at_f10:.1}% (paper: ~15%); time at f14+: {high:.1}% (paper: >10% at the highest)");
}
