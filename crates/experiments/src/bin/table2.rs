//! Table II — the CPU frequency and memory bandwidth ladders.

use asgov_soc::DvfsTable;

fn main() {
    let t = DvfsTable::nexus6();
    println!("=== Table II: Nexus 6 operating points (paper §IV-A) ===\n");
    println!(
        "{:<4} {:>12}   {:<4} {:>12}",
        "#", "CPU (GHz)", "#", "Mem (MBps)"
    );
    for i in 0..t.num_freqs().max(t.num_bws()) {
        let f = if i < t.num_freqs() {
            format!("{:.4}", t.freq(asgov_soc::FreqIndex(i)).0)
        } else {
            String::new()
        };
        let b = if i < t.num_bws() {
            format!("{:.0}", t.bw(asgov_soc::BwIndex(i)).0)
        } else {
            String::new()
        };
        println!(
            "{:<4} {:>12}   {:<4} {:>12}",
            i + 1,
            f,
            if i < t.num_bws() {
                (i + 1).to_string()
            } else {
                String::new()
            },
            b
        );
    }
}
