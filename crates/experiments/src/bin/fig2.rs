//! Fig. 2 — the feedback-controller block diagram, realized in code.
//!
//! This binary exists so every figure of the paper has a regenerating
//! binary: it prints the loop structure and demonstrates, on one live
//! control cycle, which component produced which quantity.

use asgov_core::ControllerBuilder;
use asgov_profiler::{measure_default, profile_app, ProfileOptions};
use asgov_soc::{event, Device, DeviceConfig, Workload as _};
use asgov_workloads::{apps, BackgroundLoad};

const DIAGRAM: &str = r#"
            r (target GIPS)
                 │
                 ▼        e_n = r − y_n
           ┌──────────┐        ┌──────────────────────── K ───────────────────────┐
  y_n ────►│  Σ (−)   ├───────►│ regulator: s_n = s_{n−1} + e_{n−1}/b_{n−1}        │
   ▲       └──────────┘        │ (Kalman filter estimates b_n from y_n = s·b)      │
   │                           │ optimizer:  min uᵀℙ  s.t. 𝕊ᵀu = s_n·T, 𝟙ᵀu = T    │
   │                           └──────────────┬────────────────────────────────────┘
   │                                          │ u_n = (c_l, τ_l), (c_h, τ_h)
   │       ┌──────────┐        ┌──────────────▼───┐
   └───────┤ PMU/perf │◄───────┤ S: sysfs writes  ├──► plant (CPU freq, mem bw)
           └──────────┘        └──────────────────┘
"#;

fn main() {
    println!("=== Fig. 2: the online feedback controller ===");
    println!("{DIAGRAM}");

    // One live cycle, narrated.
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let profile = profile_app(
        &dev_cfg,
        &mut app,
        &ProfileOptions {
            runs_per_config: 1,
            run_ms: 10_000,
            freq_stride: 2,
            interpolate: true,
        },
    );
    let target = measure_default(&dev_cfg, &mut app, 1, 20_000).gips;
    let mut controller = ControllerBuilder::new(profile)
        .target_gips(target)
        .keep_log(true)
        .build();
    let mut device = Device::new(dev_cfg);
    app.reset();
    event::run(&mut device, &mut app, &mut [&mut controller], 10_000);

    println!("one live run, r = {target:.4} GIPS; per-cycle quantities:");
    for c in controller.cycle_log() {
        println!(
            "  t={:>5} ms  y_n={:.4}  b_n={:.4}  s_n={:.3}  u_n=({} for {:.2}s, {} for {:.2}s)",
            c.t_ms,
            c.measured_gips,
            c.base_estimate,
            c.required_speedup,
            c.lower,
            c.tau_lower_s,
            c.upper,
            2.0 - c.tau_lower_s,
        );
    }
}
