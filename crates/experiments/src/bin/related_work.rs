//! Related-work comparison (paper §VI): the same application under the
//! stock default, the modern `schedutil`, the model-based MAR-CSE
//! governor (Liang & Lai), a CoScale-style gradient-search controller,
//! and the paper's LP controller.
//!
//! The point the paper makes: MAR-CSE optimizes energy with *no
//! performance constraint* (it can sacrifice throughput), CoScale's
//! heuristic search is inexact, and only the LP controller holds the
//! target at minimum energy.

use asgov_core::{ControllerBuilder, EnergyController, OptimizerStrategy};
use asgov_experiments::harness::ExperimentOptions;
use asgov_governors::{AdrenoTz, CpubwHwmon, MarCse, Schedutil};
use asgov_profiler::{fit_mar_cse, measure_default, measure_fixed, profile_app};
use asgov_soc::{DeviceConfig, Policy};
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };
    let duration = opts.duration_ms.unwrap_or(120_000);
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));

    let default = measure_default(&dev_cfg, &mut app, opts.runs, duration);
    let profile = profile_app(&dev_cfg, &mut app, &opts.profile);
    eprintln!("fitting the MAR-CSE model on VidCon + MXPlayer...");
    let mut training = [
        apps::vidcon(BackgroundLoad::baseline(2)),
        apps::mxplayer(BackgroundLoad::baseline(2)),
    ];
    let mar_model = fit_mar_cse(&dev_cfg, &mut training, &opts.profile);

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    rows.push((
        "interactive + cpubw_hwmon".into(),
        default.gips,
        default.energy_j,
    ));

    let m = measure_fixed(&dev_cfg, &mut app, opts.runs, duration, || {
        vec![
            Box::new(Schedutil::default()) as Box<dyn Policy>,
            Box::new(CpubwHwmon::default()),
            Box::new(AdrenoTz::default()),
        ]
    });
    rows.push(("schedutil + cpubw_hwmon".into(), m.gips, m.energy_j));

    let model = mar_model.clone();
    let m = measure_fixed(&dev_cfg, &mut app, opts.runs, duration, || {
        vec![
            Box::new(MarCse::new(model.clone())) as Box<dyn Policy>,
            Box::new(CpubwHwmon::default()),
            Box::new(AdrenoTz::default()),
        ]
    });
    rows.push(("MAR-CSE + cpubw_hwmon".into(), m.gips, m.energy_j));

    for (label, strategy) in [
        ("asgov (CoScale-style search)", OptimizerStrategy::Gradient),
        ("asgov (LP, the paper)", OptimizerStrategy::LinearProgram),
    ] {
        let p = profile.clone();
        let target = default.gips;
        let m = measure_fixed(&dev_cfg, &mut app, opts.runs, duration, move || {
            let c: EnergyController = ControllerBuilder::new(p.clone())
                .target_gips(target)
                .optimizer_strategy(strategy)
                .build();
            vec![
                Box::new(AdrenoTz::default()) as Box<dyn Policy>,
                Box::new(c),
            ]
        });
        rows.push((label.into(), m.gips, m.energy_j));
    }

    println!(
        "\n=== Related work on AngryBirds ({} s) ===\n",
        duration / 1000
    );
    println!(
        "{:<30} {:>8} {:>10} {:>11} {:>9}",
        "policy", "GIPS", "perf", "energy (J)", "savings"
    );
    let base_gips = default.gips;
    let base_e = default.energy_j;
    for (label, gips, energy) in rows {
        println!(
            "{:<30} {:>8.3} {:>9.1}% {:>11.1} {:>8.1}%",
            label,
            gips,
            (gips - base_gips) / base_gips * 100.0,
            energy,
            (base_e - energy) / base_e * 100.0,
        );
    }
}
