//! Chaos study — the hardened controller under the deterministic fault
//! injector, one row per fault class.
//!
//! For each fault class a seeded [`FaultPlan`] fires mid-run; the table
//! reports what the controller observed, how far it degraded, and how
//! fast it recovered, next to the clean-run baseline. The same matrix is
//! written as `CHAOS_faultmatrix.json` at the repository root (uploaded
//! as a CI artifact alongside the bench reports).
//!
//! Run: `cargo run --release -p asgov-experiments --bin chaos [-- --quick] [-- --trace] [-- --kill-matrix]`
//!
//! With `--trace` the sysfs-busy scenario is re-run with the
//! observability sink installed, and the per-cycle JSONL trace is
//! written to `CHAOS_trace.jsonl` at the repository root (uploaded as a
//! CI artifact alongside the fault matrix).
//!
//! With `--kill-matrix` the supervised controller additionally runs
//! under injected controller kills — apps × kill counts × seeds, once
//! with cold restarts and once with warm (checkpoint) restarts — and
//! the comparison lands in the same JSON under `"kill_matrix"`.

use asgov_core::{ControllerBuilder, SupervisorConfig};
use asgov_governors::AdrenoTz;
use asgov_profiler::{measure_default, profile_app, ProfileOptions};
use asgov_soc::{
    event, Device, DeviceConfig, FaultInjector, FaultKind, FaultPlan, HealthReport, Policy,
    Workload as _,
};
use asgov_util::Json;
use asgov_workloads::{apps, BackgroundLoad};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// One row of the fault matrix: a named plan and its injection window.
fn fault_matrix(start: u64, end: u64) -> Vec<(&'static str, FaultPlan)> {
    let w = |p: f64, kind: FaultKind| {
        FaultPlan::new()
            .window_p(start, end, p, kind)
            .expect("valid window")
    };
    vec![
        ("none", FaultPlan::new()),
        ("sysfs-busy", w(0.8, FaultKind::SysfsBusy)),
        (
            "governor-reset",
            w(1.0, FaultKind::GovernorReset("interactive".into())),
        ),
        ("perf-dropout", w(1.0, FaultKind::PerfDropout)),
        ("perf-nan", w(1.0, FaultKind::PerfNan)),
        ("perf-spike", w(0.5, FaultKind::PerfSpike(40.0))),
        ("thermal-clamp", w(1.0, FaultKind::ThermalClamp(4))),
        ("hotplug", w(1.0, FaultKind::Hotplug(2.0))),
    ]
}

struct Row {
    fault: &'static str,
    energy_j: f64,
    avg_gips: f64,
    health: HealthReport,
}

/// A fault plan with `kills` controller-kill windows spread evenly
/// across `[start, end)`.
fn kill_plan(start: u64, end: u64, kills: u64) -> FaultPlan {
    let span = (end - start) / kills.max(1);
    let mut plan = FaultPlan::new();
    for i in 0..kills {
        let w_start = start + i * span;
        plan = plan
            .window(w_start, w_start + 500, FaultKind::ControllerKill)
            .expect("valid kill window");
    }
    plan
}

struct KillRow {
    app: &'static str,
    kills: u64,
    seed: u64,
    mode: &'static str,
    energy_j: f64,
    avg_gips: f64,
    health: HealthReport,
}

/// Supervised cold-vs-warm restart comparison under injected controller
/// kills: apps × kill counts × seeds × {cold, warm}.
fn run_kill_matrix(
    dev_cfg: &DeviceConfig,
    opts: &ProfileOptions,
    duration_ms: u64,
    f_start: u64,
    f_end: u64,
    seeds: &[u64],
) -> Vec<KillRow> {
    let mut rows = Vec::new();
    println!("\n=== Kill matrix: supervised cold vs warm restarts ===\n");
    println!(
        "{:<12} {:>5} {:>8} {:>6} {:>9} {:>9} {:>9} {:>12} {:>10} {:>12}",
        "App",
        "kills",
        "seed",
        "mode",
        "GIPS",
        "Energy J",
        "restarts",
        "downtime ms",
        "warm/err",
        "rec ms"
    );
    type AppCtor = fn() -> asgov_workloads::PhasedApp;
    let app_ctors: [(&'static str, AppCtor); 2] = [
        ("wechat", || apps::wechat(BackgroundLoad::baseline(1))),
        ("angrybirds", || {
            apps::angrybirds(BackgroundLoad::baseline(1))
        }),
    ];
    for (app_name, ctor) in app_ctors {
        let mut app = ctor();
        let profile = profile_app(dev_cfg, &mut app, opts);
        let default = measure_default(dev_cfg, &mut app, 1, duration_ms);
        for kills in [1u64, 3] {
            for &seed in seeds {
                for (mode, warm) in [("cold", false), ("warm", true)] {
                    let plan = kill_plan(f_start, f_end, kills);
                    let sup_cfg = SupervisorConfig {
                        warm,
                        ..SupervisorConfig::default()
                    };
                    let report = asgov_experiments::harness::supervised_run(
                        dev_cfg,
                        &mut app,
                        &profile,
                        default.gips,
                        duration_ms,
                        Some(FaultInjector::new(plan, seed)),
                        sup_cfg,
                    );
                    let health = report.health.expect("supervisor reports health");
                    assert!(
                        report.energy_j.is_finite() && report.avg_gips.is_finite(),
                        "{app_name}: supervised run must stay finite under kills"
                    );
                    let rec = health
                        .restart_recovery_ms
                        .map_or_else(|| "-".into(), |ms| ms.to_string());
                    println!(
                        "{:<12} {:>5} {:>8x} {:>6} {:>9.4} {:>9.1} {:>9} {:>12} {:>6}/{:>3} {:>12}",
                        app_name,
                        kills,
                        seed,
                        mode,
                        report.avg_gips,
                        report.energy_j,
                        health.restarts,
                        health.downtime_ms,
                        health.warm_restarts,
                        health.snapshot_errors,
                        rec,
                    );
                    rows.push(KillRow {
                        app: app_name,
                        kills,
                        seed,
                        mode,
                        energy_j: report.energy_j,
                        avg_gips: report.avg_gips,
                        health,
                    });
                }
            }
        }
    }
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let kill_matrix = std::env::args().any(|a| a == "--kill-matrix");
    let dev_cfg = DeviceConfig::nexus6();
    let duration_ms: u64 = if quick { 40_000 } else { 120_000 };
    // Faults fire in the middle third of the run: the controller has
    // settled before, and has time to recover after.
    let (f_start, f_end) = (duration_ms / 3, 2 * duration_ms / 3);
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: if quick { 5_000 } else { 10_000 },
        freq_stride: 2,
        interpolate: true,
    };

    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    eprintln!("profiling...");
    let profile = profile_app(&dev_cfg, &mut app, &opts);
    let default = measure_default(&dev_cfg, &mut app, 1, duration_ms);

    println!("=== Chaos: hardened controller under injected faults ===\n");
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>8} {:>8} {:>9} {:>18} {:>9}",
        "Fault",
        "GIPS",
        "Energy J",
        "writes",
        "retries",
        "rejects",
        "degraded",
        "final level",
        "rec (cyc)"
    );

    let mut rows = Vec::new();
    for (name, plan) in fault_matrix(f_start, f_end) {
        let mut device = Device::new(dev_cfg.clone());
        device.install_faults(FaultInjector::new(plan, 0x5eed));
        let mut controller = ControllerBuilder::new(profile.clone())
            .target_gips(default.gips)
            .build();
        let mut gpu_gov = AdrenoTz::default();
        app.reset();
        let mut policies: [&mut dyn Policy; 2] = [&mut gpu_gov, &mut controller];
        let report = event::run(&mut device, &mut app, &mut policies, duration_ms);
        let health = report.health.expect("controller reports health");
        assert!(
            report.energy_j.is_finite() && report.avg_gips.is_finite(),
            "{name}: run must stay finite under faults"
        );
        let latency = health
            .recovery_latency_cycles
            .map_or_else(|| "-".into(), |c| c.to_string());
        println!(
            "{:<16} {:>9.4} {:>9.1} {:>7} {:>8} {:>8} {:>9} {:>18} {:>9}",
            name,
            report.avg_gips,
            report.energy_j,
            health.write_failures(),
            health.retries,
            health.perf_rejected,
            health.degradations,
            health.level.to_string(),
            latency,
        );
        rows.push(Row {
            fault: name,
            energy_j: report.energy_j,
            avg_gips: report.avg_gips,
            health,
        });
    }

    let clean_energy = rows[0].energy_j;
    println!(
        "\nbaseline (default governors): {:.4} GIPS, {:.1} J; clean controller run: {:.1} J",
        default.gips, default.energy_j, clean_energy
    );

    let mut doc = Json::object();
    doc.set("app", "WeChat");
    doc.set("quick", quick);
    doc.set("duration_ms", duration_ms as f64);
    doc.set("fault_window_ms", format!("{f_start}..{f_end}").as_str());
    doc.set("default_gips", default.gips);
    doc.set("default_energy_j", default.energy_j);
    let mut matrix = Vec::new();
    for r in &rows {
        let mut row = Json::object();
        row.set("fault", r.fault);
        row.set("energy_j", r.energy_j);
        row.set("avg_gips", r.avg_gips);
        row.set("health", r.health.to_json());
        matrix.push(row);
    }
    doc.set("matrix", Json::Arr(matrix));

    if kill_matrix {
        let seeds: &[u64] = if quick { &[0x5eed] } else { &[0x5eed, 0x5eee] };
        let kill_rows = run_kill_matrix(&dev_cfg, &opts, duration_ms, f_start, f_end, seeds);
        // Warm-vs-cold energy delta, paired per (app, kills, seed).
        let mut deltas = Vec::new();
        for pair in kill_rows.chunks(2) {
            if let [cold, warm] = pair {
                deltas.push(cold.energy_j - warm.energy_j);
            }
        }
        let mean_delta = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
        println!(
            "\nwarm restarts saved {mean_delta:.2} J on average over cold (paired across {} scenarios)",
            deltas.len()
        );
        let mut arr = Vec::new();
        for r in &kill_rows {
            let mut row = Json::object();
            row.set("app", r.app);
            row.set("kills", r.kills as f64);
            row.set("seed", r.seed as f64);
            row.set("mode", r.mode);
            row.set("energy_j", r.energy_j);
            row.set("avg_gips", r.avg_gips);
            row.set("restarts", r.health.restarts as f64);
            row.set("warm_restarts", r.health.warm_restarts as f64);
            row.set("snapshot_errors", r.health.snapshot_errors as f64);
            row.set("downtime_ms", r.health.downtime_ms as f64);
            match r.health.restart_recovery_ms {
                Some(ms) => row.set("recovery_ms", ms as f64),
                None => row.set("recovery_ms", Json::Null),
            }
            row.set("level", r.health.level.to_string().as_str());
            arr.push(row);
        }
        doc.set("kill_matrix", Json::Arr(arr));
        doc.set("warm_vs_cold_energy_delta_j_mean", mean_delta);
    }

    let path = repo_root().join("CHAOS_faultmatrix.json");
    std::fs::write(&path, doc.to_pretty()).expect("write fault-matrix report");
    println!("wrote {}", path.display());

    if trace {
        // Re-run the sysfs-busy scenario with the observability sink
        // installed and keep the per-cycle JSONL trace as an artifact.
        let plan = FaultPlan::new()
            .window_p(f_start, f_end, 0.8, FaultKind::SysfsBusy)
            .expect("valid window");
        let (report, sink) = asgov_experiments::harness::traced_controller_run(
            &dev_cfg,
            &mut app,
            &profile,
            default.gips,
            duration_ms,
            4096,
            Some(FaultInjector::new(plan, 0x5eed)),
        );
        let sink = sink.borrow();
        let trace_path = repo_root().join("CHAOS_trace.jsonl");
        std::fs::write(&trace_path, sink.to_jsonl()).expect("write chaos trace");
        println!(
            "traced sysfs-busy: {:.4} GIPS, {:.1} J, {} cycle records ({} faulted), wrote {}",
            report.avg_gips,
            report.energy_j,
            sink.ring().len(),
            sink.metrics().total_faults(),
            trace_path.display()
        );
    }
}
