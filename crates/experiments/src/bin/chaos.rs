//! Chaos study — the hardened controller under the deterministic fault
//! injector, one row per fault class.
//!
//! For each fault class a seeded [`FaultPlan`] fires mid-run; the table
//! reports what the controller observed, how far it degraded, and how
//! fast it recovered, next to the clean-run baseline. The same matrix is
//! written as `CHAOS_faultmatrix.json` at the repository root (uploaded
//! as a CI artifact alongside the bench reports).
//!
//! Run: `cargo run --release -p asgov-experiments --bin chaos [-- --quick] [-- --trace]`
//!
//! With `--trace` the sysfs-busy scenario is re-run with the
//! observability sink installed, and the per-cycle JSONL trace is
//! written to `CHAOS_trace.jsonl` at the repository root (uploaded as a
//! CI artifact alongside the fault matrix).

use asgov_core::ControllerBuilder;
use asgov_governors::AdrenoTz;
use asgov_profiler::{measure_default, profile_app, ProfileOptions};
use asgov_soc::{
    event, Device, DeviceConfig, FaultInjector, FaultKind, FaultPlan, HealthReport, Policy,
    Workload as _,
};
use asgov_util::Json;
use asgov_workloads::{apps, BackgroundLoad};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// One row of the fault matrix: a named plan and its injection window.
fn fault_matrix(start: u64, end: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new()),
        (
            "sysfs-busy",
            FaultPlan::new().window_p(start, end, 0.8, FaultKind::SysfsBusy),
        ),
        (
            "governor-reset",
            FaultPlan::new().window(start, end, FaultKind::GovernorReset("interactive".into())),
        ),
        (
            "perf-dropout",
            FaultPlan::new().window(start, end, FaultKind::PerfDropout),
        ),
        (
            "perf-nan",
            FaultPlan::new().window(start, end, FaultKind::PerfNan),
        ),
        (
            "perf-spike",
            FaultPlan::new().window_p(start, end, 0.5, FaultKind::PerfSpike(40.0)),
        ),
        (
            "thermal-clamp",
            FaultPlan::new().window(start, end, FaultKind::ThermalClamp(4)),
        ),
        (
            "hotplug",
            FaultPlan::new().window(start, end, FaultKind::Hotplug(2.0)),
        ),
    ]
}

struct Row {
    fault: &'static str,
    energy_j: f64,
    avg_gips: f64,
    health: HealthReport,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let dev_cfg = DeviceConfig::nexus6();
    let duration_ms: u64 = if quick { 40_000 } else { 120_000 };
    // Faults fire in the middle third of the run: the controller has
    // settled before, and has time to recover after.
    let (f_start, f_end) = (duration_ms / 3, 2 * duration_ms / 3);
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: if quick { 5_000 } else { 10_000 },
        freq_stride: 2,
        interpolate: true,
    };

    let mut app = apps::wechat(BackgroundLoad::baseline(1));
    eprintln!("profiling...");
    let profile = profile_app(&dev_cfg, &mut app, &opts);
    let default = measure_default(&dev_cfg, &mut app, 1, duration_ms);

    println!("=== Chaos: hardened controller under injected faults ===\n");
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>8} {:>8} {:>9} {:>18} {:>9}",
        "Fault",
        "GIPS",
        "Energy J",
        "writes",
        "retries",
        "rejects",
        "degraded",
        "final level",
        "rec (cyc)"
    );

    let mut rows = Vec::new();
    for (name, plan) in fault_matrix(f_start, f_end) {
        let mut device = Device::new(dev_cfg.clone());
        device.install_faults(FaultInjector::new(plan, 0x5eed));
        let mut controller = ControllerBuilder::new(profile.clone())
            .target_gips(default.gips)
            .build();
        let mut gpu_gov = AdrenoTz::default();
        app.reset();
        let mut policies: [&mut dyn Policy; 2] = [&mut gpu_gov, &mut controller];
        let report = event::run(&mut device, &mut app, &mut policies, duration_ms);
        let health = report.health.expect("controller reports health");
        assert!(
            report.energy_j.is_finite() && report.avg_gips.is_finite(),
            "{name}: run must stay finite under faults"
        );
        let latency = health
            .recovery_latency_cycles
            .map_or_else(|| "-".into(), |c| c.to_string());
        println!(
            "{:<16} {:>9.4} {:>9.1} {:>7} {:>8} {:>8} {:>9} {:>18} {:>9}",
            name,
            report.avg_gips,
            report.energy_j,
            health.write_failures(),
            health.retries,
            health.perf_rejected,
            health.degradations,
            health.level.to_string(),
            latency,
        );
        rows.push(Row {
            fault: name,
            energy_j: report.energy_j,
            avg_gips: report.avg_gips,
            health,
        });
    }

    let clean_energy = rows[0].energy_j;
    println!(
        "\nbaseline (default governors): {:.4} GIPS, {:.1} J; clean controller run: {:.1} J",
        default.gips, default.energy_j, clean_energy
    );

    let mut doc = Json::object();
    doc.set("app", "WeChat");
    doc.set("quick", quick);
    doc.set("duration_ms", duration_ms as f64);
    doc.set("fault_window_ms", format!("{f_start}..{f_end}").as_str());
    doc.set("default_gips", default.gips);
    doc.set("default_energy_j", default.energy_j);
    let mut matrix = Vec::new();
    for r in &rows {
        let mut row = Json::object();
        row.set("fault", r.fault);
        row.set("energy_j", r.energy_j);
        row.set("avg_gips", r.avg_gips);
        row.set("health", r.health.to_json());
        matrix.push(row);
    }
    doc.set("matrix", Json::Arr(matrix));
    let path = repo_root().join("CHAOS_faultmatrix.json");
    std::fs::write(&path, doc.to_pretty()).expect("write fault-matrix report");
    println!("wrote {}", path.display());

    if trace {
        // Re-run the sysfs-busy scenario with the observability sink
        // installed and keep the per-cycle JSONL trace as an artifact.
        let plan = FaultPlan::new().window_p(f_start, f_end, 0.8, FaultKind::SysfsBusy);
        let (report, sink) = asgov_experiments::harness::traced_controller_run(
            &dev_cfg,
            &mut app,
            &profile,
            default.gips,
            duration_ms,
            4096,
            Some(FaultInjector::new(plan, 0x5eed)),
        );
        let sink = sink.borrow();
        let trace_path = repo_root().join("CHAOS_trace.jsonl");
        std::fs::write(&trace_path, sink.to_jsonl()).expect("write chaos trace");
        println!(
            "traced sysfs-busy: {:.4} GIPS, {:.1} J, {} cycle records ({} faulted), wrote {}",
            report.avg_gips,
            report.energy_j,
            sink.ring().len(),
            sink.metrics().total_faults(),
            trace_path.display()
        );
    }
}
