//! Table IV — controller performance and energy under baseline (BL),
//! no-load (NL) and heavier-load (HL) conditions, profiling done at BL.

use asgov_core::{ControllerBuilder, EnergyController};
use asgov_experiments::harness::ExperimentOptions;
use asgov_experiments::render::pct;
use asgov_profiler::{measure_default, measure_fixed, profile_app};
use asgov_soc::{DeviceConfig, Policy};
use asgov_workloads::{AppKind, BackgroundLoad, LoadLevel, PhasedApp};

fn apps_under(load: &BackgroundLoad) -> Vec<PhasedApp> {
    asgov_workloads::paper_apps(load.clone())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dev_cfg = DeviceConfig::nexus6();
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::default()
    };

    println!("=== Table IV: background-load sensitivity (profile taken at BL) ===\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
        "Application", "perf BL", "perf NL", "perf HL", "en BL", "en NL", "en HL"
    );

    // Profile & target once, under baseline load (the paper's setup).
    // The per-app rows are independent, so they fan out across workers
    // and print in app order once all are in.
    let bl_apps = apps_under(&BackgroundLoad::baseline(1));
    let rows = asgov_util::par::ordered_map(
        bl_apps.len(),
        asgov_util::par::default_threads(bl_apps.len()),
        |idx| {
            let mut bl_app = bl_apps[idx].clone();
            let duration = opts.duration_ms.unwrap_or(bl_app.spec().test_duration_ms);
            let deadline = matches!(bl_app.spec().kind, AppKind::Batch { .. });
            let profile = profile_app(&dev_cfg, &mut bl_app, &opts.profile);
            let target = measure_default(&dev_cfg, &mut bl_app, opts.runs, duration).gips;

            let mut perf = Vec::new();
            let mut energy = Vec::new();
            for level in [LoadLevel::Baseline, LoadLevel::None, LoadLevel::Heavy] {
                let load = BackgroundLoad::with_level(level, 1);
                let mut app = apps_under(&load).remove(idx);
                let default = measure_default(&dev_cfg, &mut app, opts.runs, duration);
                let profile2 = profile.clone();
                let controller = measure_fixed(&dev_cfg, &mut app, opts.runs, duration, || {
                    let c: EnergyController = ControllerBuilder::new(profile2.clone())
                        .target_gips(target)
                        .target_margin(if deadline { 0.0 } else { 0.01 })
                        .build();
                    vec![Box::new(c) as Box<dyn Policy>]
                });
                let p = if deadline {
                    (default.duration_ms - controller.duration_ms) / default.duration_ms * 100.0
                } else {
                    (controller.gips - default.gips) / default.gips * 100.0
                };
                perf.push(p);
                energy.push((default.energy_j - controller.energy_j) / default.energy_j * 100.0);
            }
            (bl_app.spec().name, perf, energy)
        },
    );
    for (name, perf, energy) in rows {
        println!(
            "{:<14} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
            name,
            pct(perf[0]),
            pct(perf[1]),
            pct(perf[2]),
            pct(energy[0]),
            pct(energy[1]),
            pct(energy[2]),
        );
    }
    // The paper's §V-C re-profiling follow-up: MobileBench re-profiled
    // for the NL case recovers to 11.1% savings with no perf loss.
    println!("\n-- §V-C follow-up: re-profiling for the runtime load --");
    {
        let nl = BackgroundLoad::with_level(LoadLevel::None, 1);
        let mut app = apps_under(&nl).remove(1); // MobileBench
        let duration = opts.duration_ms.unwrap_or(app.spec().test_duration_ms);
        let deadline = matches!(app.spec().kind, AppKind::Batch { .. });
        let profile = profile_app(&dev_cfg, &mut app, &opts.profile);
        let target = measure_default(&dev_cfg, &mut app, opts.runs, duration).gips;
        let default = measure_default(&dev_cfg, &mut app, opts.runs, duration);
        let controller = measure_fixed(&dev_cfg, &mut app, opts.runs, duration, || {
            let c: EnergyController = ControllerBuilder::new(profile.clone())
                .target_gips(target)
                .target_margin(if deadline { 0.0 } else { 0.01 })
                .build();
            vec![Box::new(c) as Box<dyn Policy>]
        });
        let p = if deadline {
            (default.duration_ms - controller.duration_ms) / default.duration_ms * 100.0
        } else {
            (controller.gips - default.gips) / default.gips * 100.0
        };
        let e = (default.energy_j - controller.energy_j) / default.energy_j * 100.0;
        println!(
            "MobileBench re-profiled at NL: perf {}, energy {}   (paper: 0%, 11.1%)",
            pct(p),
            pct(e)
        );
    }

    println!("\nPaper (perf BL/NL/HL, energy BL/NL/HL):");
    println!("VidCon +0.8/+0.2/-8.0, 25.3/28.0/11.4 | MobileBench +4.0/-3.5/-2.0, 15.3/-4.9/4.6");
    println!("AngryBirds +0.6/+1.0/-2.0, 14.9/12.8/10.0 | WeChat -0.4/+2.0/+3.6, 27.2/19.4/27.0");
    println!("MXPlayer 0/0/0, 5.0/2.9/5.0 | Spotify +9.3/-1.7/-1.3, 31.6/7.2/6.0");
}
