//! Fleet experiment — N simulated devices under supervised controllers
//! in pipelined sharded epochs (ROADMAP item 2, DESIGN.md §11–§12).
//!
//! Prints the aggregate energy-savings distributions per application
//! and per fault class, and writes `BENCH_fleet.json` at the repository
//! root with throughput figures (devices/sec, pool speedup over the
//! scoped-thread engine, peak RSS), keyed per tier so the 10³/10⁵/10⁶
//! rows accumulate across invocations.
//!
//! Run: `cargo run --release -p asgov-experiments --bin fleet --
//!       [--tier smoke|bench|bench-1m] [--devices N] [--shards N]
//!       [--epochs N] [--epoch-ms N] [--threads N] [--seed N]
//!       [--quantum-ms N]`
//!
//! `--smoke` / `--bench` / `--bench-1m` are shorthands for `--tier`.
//! Invalid input (zero devices or threads, malformed numbers, unknown
//! flags) is rejected with a diagnostic on stderr and exit code 2 —
//! never a panic.

use asgov_fleet::{Fleet, FleetConfig, PolicyStore};
use asgov_soc::DeviceConfig;
use asgov_util::par::{scoped_ordered_map, WorkerPool};
use asgov_util::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Parsed invocation: the run configuration plus the tier label its
/// benchmark row is filed under ("custom" when a preset was edited).
struct Invocation {
    cfg: FleetConfig,
    tier: String,
}

fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut tier = "smoke".to_string();
    let mut overrides: Vec<(String, u64)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--smoke" => tier = "smoke".into(),
            "--bench" => tier = "bench".into(),
            "--bench-1m" => tier = "bench-1m".into(),
            "--tier" => {
                let v = it.next().ok_or("--tier needs a value".to_string())?;
                match v.as_str() {
                    "smoke" | "bench" | "bench-1m" => tier = v.clone(),
                    other => {
                        return Err(format!(
                            "unknown tier {other:?} (expected smoke, bench or bench-1m)"
                        ))
                    }
                }
            }
            "--devices" | "--shards" | "--epochs" | "--epoch-ms" | "--seed" | "--threads"
            | "--quantum-ms" => {
                let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                let v: u64 = raw
                    .parse()
                    .map_err(|_| format!("{flag}: {raw:?} is not a non-negative integer"))?;
                if v == 0 && flag != "--seed" {
                    return Err(format!("{flag} must be at least 1"));
                }
                overrides.push((flag.to_string(), v));
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?} (see --help in the doc header)"
                ))
            }
        }
    }
    let mut cfg = match tier.as_str() {
        "bench" => FleetConfig::bench(),
        "bench-1m" => FleetConfig::bench_1m(),
        _ => FleetConfig::smoke(),
    };
    for (flag, v) in &overrides {
        match flag.as_str() {
            "--devices" => cfg.devices = *v,
            "--shards" => cfg.shards = *v,
            "--epochs" => cfg.epochs = *v,
            "--epoch-ms" => cfg.epoch_ms = *v,
            "--seed" => cfg.seed = *v,
            "--threads" => cfg.threads = *v as usize,
            "--quantum-ms" => cfg.demand_quantum_ms = *v,
            _ => {}
        }
    }
    // Benchmark rows stay comparable: any override that changes the
    // simulated workload files the run under "custom" instead of
    // overwriting a preset tier's row. Thread count does not change
    // results, so it keeps the tier label.
    if overrides.iter().any(|(f, _)| f != "--threads") {
        tier = "custom".into();
    }
    // Keep the partition sane if the user shrank the device count
    // below the preset shard count.
    cfg.shards = cfg.shards.min(cfg.devices).max(1);
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(Invocation { cfg, tier })
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), KiB.
/// `0` where the procfs field is unavailable.
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Micro-benchmark the persistent pool against the scoped-thread
/// engine it replaced: identical small fork-join batches through both,
/// ratio of wall-clocks (> 1 means the pool is faster).
fn pool_speedup_vs_scoped(threads: usize) -> f64 {
    let jobs = threads.max(1) * 4;
    let batches = 300usize;
    let work = |i: usize| -> u64 {
        let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for k in 0..2_000u64 {
            acc = acc
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .rotate_left(17)
                .wrapping_add(k);
        }
        acc
    };
    let mut pool = WorkerPool::new(threads);
    // Warm both paths once so thread spawn-up noise lands outside the
    // measured region for the pool (spawn cost is exactly what the
    // scoped engine pays per batch — that is the comparison).
    std::hint::black_box(pool.ordered_map(jobs, work));
    std::hint::black_box(scoped_ordered_map(jobs, threads, work));
    let t = Instant::now();
    for _ in 0..batches {
        std::hint::black_box(pool.ordered_map(jobs, work));
    }
    let pool_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..batches {
        std::hint::black_box(scoped_ordered_map(jobs, threads, work));
    }
    let scoped_secs = t.elapsed().as_secs_f64();
    scoped_secs / pool_secs.max(1e-12)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Invocation { cfg, tier } = match parse_args(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("fleet: {msg}");
            std::process::exit(2);
        }
    };
    println!(
        "=== Fleet [{tier}]: {} devices, {} shards, {} epochs x {} ms, quantum {} ms (seed {:#x}) ===\n",
        cfg.devices, cfg.shards, cfg.epochs, cfg.epoch_ms, cfg.demand_quantum_ms, cfg.seed
    );

    let dev_cfg = DeviceConfig::nexus6();
    let t_store = Instant::now();
    let store = PolicyStore::resolve(&cfg, &dev_cfg);
    let store_secs = t_store.elapsed().as_secs_f64();
    println!(
        "policy store: {} signatures resolved in {store_secs:.2} s",
        store.len()
    );

    let mut fleet = match Fleet::new(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };
    let t_run = Instant::now();
    let report = match fleet.run(&store) {
        Ok(r) => r.clone(),
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(1);
        }
    };
    let run_secs = t_run.elapsed().as_secs_f64();

    let device_epochs = report.totals.online + report.totals.offline;
    let devices_per_sec = device_epochs as f64 / run_secs.max(1e-9);
    let cycles_per_sec = report.controller_cycles() as f64 / run_secs.max(1e-9);
    let rss_kib = peak_rss_kib();
    let threads = if cfg.threads == 0 {
        asgov_util::par::default_threads(cfg.shards as usize)
    } else {
        cfg.threads
    };
    let speedup = pool_speedup_vs_scoped(threads);

    let s = &report.totals.savings;
    println!("\nenergy savings vs default governor, percent (mean ± std [min, max], n):");
    println!("\nper application:");
    for (idx, app) in asgov_fleet::spec::roster_names().into_iter().enumerate() {
        let st = asgov_fleet::app_stream(idx);
        print_stream(app, s, st, true);
    }
    println!("\nper fault class:");
    for class in asgov_fleet::FaultClass::all() {
        let st = asgov_fleet::fault_stream(class);
        print_stream(class.label(), s, st, false);
    }
    let t = &report.totals;
    println!(
        "\nsupervision: {} restarts ({} warm), {} warm migrations, {} snapshot errors, {} ms downtime",
        t.restarts, t.warm_restarts, t.warm_migrations, t.snapshot_errors, t.downtime_ms
    );
    println!(
        "\nthroughput: {devices_per_sec:.0} device-epochs/sec, {cycles_per_sec:.0} controller-cycles/sec, \
         pool speedup {speedup:.2}x vs scoped, peak RSS {:.1} MiB",
        rss_kib as f64 / 1024.0
    );

    let mut row = Json::object();
    row.set("devices", cfg.devices as f64);
    row.set("shards", cfg.shards as f64);
    row.set("epochs", cfg.epochs as f64);
    row.set("epoch_ms", cfg.epoch_ms as f64);
    row.set("seed", cfg.seed as f64);
    row.set("demand_quantum_ms", cfg.demand_quantum_ms as f64);
    row.set("threads", threads as f64);
    row.set("store_resolve_secs", store_secs);
    row.set("run_secs", run_secs);
    row.set("device_epochs", device_epochs as f64);
    row.set("devices_per_sec", devices_per_sec);
    row.set("controller_cycles_per_sec", cycles_per_sec);
    row.set("pool_speedup_vs_scoped", speedup);
    row.set("peak_rss_kib", rss_kib as f64);
    row.set("report", report.to_json());

    // Top level mirrors this run (back-compat for the regression gate,
    // which reads `devices_per_sec` of the smoke tier) and keys every
    // tier's latest row under "tiers" so the 10³/10⁵/10⁶ results
    // accumulate across invocations.
    let path = repo_root().join("BENCH_fleet.json");
    let mut tiers = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|old| old.get("tiers").cloned())
        .unwrap_or_else(Json::object);
    tiers.set(&tier, row.clone());

    let mut bench = Json::object();
    bench.set("tier", tier.as_str());
    for key in [
        "devices",
        "shards",
        "epochs",
        "epoch_ms",
        "seed",
        "demand_quantum_ms",
        "threads",
        "store_resolve_secs",
        "run_secs",
        "device_epochs",
        "devices_per_sec",
        "controller_cycles_per_sec",
        "pool_speedup_vs_scoped",
        "peak_rss_kib",
        "report",
    ] {
        if let Some(v) = row.get(key) {
            bench.set(key, v.clone());
        }
    }
    bench.set("tiers", tiers);

    match std::fs::write(&path, bench.to_pretty() + "\n") {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("fleet: writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// One savings stream as a human-readable row.
fn print_stream(label: &str, s: &asgov_obs::FleetStats, stream: usize, full: bool) {
    let n = s.included(stream);
    let degenerate = s.excluded(stream);
    let suffix = if degenerate > 0 {
        format!("  ({degenerate} degenerate excluded)")
    } else {
        String::new()
    };
    if full {
        println!(
            "  {label:<12} {:>6.1} ± {:>5.1}  [{:>6.1}, {:>6.1}]  n={n}{suffix}",
            s.mean(stream),
            s.std(stream),
            s.min(stream).unwrap_or(0.0),
            s.max(stream).unwrap_or(0.0),
        );
    } else {
        println!(
            "  {label:<18} {:>6.1} ± {:>5.1}  n={n}{suffix}",
            s.mean(stream),
            s.std(stream),
        );
    }
}
