//! Fleet experiment — N simulated devices under supervised controllers
//! in sharded epochs (ROADMAP item 2, DESIGN.md §11).
//!
//! Prints the aggregate energy-savings distributions per application
//! and per fault class, and writes `BENCH_fleet.json` at the repository
//! root with throughput figures (devices/sec, controller-cycles/sec,
//! peak RSS).
//!
//! Run: `cargo run --release -p asgov-experiments --bin fleet -- [--smoke | --bench]
//!       [--devices N] [--shards N] [--epochs N] [--epoch-ms N] [--threads N] [--seed N]`
//!
//! `--smoke` (default) runs 10³ devices; `--bench` runs 10⁵.

use asgov_fleet::{Fleet, FleetConfig, PolicyStore};
use asgov_soc::DeviceConfig;
use asgov_util::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn parse_args() -> FleetConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--bench") {
        FleetConfig::bench()
    } else {
        FleetConfig::smoke()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |field: &mut u64| {
            if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                *field = v;
            }
        };
        match a.as_str() {
            "--devices" => num(&mut cfg.devices),
            "--shards" => num(&mut cfg.shards),
            "--epochs" => num(&mut cfg.epochs),
            "--epoch-ms" => num(&mut cfg.epoch_ms),
            "--seed" => num(&mut cfg.seed),
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.threads = v;
                }
            }
            _ => {}
        }
    }
    // Keep the partition sane if the user shrank the device count
    // below the preset shard count.
    cfg.shards = cfg.shards.min(cfg.devices).max(1);
    cfg
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), KiB.
/// `0` where the procfs field is unavailable.
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let cfg = parse_args();
    if let Err(e) = cfg.validate() {
        eprintln!("fleet: {e}");
        std::process::exit(2);
    }
    println!(
        "=== Fleet: {} devices, {} shards, {} epochs x {} ms (seed {:#x}) ===\n",
        cfg.devices, cfg.shards, cfg.epochs, cfg.epoch_ms, cfg.seed
    );

    let dev_cfg = DeviceConfig::nexus6();
    let t_store = Instant::now();
    let store = PolicyStore::resolve(&cfg, &dev_cfg);
    let store_secs = t_store.elapsed().as_secs_f64();
    println!(
        "policy store: {} signatures resolved in {store_secs:.2} s",
        store.len()
    );

    let mut fleet = match Fleet::new(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(2);
        }
    };
    let t_run = Instant::now();
    let report = match fleet.run(&store) {
        Ok(r) => r.clone(),
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(1);
        }
    };
    let run_secs = t_run.elapsed().as_secs_f64();

    let device_epochs = report.totals.online + report.totals.offline;
    let devices_per_sec = device_epochs as f64 / run_secs.max(1e-9);
    let cycles_per_sec = report.controller_cycles() as f64 / run_secs.max(1e-9);
    let rss_kib = peak_rss_kib();

    println!("\nenergy savings vs default governor, percent (mean ± std [min, max], n):");
    println!("\nper application:");
    for (app, s) in &report.totals.per_app {
        println!(
            "  {app:<12} {:>6.1} ± {:>5.1}  [{:>6.1}, {:>6.1}]  n={}{}",
            s.mean(),
            s.std(),
            if s.count == 0 { 0.0 } else { s.min },
            if s.count == 0 { 0.0 } else { s.max },
            s.count,
            if s.degenerate > 0 {
                format!("  ({} degenerate excluded)", s.degenerate)
            } else {
                String::new()
            }
        );
    }
    println!("\nper fault class:");
    for (class, s) in &report.totals.per_fault {
        println!(
            "  {class:<18} {:>6.1} ± {:>5.1}  n={}",
            s.mean(),
            s.std(),
            s.count
        );
    }
    let t = &report.totals;
    println!(
        "\nsupervision: {} restarts ({} warm), {} warm migrations, {} snapshot errors, {} ms downtime",
        t.restarts, t.warm_restarts, t.warm_migrations, t.snapshot_errors, t.downtime_ms
    );
    println!(
        "\nthroughput: {devices_per_sec:.0} device-epochs/sec, {cycles_per_sec:.0} controller-cycles/sec, peak RSS {:.1} MiB",
        rss_kib as f64 / 1024.0
    );

    let mut bench = Json::object();
    bench.set("devices", cfg.devices as f64);
    bench.set("shards", cfg.shards as f64);
    bench.set("epochs", cfg.epochs as f64);
    bench.set("epoch_ms", cfg.epoch_ms as f64);
    bench.set("seed", cfg.seed as f64);
    bench.set("store_resolve_secs", store_secs);
    bench.set("run_secs", run_secs);
    bench.set("device_epochs", device_epochs as f64);
    bench.set("devices_per_sec", devices_per_sec);
    bench.set("controller_cycles_per_sec", cycles_per_sec);
    bench.set("peak_rss_kib", rss_kib as f64);
    bench.set("report", report.to_json());

    let path = repo_root().join("BENCH_fleet.json");
    match std::fs::write(&path, bench.to_pretty() + "\n") {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("fleet: writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
