//! Diagnostic dump for one application (development aid).

use asgov_core::ControllerBuilder;
use asgov_experiments::render;
use asgov_profiler::{measure_default, profile_app, ProfileOptions};
use asgov_soc::{event, Device, DeviceConfig, Workload as _};
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "AngryBirds".into());
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = match name.as_str() {
        "VidCon" => apps::vidcon(BackgroundLoad::baseline(1)),
        "MobileBench" => apps::mobilebench(BackgroundLoad::baseline(1)),
        "WeChat" => apps::wechat(BackgroundLoad::baseline(1)),
        "MXPlayer" => apps::mxplayer(BackgroundLoad::baseline(1)),
        "Spotify" => apps::spotify(BackgroundLoad::baseline(1)),
        "eBook" => apps::ebook(BackgroundLoad::baseline(1)),
        _ => apps::angrybirds(BackgroundLoad::baseline(1)),
    };
    let opts = ProfileOptions {
        runs_per_config: 1,
        run_ms: 30_000,
        freq_stride: 2,
        interpolate: true,
    };
    let profile = profile_app(&dev_cfg, &mut app, &opts);
    println!("{}", profile.render(&dev_cfg.table));

    let duration = 120_000;
    let default = measure_default(&dev_cfg, &mut app, 1, duration);
    println!(
        "DEFAULT: gips={:.4} power={:.3} W energy={:.1} J dur={:.0} ms",
        default.gips, default.power_w, default.energy_j, default.duration_ms
    );
    println!(
        "{}",
        render::histogram(
            "default freq histogram",
            &default.reports[0].stats.freq_histogram(),
            "f"
        )
    );
    println!(
        "{}",
        render::histogram(
            "default bw histogram",
            &default.reports[0].stats.bw_histogram(),
            "bw"
        )
    );

    let mut controller = ControllerBuilder::new(profile.clone())
        .target_gips(default.gips)
        .keep_log(true)
        .build();
    let mut device = Device::new(dev_cfg.clone());
    app.reset();
    let report = event::run(&mut device, &mut app, &mut [&mut controller], duration);
    println!(
        "CONTROLLER: gips={:.4} power={:.3} W energy={:.1} J dur={} ms",
        report.avg_gips, report.avg_power_w, report.energy_j, report.duration_ms
    );
    println!(
        "{}",
        render::histogram(
            "controller freq histogram",
            &report.stats.freq_histogram(),
            "f"
        )
    );
    println!(
        "{}",
        render::histogram(
            "controller bw histogram",
            &report.stats.bw_histogram(),
            "bw"
        )
    );
    println!(
        "savings: {:.1}%  perf delta: {:.2}%",
        (default.energy_j - report.energy_j) / default.energy_j * 100.0,
        (report.avg_gips - default.gips) / default.gips * 100.0
    );
    println!("\nCYCLE LOG (target {:.4}):", controller.target_gips());
    for c in controller.cycle_log() {
        println!(
            "t={:>6} y={:.4} b={:.4} s={:.3} c_l=({},{}) c_h=({},{}) tau_l={:.2}",
            c.t_ms,
            c.measured_gips,
            c.base_estimate,
            c.required_speedup,
            c.lower.freq,
            c.lower.bw,
            c.upper.freq,
            c.upper.bw,
            c.tau_lower_s
        );
    }
}
