//! Fig. 3 — the two-configuration optimization, worked example.

use asgov_core::EnergyOptimizer;
use asgov_profiler::{profile_app, ProfileOptions};
use asgov_soc::DeviceConfig;
use asgov_workloads::{apps, BackgroundLoad};

fn main() {
    let dev_cfg = DeviceConfig::nexus6();
    let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
    let table = profile_app(&dev_cfg, &mut app, &ProfileOptions::default());
    let opt = EnergyOptimizer::new(&table);
    println!("=== Fig. 3: energy optimizer selecting c_l and c_h ===\n");
    println!(
        "profile: N = {} configurations, speedups {:.2}..{:.2}\n",
        opt.len(),
        opt.min_speedup(),
        opt.max_speedup()
    );
    for frac in [0.2, 0.4, 0.6, 0.8] {
        let s = opt.min_speedup() + frac * (opt.max_speedup() - opt.min_speedup());
        let plan = opt.solve(s, 2.0).expect("finite target");
        println!(
            "target speedup {s:.3}: c_l = ({}, {}) for {:.2}s, c_h = ({}, {}) for {:.2}s, energy {:.3} J",
            plan.lower.freq, plan.lower.bw, plan.tau_lower,
            plan.upper.freq, plan.upper.bw, plan.tau_upper,
            plan.energy_j,
        );
    }
    println!(
        "\nAt most two configurations are ever selected, bracketing the target (paper Fig. 3)."
    );
}
