//! Minimal hand-rolled argument parsing (the workspace deliberately
//! carries no CLI dependency).

use std::fmt;

/// CLI usage text.
pub const USAGE: &str = "\
asgov — application-specific performance-aware energy optimization

USAGE:
  asgov list-apps
  asgov profile  --app <NAME> [--out <FILE>] [--stride <N>] [--runs <N>]
                 [--window-s <N>] [--load BL|NL|HL] [--cpu-only | --gpu]
  asgov baseline --app <NAME> [--duration-s <N>] [--load BL|NL|HL]
  asgov control  --app <NAME> --profile <FILE> [--target <GIPS>]
                 [--duration-s <N>] [--load BL|NL|HL] [--cpu-only]
  asgov compare  --app <NAME> [--duration-s <N>] [--load BL|NL|HL] [--quick]
  asgov trace    --app <NAME> [--profile <FILE>] [--target <GIPS>]
                 [--duration-s <N>] [--load BL|NL|HL] [--out <FILE>]
                 [--capacity <N>]
  asgov stats    --trace <FILE>

COMMANDS:
  list-apps   List the built-in application models
  profile     Offline-profile an application (paper Stage 1); writes a
              TSV table to --out (default: <app>.profile.tsv)
  baseline    Measure the default-governor run (R_def, P_def, E_def)
  control     Run the online controller from a saved profile (Stage 2)
  compare     Profile + baseline + controller, print the Table III row
  trace       Run the controller with the observability sink attached;
              writes per-cycle JSONL to --out (default: <app>.trace.jsonl)
              and prints the metrics summary
  stats       Aggregate a JSONL trace file: cycle counts, error and
              latency statistics, fault and degradation tallies";

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `asgov list-apps`
    ListApps,
    /// `asgov profile`
    Profile {
        app: String,
        out: Option<String>,
        stride: usize,
        runs: usize,
        window_s: u64,
        load: String,
        cpu_only: bool,
        gpu: bool,
    },
    /// `asgov baseline`
    Baseline {
        app: String,
        duration_s: u64,
        load: String,
    },
    /// `asgov control`
    Control {
        app: String,
        profile: String,
        target: Option<f64>,
        duration_s: u64,
        load: String,
        cpu_only: bool,
    },
    /// `asgov compare`
    Compare {
        app: String,
        duration_s: u64,
        load: String,
        quick: bool,
    },
    /// `asgov trace`
    Trace {
        app: String,
        profile: Option<String>,
        target: Option<f64>,
        duration_s: u64,
        load: String,
        out: Option<String>,
        capacity: usize,
    },
    /// `asgov stats`
    Stats { trace: String },
}

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

struct Flags<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self {
            used: vec![false; argv.len()],
            argv,
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, ParseError> {
        for i in 0..self.argv.len() {
            if self.argv[i] == name {
                self.used[i] = true;
                let v = self
                    .argv
                    .get(i + 1)
                    .ok_or_else(|| err(format!("{name} needs a value")))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.argv.len() {
            if self.argv[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn finish(self) -> Result<(), ParseError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(err(format!("unrecognized argument {:?}", self.argv[i])));
            }
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| err(format!("{name}: cannot parse {v:?}")))
}

fn parse_load(v: Option<&str>) -> Result<String, ParseError> {
    let v = v.unwrap_or("BL").to_uppercase();
    match v.as_str() {
        "BL" | "NL" | "HL" => Ok(v),
        other => Err(err(format!("--load must be BL, NL or HL, got {other:?}"))),
    }
}

/// Parse an argv (without the binary name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ParseError`] on unknown subcommands, missing required
/// flags, unparsable values or stray arguments.
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return Err(err("missing subcommand"));
    };
    let rest = &argv[1..];
    let mut f = Flags::new(rest);
    let cmd = match sub.as_str() {
        "list-apps" => Command::ListApps,
        "profile" => {
            let app = f.value("--app")?.ok_or_else(|| err("--app is required"))?;
            let out = f.value("--out")?.map(str::to_string);
            let stride = match f.value("--stride")? {
                Some(v) => parse_num("--stride", v)?,
                None => 2,
            };
            let runs = match f.value("--runs")? {
                Some(v) => parse_num("--runs", v)?,
                None => 3,
            };
            let window_s = match f.value("--window-s")? {
                Some(v) => parse_num("--window-s", v)?,
                None => 30,
            };
            let load = parse_load(f.value("--load")?)?;
            let cpu_only = f.flag("--cpu-only");
            let gpu = f.flag("--gpu");
            if cpu_only && gpu {
                return Err(err("--cpu-only and --gpu are mutually exclusive"));
            }
            Command::Profile {
                app: app.to_string(),
                out,
                stride,
                runs,
                window_s,
                load,
                cpu_only,
                gpu,
            }
        }
        "baseline" => Command::Baseline {
            app: f
                .value("--app")?
                .ok_or_else(|| err("--app is required"))?
                .to_string(),
            duration_s: match f.value("--duration-s")? {
                Some(v) => parse_num("--duration-s", v)?,
                None => 60,
            },
            load: parse_load(f.value("--load")?)?,
        },
        "control" => Command::Control {
            app: f
                .value("--app")?
                .ok_or_else(|| err("--app is required"))?
                .to_string(),
            profile: f
                .value("--profile")?
                .ok_or_else(|| err("--profile is required"))?
                .to_string(),
            target: match f.value("--target")? {
                Some(v) => Some(parse_num("--target", v)?),
                None => None,
            },
            duration_s: match f.value("--duration-s")? {
                Some(v) => parse_num("--duration-s", v)?,
                None => 60,
            },
            load: parse_load(f.value("--load")?)?,
            cpu_only: f.flag("--cpu-only"),
        },
        "compare" => Command::Compare {
            app: f
                .value("--app")?
                .ok_or_else(|| err("--app is required"))?
                .to_string(),
            duration_s: match f.value("--duration-s")? {
                Some(v) => parse_num("--duration-s", v)?,
                None => 60,
            },
            load: parse_load(f.value("--load")?)?,
            quick: f.flag("--quick"),
        },
        "trace" => Command::Trace {
            app: f
                .value("--app")?
                .ok_or_else(|| err("--app is required"))?
                .to_string(),
            profile: f.value("--profile")?.map(str::to_string),
            target: match f.value("--target")? {
                Some(v) => Some(parse_num("--target", v)?),
                None => None,
            },
            duration_s: match f.value("--duration-s")? {
                Some(v) => parse_num("--duration-s", v)?,
                None => 60,
            },
            load: parse_load(f.value("--load")?)?,
            out: f.value("--out")?.map(str::to_string),
            capacity: match f.value("--capacity")? {
                Some(v) => parse_num("--capacity", v)?,
                None => 4096,
            },
        },
        "stats" => Command::Stats {
            trace: f
                .value("--trace")?
                .ok_or_else(|| err("--trace is required"))?
                .to_string(),
        },
        other => return Err(err(format!("unknown subcommand {other:?}"))),
    };
    f.finish()?;
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_list_apps() {
        assert_eq!(parse(&v(&["list-apps"])).unwrap(), Command::ListApps);
    }

    #[test]
    fn parses_profile_with_defaults() {
        let cmd = parse(&v(&["profile", "--app", "AngryBirds"])).unwrap();
        match cmd {
            Command::Profile {
                app,
                stride,
                runs,
                window_s,
                load,
                cpu_only,
                gpu,
                out,
            } => {
                assert_eq!(app, "AngryBirds");
                assert_eq!((stride, runs, window_s), (2, 3, 30));
                assert_eq!(load, "BL");
                assert!(!cpu_only && !gpu);
                assert!(out.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_conflicting_axes() {
        let e = parse(&v(&["profile", "--app", "X", "--cpu-only", "--gpu"])).unwrap_err();
        assert!(e.0.contains("mutually exclusive"));
    }

    #[test]
    fn rejects_unknown_flag() {
        let e = parse(&v(&["baseline", "--app", "X", "--frobnicate"])).unwrap_err();
        assert!(e.0.contains("unrecognized"));
    }

    #[test]
    fn rejects_bad_load() {
        let e = parse(&v(&["baseline", "--app", "X", "--load", "XXL"])).unwrap_err();
        assert!(e.0.contains("--load"));
    }

    #[test]
    fn parses_control() {
        let cmd = parse(&v(&[
            "control",
            "--app",
            "Spotify",
            "--profile",
            "p.tsv",
            "--target",
            "0.12",
            "--cpu-only",
        ]))
        .unwrap();
        match cmd {
            Command::Control {
                app,
                profile,
                target,
                cpu_only,
                ..
            } => {
                assert_eq!(app, "Spotify");
                assert_eq!(profile, "p.tsv");
                assert_eq!(target, Some(0.12));
                assert!(cpu_only);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(parse(&v(&["control", "--app", "X"])).is_err());
        assert!(parse(&v(&["profile"])).is_err());
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["trace"])).is_err());
        assert!(parse(&v(&["stats"])).is_err());
    }

    #[test]
    fn parses_trace_with_defaults() {
        let cmd = parse(&v(&["trace", "--app", "VidCon"])).unwrap();
        match cmd {
            Command::Trace {
                app,
                profile,
                target,
                duration_s,
                load,
                out,
                capacity,
            } => {
                assert_eq!(app, "VidCon");
                assert!(profile.is_none() && target.is_none() && out.is_none());
                assert_eq!((duration_s, capacity), (60, 4096));
                assert_eq!(load, "BL");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_stats() {
        let cmd = parse(&v(&["stats", "--trace", "run.jsonl"])).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                trace: "run.jsonl".into()
            }
        );
    }
}
