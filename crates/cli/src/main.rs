//! `asgov` — command-line interface to the energy-optimization toolkit.
//!
//! ```text
//! asgov list-apps
//! asgov profile  --app AngryBirds [--out profile.tsv] [--stride 2] [--runs 3] [--cpu-only | --gpu]
//! asgov baseline --app AngryBirds [--duration-s 60]
//! asgov control  --app AngryBirds --profile profile.tsv [--target GIPS] [--duration-s 60] [--cpu-only]
//! asgov compare  --app AngryBirds [--duration-s 60] [--load BL|NL|HL]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
