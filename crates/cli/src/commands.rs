//! Command implementations.

use crate::args::Command;
use asgov_core::{ControlMode, ControllerBuilder};
use asgov_governors::{AdrenoTz, CpubwHwmon};
use asgov_obs::{parse_jsonl, RingSink, TraceSink as _};
use asgov_profiler::{
    measure_default, profile_app, profile_app_cpu_only, profile_app_with_gpu, ProfileOptions,
    ProfileTable,
};
use asgov_soc::{event, Device, DeviceConfig, Policy, Workload as _};
use asgov_workloads::{apps, BackgroundLoad, LoadLevel, PhasedApp};
use std::cell::RefCell;
use std::error::Error;
use std::rc::Rc;

type Result<T> = std::result::Result<T, Box<dyn Error>>;

const APP_NAMES: [&str; 7] = [
    "VidCon",
    "MobileBench",
    "AngryBirds",
    "WeChat",
    "MXPlayer",
    "Spotify",
    "eBook",
];

fn load_level(label: &str) -> LoadLevel {
    match label {
        "NL" => LoadLevel::None,
        "HL" => LoadLevel::Heavy,
        _ => LoadLevel::Baseline,
    }
}

fn make_app(name: &str, load: &str) -> Result<PhasedApp> {
    let bg = BackgroundLoad::with_level(load_level(load), 1);
    let app = match name {
        "VidCon" => apps::vidcon(bg),
        "MobileBench" => apps::mobilebench(bg),
        "AngryBirds" => apps::angrybirds(bg),
        "WeChat" => apps::wechat(bg),
        "MXPlayer" => apps::mxplayer(bg),
        "Spotify" => apps::spotify(bg),
        "eBook" => apps::ebook(bg),
        other => {
            return Err(format!("unknown application {other:?}; see `asgov list-apps`").into())
        }
    };
    Ok(app)
}

/// Execute a parsed command.
///
/// # Errors
///
/// I/O failures, unknown applications, or malformed profile files.
pub fn run(cmd: Command) -> Result<()> {
    match cmd {
        Command::ListApps => {
            println!("built-in application models (see asgov-workloads):");
            for name in APP_NAMES {
                println!("  {name}");
            }
            Ok(())
        }
        Command::Profile {
            app,
            out,
            stride,
            runs,
            window_s,
            load,
            cpu_only,
            gpu,
        } => {
            let dev_cfg = DeviceConfig::nexus6();
            let mut a = make_app(&app, &load)?;
            let opts = ProfileOptions {
                runs_per_config: runs,
                run_ms: window_s * 1000,
                freq_stride: stride,
                interpolate: true,
            };
            eprintln!("profiling {app} under {load} load...");
            let table = if cpu_only {
                profile_app_cpu_only(&dev_cfg, &mut a, &opts)
            } else if gpu {
                profile_app_with_gpu(&dev_cfg, &mut a, &opts)
            } else {
                profile_app(&dev_cfg, &mut a, &opts)
            };
            println!("{}", table.render(&dev_cfg.table));
            let path = out.unwrap_or_else(|| format!("{app}.profile.tsv"));
            std::fs::write(&path, table.to_tsv())?;
            eprintln!("wrote {} configurations to {path}", table.len());
            Ok(())
        }
        Command::Baseline {
            app,
            duration_s,
            load,
        } => {
            let dev_cfg = DeviceConfig::nexus6();
            let mut a = make_app(&app, &load)?;
            let m = measure_default(&dev_cfg, &mut a, 3, duration_s * 1000);
            println!("{app} under interactive + cpubw_hwmon + msm-adreno-tz ({load}):");
            println!("  R_def = {:.4} GIPS", m.gips);
            println!("  P_def = {:.3} W", m.power_w);
            println!("  T_def = {:.1} s", m.duration_ms / 1000.0);
            println!("  E_def = {:.1} J", m.energy_j);
            Ok(())
        }
        Command::Control {
            app,
            profile,
            target,
            duration_s,
            load,
            cpu_only,
        } => {
            let dev_cfg = DeviceConfig::nexus6();
            let mut a = make_app(&app, &load)?;
            let text = std::fs::read_to_string(&profile)?;
            let table = ProfileTable::from_tsv(&text)?;
            if table.app != app {
                eprintln!(
                    "warning: profile is for {:?}, controlling {app:?}",
                    table.app
                );
            }
            let target = match target {
                Some(t) => t,
                None => {
                    eprintln!("no --target; measuring the default-governor baseline...");
                    measure_default(&dev_cfg, &mut a, 1, duration_s * 1000).gips
                }
            };

            let mode = if cpu_only {
                ControlMode::CpuOnly
            } else {
                ControlMode::Coordinated
            };
            let mut controller = ControllerBuilder::new(table)
                .target_gips(target)
                .mode(mode)
                .keep_log(true)
                .build();
            let mut bw = CpubwHwmon::default();
            let mut gpu_gov = AdrenoTz::default();
            let mut device = Device::new(dev_cfg);
            a.reset();
            let mut policies: Vec<&mut dyn Policy> = Vec::new();
            if cpu_only {
                policies.push(&mut bw);
            }
            policies.push(&mut gpu_gov);
            policies.push(&mut controller);
            let report = event::run(&mut device, &mut a, &mut policies, duration_s * 1000);

            println!("{app} under the asgov controller (target {target:.4} GIPS, {load}):");
            println!("  achieved = {:.4} GIPS", report.avg_gips);
            println!("  power    = {:.3} W", report.avg_power_w);
            println!(
                "  energy   = {:.1} J over {:.1} s",
                report.energy_j,
                report.duration_s()
            );
            println!(
                "  base-speed estimate = {:.4} GIPS, {} control cycles, {} actuation failures",
                controller.base_estimate(),
                controller.cycle_log().len(),
                controller.actuation_failures()
            );
            if let Some(health) = report.health {
                println!("  health   = {}", health.summary());
            }
            let faults: Vec<_> = controller
                .cycle_log()
                .iter()
                .filter_map(|c| c.actuation_fault.map(|k| (c.t_ms, k)))
                .collect();
            if !faults.is_empty() {
                println!("  actuation faults by cycle:");
                for (t_ms, kind) in faults {
                    println!("    t={:.1} s: {kind}", t_ms as f64 * 1e-3);
                }
            }
            Ok(())
        }
        Command::Compare {
            app,
            duration_s,
            load,
            quick,
        } => {
            let dev_cfg = DeviceConfig::nexus6();
            let mut a = make_app(&app, &load)?;
            let opts = if quick {
                ProfileOptions {
                    runs_per_config: 1,
                    run_ms: 6_000,
                    freq_stride: 2,
                    interpolate: true,
                }
            } else {
                ProfileOptions::default()
            };
            let runs = if quick { 1 } else { 3 };
            eprintln!("profiling {app}...");
            let table = profile_app(&dev_cfg, &mut a, &opts);
            eprintln!("measuring the default governors...");
            let default = measure_default(&dev_cfg, &mut a, runs, duration_s * 1000);

            let mut controller = ControllerBuilder::new(table)
                .target_gips(default.gips)
                .build();
            let mut gpu_gov = AdrenoTz::default();
            let mut device = Device::new(dev_cfg);
            a.reset();
            eprintln!("running the controller...");
            let report = event::run(
                &mut device,
                &mut a,
                &mut [&mut gpu_gov, &mut controller],
                duration_s * 1000,
            );

            let savings = (default.energy_j - report.energy_j) / default.energy_j * 100.0;
            let perf = (report.avg_gips - default.gips) / default.gips * 100.0;
            println!("{app} ({load}, {duration_s} s):");
            println!(
                "  default:    {:.4} GIPS  {:.3} W  {:.1} J",
                default.gips, default.power_w, default.energy_j
            );
            println!(
                "  controller: {:.4} GIPS  {:.3} W  {:.1} J",
                report.avg_gips, report.avg_power_w, report.energy_j
            );
            println!("  => {savings:+.1}% energy at {perf:+.1}% performance");
            if let Some(health) = report.health {
                if !health.is_clean() {
                    println!("  health:     {}", health.summary());
                }
            }
            Ok(())
        }
        Command::Trace {
            app,
            profile,
            target,
            duration_s,
            load,
            out,
            capacity,
        } => {
            let dev_cfg = DeviceConfig::nexus6();
            let mut a = make_app(&app, &load)?;
            let table = match profile {
                Some(path) => {
                    let text = std::fs::read_to_string(&path)?;
                    ProfileTable::from_tsv(&text)?
                }
                None => {
                    eprintln!("no --profile; quick-profiling {app}...");
                    let opts = ProfileOptions {
                        runs_per_config: 1,
                        run_ms: 6_000,
                        freq_stride: 2,
                        interpolate: true,
                    };
                    profile_app(&dev_cfg, &mut a, &opts)
                }
            };
            let target = match target {
                Some(t) => t,
                None => {
                    eprintln!("no --target; measuring the default-governor baseline...");
                    measure_default(&dev_cfg, &mut a, 1, duration_s * 1000).gips
                }
            };

            let mut controller = ControllerBuilder::new(table).target_gips(target).build();
            let mut gpu_gov = AdrenoTz::default();
            let mut device = Device::new(dev_cfg);
            let sink = Rc::new(RefCell::new(RingSink::new(capacity)));
            device.install_obs_sink(sink.clone());
            a.reset();
            let report = event::run(
                &mut device,
                &mut a,
                &mut [&mut gpu_gov, &mut controller],
                duration_s * 1000,
            );

            let sink = sink.borrow();
            let path = out.unwrap_or_else(|| format!("{app}.trace.jsonl"));
            std::fs::write(&path, sink.to_jsonl())?;
            println!("{app} traced run (target {target:.4} GIPS, {load}):");
            println!(
                "  achieved = {:.4} GIPS, {:.3} W, {:.1} J over {:.1} s",
                report.avg_gips,
                report.avg_power_w,
                report.energy_j,
                report.duration_s()
            );
            println!(
                "  wrote {} cycle records to {path} ({} dropped by the ring)",
                sink.ring().len(),
                sink.ring().dropped()
            );
            println!("{}", sink.metrics().to_json().to_pretty());
            Ok(())
        }
        Command::Stats { trace } => {
            let text = std::fs::read_to_string(&trace)?;
            let records = parse_jsonl(&text)?;
            if records.is_empty() {
                println!("{trace}: no records");
                return Ok(());
            }
            // Replay the stream through a sink to rebuild the aggregates.
            let mut sink = RingSink::new(records.len());
            for rec in &records {
                sink.record_cycle(rec);
            }
            let span_ms = records.last().map_or(0, |r| r.t_ms) - records[0].t_ms;
            // Non-finite errors (serialized as JSON null, decoded as
            // NaN) would poison the aggregates; count them separately.
            let finite_errs: Vec<f64> = records
                .iter()
                .map(|r| r.error.abs())
                .filter(|e| e.is_finite())
                .collect();
            let non_finite = records.len() - finite_errs.len();
            let mean_abs_err = if finite_errs.is_empty() {
                0.0
            } else {
                finite_errs.iter().sum::<f64>() / finite_errs.len() as f64
            };
            let max_abs_err = finite_errs.iter().copied().fold(0.0, f64::max);
            let split_cycles = records.iter().filter(|r| r.tau_upper_ms > 0).count();
            println!(
                "{trace}: {} records spanning {:.1} s",
                records.len(),
                span_ms as f64 * 1e-3
            );
            println!("  |error|: mean {mean_abs_err:.4} GIPS, max {max_abs_err:.4} GIPS");
            if non_finite > 0 {
                println!("  {non_finite} record(s) with non-finite error excluded");
            }
            println!(
                "  dwell splits: {split_cycles}/{} cycles used two configurations",
                records.len()
            );
            println!("{}", sink.metrics().to_json().to_pretty());
            Ok(())
        }
    }
}
