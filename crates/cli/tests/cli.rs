//! End-to-end CLI tests: drive the parsed commands through the real
//! pipeline with a temp directory for the profile artifacts.

use std::process::Command;

fn asgov() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asgov"))
}

#[test]
fn list_apps_names_all_models() {
    let out = asgov().arg("list-apps").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for app in [
        "VidCon",
        "MobileBench",
        "AngryBirds",
        "WeChat",
        "MXPlayer",
        "Spotify",
        "eBook",
    ] {
        assert!(text.contains(app), "missing {app} in:\n{text}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = asgov().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_app_fails_cleanly() {
    let out = asgov()
        .args(["baseline", "--app", "DoesNotExist", "--duration-s", "1"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown application"));
}

#[test]
fn profile_then_control_round_trip() {
    let dir = std::env::temp_dir().join("asgov_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profile_path = dir.join("spotify.tsv");

    let out = asgov()
        .args([
            "profile",
            "--app",
            "Spotify",
            "--runs",
            "1",
            "--window-s",
            "4",
            "--stride",
            "4",
            "--out",
            profile_path.to_str().unwrap(),
        ])
        .output()
        .expect("run profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(profile_path.exists());

    let out = asgov()
        .args([
            "control",
            "--app",
            "Spotify",
            "--profile",
            profile_path.to_str().unwrap(),
            "--target",
            "0.11",
            "--duration-s",
            "10",
        ])
        .output()
        .expect("run control");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("achieved"));
    assert!(text.contains("0 actuation failures"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_reports_the_four_quantities() {
    let out = asgov()
        .args(["baseline", "--app", "Spotify", "--duration-s", "5"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for q in ["R_def", "P_def", "T_def", "E_def"] {
        assert!(text.contains(q), "missing {q}");
    }
}
