//! End-to-end CLI tests: drive the parsed commands through the real
//! pipeline with a temp directory for the profile artifacts.

use std::process::Command;

fn asgov() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asgov"))
}

#[test]
fn list_apps_names_all_models() {
    let out = asgov().arg("list-apps").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for app in [
        "VidCon",
        "MobileBench",
        "AngryBirds",
        "WeChat",
        "MXPlayer",
        "Spotify",
        "eBook",
    ] {
        assert!(text.contains(app), "missing {app} in:\n{text}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = asgov().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_app_fails_cleanly() {
    let out = asgov()
        .args(["baseline", "--app", "DoesNotExist", "--duration-s", "1"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown application"));
}

#[test]
fn profile_then_control_round_trip() {
    let dir = std::env::temp_dir().join("asgov_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profile_path = dir.join("spotify.tsv");

    let out = asgov()
        .args([
            "profile",
            "--app",
            "Spotify",
            "--runs",
            "1",
            "--window-s",
            "4",
            "--stride",
            "4",
            "--out",
            profile_path.to_str().unwrap(),
        ])
        .output()
        .expect("run profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(profile_path.exists());

    let out = asgov()
        .args([
            "control",
            "--app",
            "Spotify",
            "--profile",
            profile_path.to_str().unwrap(),
            "--target",
            "0.11",
            "--duration-s",
            "10",
        ])
        .output()
        .expect("run control");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("achieved"));
    assert!(text.contains("0 actuation failures"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_then_stats_round_trip() {
    let dir = std::env::temp_dir().join("asgov_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("spotify.trace.jsonl");

    let out = asgov()
        .args([
            "trace",
            "--app",
            "Spotify",
            "--duration-s",
            "10",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("run trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycle records"));

    // Every line of the artifact is a schema-tagged record.
    let jsonl = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "trace file is empty");
    for line in &lines {
        assert!(
            line.contains("\"schema\":\"asgov-obs/v2\""),
            "untagged line: {line}"
        );
    }

    let out = asgov()
        .args(["stats", "--trace", trace_path.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(&format!("{} records", lines.len())));
    assert!(text.contains("|error|"));
    assert!(text.contains("dwell splits"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden-input test: `stats` must accept a hand-written JSONL trace,
/// including `null` float fields (the serializer's encoding of
/// non-finite values), and exclude those from the error aggregates
/// instead of poisoning or rejecting them.
#[test]
fn stats_reads_golden_jsonl_with_null_floats() {
    let dir = std::env::temp_dir().join("asgov_cli_golden_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("golden.trace.jsonl");
    let golden = concat!(
        r#"{"actuation_ns":12400,"base_estimate":0.231,"cycle":0,"error":0.013,"fault":null,"innovation":-0.004,"level":"full","lower_bw":3,"lower_freq":7,"measured_gips":0.487,"required_speedup":2.16,"schema":"asgov-obs/v1","solve_ns":1850,"t_ms":2000,"target_gips":0.5,"tau_lower_ms":1200,"tau_upper_ms":800,"upper_bw":4,"upper_freq":8}"#,
        "\n",
        r#"{"actuation_ns":9100,"base_estimate":0.235,"cycle":1,"error":null,"fault":"busy","innovation":null,"level":"safe-config","lower_bw":3,"lower_freq":7,"measured_gips":null,"required_speedup":2.1,"schema":"asgov-obs/v1","solve_ns":1700,"t_ms":4000,"target_gips":0.5,"tau_lower_ms":2000,"tau_upper_ms":0,"upper_bw":3,"upper_freq":7}"#,
        "\n",
    );
    std::fs::write(&trace_path, golden).unwrap();

    let out = asgov()
        .args(["stats", "--trace", trace_path.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 records"), "{text}");
    // The finite record's error is the whole aggregate: mean == max == 0.013.
    assert!(text.contains("mean 0.0130"), "{text}");
    assert!(text.contains("max 0.0130"), "{text}");
    assert!(
        text.contains("1 record(s) with non-finite error excluded"),
        "{text}"
    );
    // Replayed metrics see the fault and the degraded level.
    assert!(text.contains("busy"), "{text}");
    assert!(text.contains("safe-config"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_rejects_a_malformed_trace() {
    let dir = std::env::temp_dir().join("asgov_cli_badtrace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("bad.trace.jsonl");
    std::fs::write(&trace_path, "{not json\n").unwrap();
    let out = asgov()
        .args(["stats", "--trace", trace_path.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_reports_the_four_quantities() {
    let out = asgov()
        .args(["baseline", "--app", "Spotify", "--duration-s", "5"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for q in ["R_def", "P_def", "T_def", "E_def"] {
        assert!(text.contains(q), "missing {q}");
    }
}
