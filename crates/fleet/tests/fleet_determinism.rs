//! Differential determinism suite for the fleet (ISSUE/ROADMAP item
//! 2): the aggregate report must be **bit-identical** across thread
//! counts and across a mid-run shard checkpoint + warm restore, and
//! damaged fleet snapshots must always decode to `SnapshotError` —
//! never panic.

use asgov_fleet::{Fleet, FleetConfig, PolicyStore};
use asgov_soc::DeviceConfig;
use asgov_util::Rng;

fn small_cfg(threads: usize) -> FleetConfig {
    FleetConfig {
        devices: 48,
        shards: 8,
        epochs: 3,
        epoch_ms: 3_000,
        seed: 0xf1ee7,
        threads,
        offline_rate: 0.08,
    }
}

/// Resolve the store once for every scenario in this file (it is
/// itself thread-count invariant, pinned by a store unit test).
fn store() -> PolicyStore {
    PolicyStore::resolve(&small_cfg(0), &DeviceConfig::nexus6())
}

fn final_report_json(store: &PolicyStore, threads: usize) -> String {
    let mut fleet = Fleet::new(small_cfg(threads)).expect("valid config");
    let report = fleet.run(store).expect("run completes");
    report.to_json().to_pretty()
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let store = store();
    let serial = final_report_json(&store, 1);
    for threads in [2, 4, 8] {
        let parallel = final_report_json(&store, threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the aggregate report"
        );
    }
    // The report actually contains work, not a degenerate empty run.
    assert!(serial.contains("savings_per_app"));
    let fleet = {
        let mut f = Fleet::new(small_cfg(1)).expect("valid config");
        f.run(&store).expect("run completes");
        f
    };
    assert!(fleet.report().totals.online > 0, "devices simulated");
    assert!(
        fleet.report().totals.warm_migrations > 0,
        "controller state migrated across epochs"
    );
}

#[test]
fn mid_run_checkpoint_and_warm_restore_reproduce_the_straight_run() {
    let store = store();

    // Straight run: all 3 epochs in one fleet.
    let mut straight = Fleet::new(small_cfg(2)).expect("valid config");
    straight.run(&store).expect("straight run");

    // Interrupted run: one epoch, checkpoint, restore into a fresh
    // fleet (different thread count on purpose), finish there.
    let mut first = Fleet::new(small_cfg(2)).expect("valid config");
    first.step(&store).expect("epoch 0");
    let frame = first.checkpoint().expect("checkpoint encodes");
    drop(first);

    let mut resumed = Fleet::restore(small_cfg(7), &frame).expect("checkpoint restores");
    assert_eq!(resumed.epochs_run(), 1);
    resumed.run(&store).expect("resumed run");

    assert_eq!(
        straight.report().to_json().to_pretty(),
        resumed.report().to_json().to_pretty(),
        "a warm-restored fleet must finish with the identical report"
    );
}

#[test]
fn damaged_fleet_snapshots_error_and_never_panic() {
    let store = store();
    let cfg = small_cfg(2);
    let mut fleet = Fleet::new(cfg).expect("valid config");
    fleet.step(&store).expect("epoch 0");
    let frame = fleet.checkpoint().expect("checkpoint encodes");

    // The pristine frame restores.
    assert!(Fleet::restore(cfg, &frame).is_ok());

    let mut rng = Rng::seed_from_u64(0xdead);
    // Random truncations: every prefix length must decode to an error.
    for _ in 0..200 {
        let cut = rng.gen_range_usize(0..frame.len());
        let truncated = frame.get(..cut).unwrap_or(&[]);
        assert!(
            Fleet::restore(cfg, truncated).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    // Random single-bit flips: the CRC (or a domain check) must catch
    // every one.
    for _ in 0..200 {
        let mut damaged = frame.clone();
        let byte = rng.gen_range_usize(0..damaged.len());
        let bit = rng.gen_range_usize(0..8) as u8;
        if let Some(b) = damaged.get_mut(byte) {
            *b ^= 1 << bit;
        }
        assert!(
            Fleet::restore(cfg, &damaged).is_err(),
            "bit flip at byte {byte} bit {bit} must be rejected"
        );
    }
}
