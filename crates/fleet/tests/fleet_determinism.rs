//! Differential determinism suite for the fleet (ISSUE/ROADMAP item
//! 2): the aggregate report must be **bit-identical** across thread
//! counts, across the barriered (`step`) and pipelined (`run`) epoch
//! engines, and across a mid-run shard checkpoint + warm restore; and
//! damaged fleet snapshots must always decode to `SnapshotError` —
//! never panic.

use asgov_fleet::{savings_agg, Fleet, FleetConfig, PolicyStore};
use asgov_obs::FleetStats;
use asgov_soc::DeviceConfig;
use asgov_util::Rng;

fn small_cfg(threads: usize) -> FleetConfig {
    FleetConfig {
        devices: 48,
        shards: 8,
        epochs: 3,
        epoch_ms: 3_000,
        seed: 0xf1ee7,
        threads,
        offline_rate: 0.08,
        demand_quantum_ms: 1,
    }
}

/// Resolve the store once for every scenario in this file (it is
/// itself thread-count invariant, pinned by a store unit test).
fn store() -> PolicyStore {
    PolicyStore::resolve(&small_cfg(0), &DeviceConfig::nexus6())
}

fn final_report_json(store: &PolicyStore, threads: usize) -> String {
    let mut fleet = Fleet::new(small_cfg(threads)).expect("valid config");
    let report = fleet.run(store).expect("run completes");
    report.to_json().to_pretty()
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let store = store();
    let serial = final_report_json(&store, 1);
    for threads in [2, 4, 8] {
        let parallel = final_report_json(&store, threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the aggregate report"
        );
    }
    // The report actually contains work, not a degenerate empty run.
    assert!(serial.contains("savings_per_app"));
    let fleet = {
        let mut f = Fleet::new(small_cfg(1)).expect("valid config");
        f.run(&store).expect("run completes");
        f
    };
    assert!(fleet.report().totals.online > 0, "devices simulated");
    assert!(
        fleet.report().totals.warm_migrations > 0,
        "controller state migrated across epochs"
    );
}

#[test]
fn pipelined_run_is_bit_identical_to_the_barriered_step_loop() {
    let store = store();
    // Barriered reference: `step` holds a global epoch barrier and is
    // the engine the checkpoint codec is defined against.
    let mut barriered = Fleet::new(small_cfg(1)).expect("valid config");
    while !barriered.done() {
        barriered.step(&store).expect("barriered epoch");
    }
    let reference = barriered.report().to_json().to_pretty();
    // Pipelined engine at several worker counts: shards cross epoch
    // boundaries independently, yet the folded report must match the
    // barriered one bit for bit.
    for threads in [1, 2, 4, 8] {
        let mut pipelined = Fleet::new(small_cfg(threads)).expect("valid config");
        pipelined.run(&store).expect("pipelined run");
        assert_eq!(
            reference,
            pipelined.report().to_json().to_pretty(),
            "pipelined report diverged at {threads} threads"
        );
    }
}

#[test]
fn coarse_quantum_tier_is_thread_invariant_and_warm_restorable() {
    // The bench-1m tier runs a coarse demand quantum; its determinism
    // guarantees are the same as the exact tier's.
    let cfg = |threads: usize| FleetConfig {
        demand_quantum_ms: 20,
        epochs: 2,
        threads,
        ..small_cfg(threads)
    };
    let store = PolicyStore::resolve(&cfg(0), &DeviceConfig::nexus6());

    let mut straight = Fleet::new(cfg(1)).expect("valid config");
    straight.run(&store).expect("straight coarse run");
    assert!(straight.report().totals.online > 0, "devices simulated");

    let mut interrupted = Fleet::new(cfg(4)).expect("valid config");
    interrupted.step(&store).expect("epoch 0");
    let frame = interrupted.checkpoint().expect("checkpoint encodes");
    let mut resumed = Fleet::restore(cfg(3), &frame).expect("checkpoint restores");
    resumed.run(&store).expect("resumed pipelined run");

    assert_eq!(
        straight.report().to_json().to_pretty(),
        resumed.report().to_json().to_pretty(),
        "coarse-quantum restore must reproduce the straight run"
    );
}

#[test]
fn fleet_stats_merge_is_associative_over_random_partitions() {
    // Partition a stream of savings samples into K partial aggregates
    // at random, then fold them left-to-right and as a pairwise tree:
    // the columnar state must come out bit-identical (the fixed-point
    // moments make merge exactly associative), which is what lets the
    // pipelined engine buffer and fold shard stats in any grouping.
    let mut rng = Rng::seed_from_u64(0xa55e7);
    for trial in 0..25 {
        let parts_n = 2 + rng.gen_range_usize(0..7);
        let mut parts: Vec<FleetStats> = (0..parts_n).map(|_| savings_agg()).collect();
        for _ in 0..400 {
            let p = rng.gen_range_usize(0..parts_n);
            let part = parts.get_mut(p).expect("partition in range");
            let stream = rng.gen_range_usize(0..part.streams());
            if rng.gen_bool(0.05) {
                part.record_excluded(stream);
            } else {
                part.record(stream, rng.gen_range(-150.0..150.0));
            }
        }

        let mut fold_left = savings_agg();
        for p in &parts {
            fold_left.merge(p).expect("same layout");
        }

        let mut layer = parts;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let mut m = pair.first().expect("chunk non-empty").clone();
                if let Some(right) = pair.get(1) {
                    m.merge(right).expect("same layout");
                }
                next.push(m);
            }
            layer = next;
        }
        let tree = layer.pop().expect("reduced to one");

        assert_eq!(
            fold_left.serialize_words(),
            tree.serialize_words(),
            "trial {trial}: fold-left and pairwise-tree merges diverged"
        );
    }
}

#[test]
fn mid_run_checkpoint_and_warm_restore_reproduce_the_straight_run() {
    let store = store();

    // Straight run: all 3 epochs in one fleet.
    let mut straight = Fleet::new(small_cfg(2)).expect("valid config");
    straight.run(&store).expect("straight run");

    // Interrupted run: one epoch, checkpoint, restore into a fresh
    // fleet (different thread count on purpose), finish there.
    let mut first = Fleet::new(small_cfg(2)).expect("valid config");
    first.step(&store).expect("epoch 0");
    let frame = first.checkpoint().expect("checkpoint encodes");
    drop(first);

    let mut resumed = Fleet::restore(small_cfg(7), &frame).expect("checkpoint restores");
    assert_eq!(resumed.epochs_run(), 1);
    resumed.run(&store).expect("resumed run");

    assert_eq!(
        straight.report().to_json().to_pretty(),
        resumed.report().to_json().to_pretty(),
        "a warm-restored fleet must finish with the identical report"
    );
}

#[test]
fn damaged_fleet_snapshots_error_and_never_panic() {
    let store = store();
    let cfg = small_cfg(2);
    let mut fleet = Fleet::new(cfg).expect("valid config");
    fleet.step(&store).expect("epoch 0");
    let frame = fleet.checkpoint().expect("checkpoint encodes");

    // The pristine frame restores.
    assert!(Fleet::restore(cfg, &frame).is_ok());

    let mut rng = Rng::seed_from_u64(0xdead);
    // Random truncations: every prefix length must decode to an error.
    for _ in 0..200 {
        let cut = rng.gen_range_usize(0..frame.len());
        let truncated = frame.get(..cut).unwrap_or(&[]);
        assert!(
            Fleet::restore(cfg, truncated).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    // Random single-bit flips: the CRC (or a domain check) must catch
    // every one.
    for _ in 0..200 {
        let mut damaged = frame.clone();
        let byte = rng.gen_range_usize(0..damaged.len());
        let bit = rng.gen_range_usize(0..8) as u8;
        if let Some(b) = damaged.get_mut(byte) {
            *b ^= 1 << bit;
        }
        assert!(
            Fleet::restore(cfg, &damaged).is_err(),
            "bit flip at byte {byte} bit {bit} must be rejected"
        );
    }
}
