//! # asgov-fleet — fleet-scale controller simulation
//!
//! Spawns N simulated devices with distinct apps, seeds and fault
//! plans drawn deterministically from a fleet seed, and runs
//! supervised controllers over them in batched, sharded epochs
//! (ROADMAP item 2, DESIGN.md §11).
//!
//! Structure:
//! - [`FleetConfig`] / [`DeviceSpec`] — run description and the pure
//!   derivation of per-device identity ([`spec`]).
//! - [`PolicyStore`] — profiles and baselines resolved once per
//!   `(app, load)` signature and shared by every device ([`store`]).
//! - [`ShardState`] / [`shard::run_epoch`] — the per-shard epoch
//!   engine with warm controller migration ([`shard`]).
//! - [`FleetReport`] — per-app / per-fault-class savings
//!   distributions ([`report`]).
//! - [`Fleet`] — the epoch loop: shards fan out over
//!   `asgov_util::par::ordered_map`, with an epoch barrier between
//!   rounds and a checkpoint/restore codec for warm mid-run migration.
//!
//! Determinism contract: the aggregate report is **bit-identical** for
//! any thread count and across a mid-run checkpoint/restore — every
//! random draw derives from `(seed, device_id, epoch)` and every merge
//! happens in shard order. The differential suite in
//! `tests/fleet_determinism.rs` pins both properties.

pub mod report;
pub mod shard;
pub mod spec;
pub mod store;

pub use report::{EpochStats, FleetReport, SavingsStat};
pub use shard::ShardState;
pub use spec::{DeviceSpec, FaultClass, FleetConfig, FleetError};
pub use store::{PolicyStore, StoredPolicy};

use asgov_core::{SnapshotError, SnapshotReader, SnapshotWriter};
use asgov_util::par::ordered_map;

/// A fleet run in progress: shard states plus the accumulated report.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<ShardState>,
    report: FleetReport,
}

impl Fleet {
    /// Set up a fleet run (epoch 0, no controller state yet).
    ///
    /// # Errors
    ///
    /// [`FleetError::BadConfig`] when `config` violates an invariant.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|s| ShardState::new(&config, s))
            .collect();
        Ok(Self {
            config,
            shards,
            report: FleetReport::new(config),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> u64 {
        self.report.epochs_run
    }

    /// `true` once every configured epoch has run.
    pub fn done(&self) -> bool {
        self.report.epochs_run >= self.config.epochs
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// Run one epoch: every shard advances one epoch in parallel
    /// (deterministic fan-out, epoch barrier on return), then the
    /// shard statistics merge into the report **in shard order**.
    ///
    /// # Errors
    ///
    /// The first shard error in shard order; the fleet state is left
    /// unchanged on error.
    pub fn step(&mut self, store: &PolicyStore) -> Result<(), FleetError> {
        if self.done() {
            return Ok(());
        }
        let threads = store::resolve_threads(self.config.threads, self.shards.len());
        let config = &self.config;
        let prev = &self.shards;
        let results = ordered_map(prev.len(), threads, |s| {
            prev.get(s)
                .map(|state| shard::run_epoch(config, store, state))
        });
        let mut next = Vec::with_capacity(self.shards.len());
        let mut merged = EpochStats::default();
        for r in results {
            let (state, stats) = match r {
                Some(Ok(pair)) => pair,
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(FleetError::BadConfig(
                        "shard index out of range in fan-out".into(),
                    ))
                }
            };
            merged.merge(&stats);
            next.push(state);
        }
        self.shards = next;
        self.report.totals.merge(&merged);
        self.report.epochs_run += 1;
        Ok(())
    }

    /// Run all remaining epochs and return the final report.
    ///
    /// # Errors
    ///
    /// The first [`FleetError`] any epoch surfaces.
    pub fn run(&mut self, store: &PolicyStore) -> Result<&FleetReport, FleetError> {
        while !self.done() {
            self.step(store)?;
        }
        Ok(&self.report)
    }

    /// Encode the whole run — shard states *and* the report so far —
    /// as one framed snapshot, suitable for warm-migrating a mid-run
    /// fleet to another process.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] if any component overflows the u32
    /// length prefix.
    pub fn checkpoint(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.config.devices);
        w.put_u64(self.config.shards);
        w.put_u64(self.config.epochs);
        w.put_u64(self.config.epoch_ms);
        w.put_u64(self.config.seed);
        w.put_u64(self.report.epochs_run);
        encode_stats(&mut w, &self.report.totals)?;
        for shard in &self.shards {
            w.put_bytes(&shard.snapshot_bytes()?)?;
        }
        w.finish()
    }

    /// Restore a fleet from a [`Fleet::checkpoint`] frame, resuming at
    /// the epoch the checkpoint was taken at. The frame must match
    /// `config`'s identity fields (devices, shards, epochs, epoch_ms,
    /// seed); `threads` is free to differ — it cannot change results.
    ///
    /// # Errors
    ///
    /// [`FleetError::Snapshot`] on damage or a config mismatch,
    /// [`FleetError::BadConfig`] when `config` itself is invalid.
    pub fn restore(config: FleetConfig, bytes: &[u8]) -> Result<Self, FleetError> {
        config.validate()?;
        let mut r = SnapshotReader::new(bytes)?;
        let same = r.take_u64()? == config.devices
            && r.take_u64()? == config.shards
            && r.take_u64()? == config.epochs
            && r.take_u64()? == config.epoch_ms
            && r.take_u64()? == config.seed;
        asgov_core::persist::ensure(same)?;
        let epochs_run = r.take_u64()?;
        asgov_core::persist::ensure(epochs_run <= config.epochs)?;
        let totals = decode_stats(&mut r)?;
        let mut shards = Vec::with_capacity(config.shards as usize);
        for _ in 0..config.shards {
            let frame = r.take_bytes()?;
            shards.push(ShardState::restore_bytes(&config, frame)?);
        }
        r.finish()?;
        let mut report = FleetReport::new(config);
        report.epochs_run = epochs_run;
        report.totals = totals;
        Ok(Self {
            config,
            shards,
            report,
        })
    }

    /// Borrow the shard states (diagnostics, tests).
    pub fn shards(&self) -> &[ShardState] {
        &self.shards
    }
}

fn encode_stats(w: &mut SnapshotWriter, s: &EpochStats) -> Result<(), SnapshotError> {
    w.put_u64(s.online);
    w.put_u64(s.offline);
    w.put_f64(s.energy_j);
    w.put_u64(s.restarts);
    w.put_u64(s.warm_restarts);
    w.put_u64(s.warm_migrations);
    w.put_u64(s.snapshot_errors);
    w.put_u64(s.downtime_ms);
    for map in [&s.per_app, &s.per_fault] {
        w.put_u64(map.len() as u64);
        for (k, v) in map {
            w.put_bytes(k.as_bytes())?;
            w.put_u64(v.count);
            w.put_u64(v.degenerate);
            w.put_f64(v.sum);
            w.put_f64(v.sumsq);
            w.put_f64(v.min);
            w.put_f64(v.max);
        }
    }
    Ok(())
}

fn decode_stats(r: &mut SnapshotReader) -> Result<EpochStats, SnapshotError> {
    let mut s = EpochStats {
        online: r.take_u64()?,
        offline: r.take_u64()?,
        energy_j: r.take_f64()?,
        restarts: r.take_u64()?,
        warm_restarts: r.take_u64()?,
        warm_migrations: r.take_u64()?,
        snapshot_errors: r.take_u64()?,
        downtime_ms: r.take_u64()?,
        ..EpochStats::default()
    };
    asgov_core::persist::ensure(s.energy_j.is_finite())?;
    for which in 0..2u8 {
        let len = r.take_u64()?;
        for _ in 0..len {
            let key = String::from_utf8(r.take_bytes()?.to_vec());
            let key = asgov_core::persist::require(key.ok())?;
            let stat = SavingsStat {
                count: r.take_u64()?,
                degenerate: r.take_u64()?,
                sum: r.take_f64()?,
                sumsq: r.take_f64()?,
                min: r.take_f64()?,
                max: r.take_f64()?,
            };
            if which == 0 {
                s.per_app.insert(key, stat);
            } else {
                s.per_fault.insert(key, stat);
            }
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_invalid_configs() {
        let bad = FleetConfig {
            devices: 0,
            ..FleetConfig::smoke()
        };
        assert!(matches!(Fleet::new(bad), Err(FleetError::BadConfig(_))));
    }

    #[test]
    fn fresh_checkpoint_round_trips() {
        let cfg = FleetConfig {
            devices: 12,
            shards: 4,
            ..FleetConfig::smoke()
        };
        let fleet = Fleet::new(cfg).expect("valid config");
        let bytes = fleet.checkpoint().expect("small frame");
        let back = Fleet::restore(cfg, &bytes).expect("clean frame");
        assert_eq!(back.epochs_run(), 0);
        assert_eq!(back.shards(), fleet.shards());
    }

    #[test]
    fn restore_rejects_mismatched_identity() {
        let cfg = FleetConfig {
            devices: 12,
            shards: 4,
            ..FleetConfig::smoke()
        };
        let fleet = Fleet::new(cfg).expect("valid config");
        let bytes = fleet.checkpoint().expect("small frame");
        let other = FleetConfig { seed: 99, ..cfg };
        assert!(Fleet::restore(other, &bytes).is_err());
    }
}
