//! # asgov-fleet — fleet-scale controller simulation
//!
//! Spawns N simulated devices with distinct apps, seeds and fault
//! plans drawn deterministically from a fleet seed, and runs
//! supervised controllers over them in sharded epochs (ROADMAP
//! item 2, DESIGN.md §11–§12).
//!
//! Structure:
//! - [`FleetConfig`] / [`DeviceSpec`] — run description and the pure
//!   derivation of per-device identity ([`spec`]).
//! - [`PolicyStore`] — profiles and baselines resolved once per
//!   `(app, load)` signature and shared by every device ([`store`]).
//! - [`ShardState`] / [`shard::run_epoch_into`] — the per-shard epoch
//!   engine with warm controller migration ([`shard`]).
//! - [`FleetReport`] — per-app / per-fault-class savings
//!   distributions over a columnar `FleetStats` aggregator
//!   ([`report`]).
//! - [`Fleet`] — the epoch engines. [`Fleet::step`] is the barriered
//!   path: every shard advances exactly one epoch, then merges. The
//!   hot path, [`Fleet::run`], pipelines shard epochs over a
//!   persistent `asgov_util::par::WorkerPool`: each shard enters
//!   epoch `e + 1` as soon as its *own* epoch `e` lands — no global
//!   barrier — and completed `(epoch, shard)` statistics are buffered
//!   and folded in barriered order afterward.
//!
//! Determinism contract: the aggregate report is **bit-identical**
//! for any thread count, across the barriered and pipelined engines,
//! and across a mid-run checkpoint/restore — every random draw
//! derives from `(seed, device_id, epoch)`, the savings columns merge
//! exactly (integer fixed-point), and the one floating-point total
//! folds in a fixed (epoch-major, shard-minor) order. The
//! differential suite in `tests/fleet_determinism.rs` pins all three
//! properties.

pub mod report;
pub mod shard;
pub mod spec;
pub mod store;

pub use report::{app_stream, fault_stream, savings_agg, EpochStats, FleetReport};
pub use shard::ShardState;
pub use spec::{DeviceSpec, FaultClass, FleetConfig, FleetError};
pub use store::{PolicyStore, StoredPolicy};

use asgov_core::persist::{ensure, ensure_config, require};
use asgov_core::{SnapshotError, SnapshotReader, SnapshotWriter};
use asgov_obs::FleetStats;
use asgov_util::par::WorkerPool;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// A fleet run in progress: shard states, the accumulated report, and
/// the persistent worker pool the epoch engines fan out over.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<ShardState>,
    report: FleetReport,
    pool: WorkerPool,
}

impl Fleet {
    /// Set up a fleet run (epoch 0, no controller state yet). Spawns
    /// the worker pool once; both epoch engines reuse it.
    ///
    /// # Errors
    ///
    /// [`FleetError::BadConfig`] when `config` violates an invariant.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate()?;
        let shards: Vec<ShardState> = (0..config.shards)
            .map(|s| ShardState::new(&config, s))
            .collect();
        let threads = store::resolve_threads(config.threads, shards.len());
        Ok(Self {
            config,
            shards,
            report: FleetReport::new(config),
            pool: WorkerPool::new(threads),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> u64 {
        self.report.epochs_run
    }

    /// `true` once every configured epoch has run.
    pub fn done(&self) -> bool {
        self.report.epochs_run >= self.config.epochs
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// Run one epoch: every shard advances one epoch in parallel
    /// (deterministic fan-out, epoch barrier on return), then the
    /// shard statistics merge into the report **in shard order**.
    ///
    /// # Errors
    ///
    /// The first shard error in shard order; the fleet state is left
    /// unchanged on error.
    pub fn step(&mut self, store: &PolicyStore) -> Result<(), FleetError> {
        if self.done() {
            return Ok(());
        }
        let config = self.config;
        let prev = &self.shards;
        let results = self.pool.ordered_map(prev.len(), |s| {
            prev.get(s)
                .map(|state| shard::run_epoch(&config, store, state))
        });
        let mut next = Vec::with_capacity(self.shards.len());
        let mut merged = EpochStats::default();
        for r in results {
            let (state, stats) = match r {
                Some(Ok(pair)) => pair,
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(FleetError::BadConfig(
                        "shard index out of range in fan-out".into(),
                    ))
                }
            };
            merged.merge(&stats).map_err(|_| FleetError::StatsLayout)?;
            next.push(state);
        }
        self.shards = next;
        self.report
            .totals
            .merge(&merged)
            .map_err(|_| FleetError::StatsLayout)?;
        self.report.epochs_run += 1;
        Ok(())
    }

    /// Run all remaining epochs **pipelined** and return the final
    /// report: one pool broadcast covers every remaining shard-epoch,
    /// and a shard re-enters the ready queue for epoch `e + 1` the
    /// moment its own epoch `e` lands — workers never idle at a
    /// global epoch barrier. Completed `(epoch, shard)` statistics
    /// are buffered and folded epoch-major/shard-minor afterward, so
    /// the report is bit-identical to running [`Fleet::step`] in a
    /// loop.
    ///
    /// # Errors
    ///
    /// The earliest `(epoch, shard)` error any worker hit. The fleet
    /// is left partially advanced and must be discarded — unlike
    /// [`Fleet::step`], a failed pipelined run does not roll back
    /// (errors are deterministic, so a retry would fail identically).
    pub fn run(&mut self, store: &PolicyStore) -> Result<&FleetReport, FleetError> {
        if self.done() {
            return Ok(&self.report);
        }
        let config = self.config;
        let total_epochs = config.epochs;
        let start_epoch = self.report.epochs_run;
        let nshards = self.shards.len() as u64;
        for shard in &self.shards {
            if shard.next_epoch != start_epoch {
                return Err(FleetError::BadConfig(
                    "shard epochs out of alignment; cannot pipeline".into(),
                ));
            }
        }

        let slots: Vec<Mutex<Option<ShardState>>> =
            self.shards.drain(..).map(|s| Mutex::new(Some(s))).collect();
        let queue = Mutex::new(PipelineQueue {
            ready: (0..nshards).collect(),
            remaining: nshards * (total_epochs - start_epoch),
            abort: false,
        });
        let work_ready = Condvar::new();
        let results: Mutex<BTreeMap<(u64, u64), EpochStats>> = Mutex::new(BTreeMap::new());
        let first_error: Mutex<Option<((u64, u64), FleetError)>> = Mutex::new(None);

        let fail = |at: (u64, u64), e: FleetError| {
            let mut slot = lock(&first_error);
            let replace = match &*slot {
                None => true,
                Some((prev_at, _)) => at < *prev_at,
            };
            if replace {
                *slot = Some((at, e));
            }
            lock(&queue).abort = true;
            work_ready.notify_all();
        };

        self.pool.broadcast(&|_worker| loop {
            let shard = {
                let mut q = lock(&queue);
                loop {
                    if q.abort || q.remaining == 0 {
                        return;
                    }
                    if let Some(s) = q.ready.pop_front() {
                        break s;
                    }
                    q = wait(&work_ready, q);
                }
            };
            let Some(slot) = slots.get(shard as usize) else {
                fail((start_epoch, shard), internal_error("shard slot missing"));
                return;
            };
            let Some(mut state) = lock(slot).take() else {
                fail((start_epoch, shard), internal_error("shard slot empty"));
                return;
            };
            let epoch = state.next_epoch;
            match shard::run_epoch_into(&config, store, &mut state) {
                Ok(stats) => {
                    let more = state.next_epoch < total_epochs;
                    *lock(slot) = Some(state);
                    lock(&results).insert((epoch, shard), stats);
                    let finished = {
                        let mut q = lock(&queue);
                        q.remaining = q.remaining.saturating_sub(1);
                        if more {
                            q.ready.push_back(shard);
                        }
                        q.remaining == 0
                    };
                    if finished {
                        work_ready.notify_all();
                    } else if more {
                        work_ready.notify_one();
                    }
                }
                Err(e) => {
                    *lock(slot) = Some(state);
                    fail((epoch, shard), e);
                    return;
                }
            }
        });

        // Reassemble shard states (every worker put its state back
        // before returning, on both the success and error paths).
        let mut shards = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                Some(state) => shards.push(state),
                None => return Err(internal_error("shard state lost in pipeline")),
            }
        }
        self.shards = shards;

        if let Some((_, e)) = lock(&first_error).take() {
            return Err(e);
        }

        // Fold the buffered statistics exactly as the barriered loop
        // would: per epoch, merge shards in shard order into a fresh
        // accumulator, then fold that into the totals — the f64
        // energy sum sees the identical grouping.
        let results = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for epoch in start_epoch..total_epochs {
            let mut merged = EpochStats::default();
            for shard in 0..nshards {
                let Some(stats) = results.get(&(epoch, shard)) else {
                    return Err(internal_error("missing shard-epoch result"));
                };
                merged.merge(stats).map_err(|_| FleetError::StatsLayout)?;
            }
            self.report
                .totals
                .merge(&merged)
                .map_err(|_| FleetError::StatsLayout)?;
            self.report.epochs_run += 1;
        }
        Ok(&self.report)
    }

    /// Encode the whole run — shard states *and* the report so far —
    /// as one framed snapshot, suitable for warm-migrating a mid-run
    /// fleet to another process.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] if any component overflows the u32
    /// length prefix.
    pub fn checkpoint(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.config.devices);
        w.put_u64(self.config.shards);
        w.put_u64(self.config.epochs);
        w.put_u64(self.config.epoch_ms);
        w.put_u64(self.config.seed);
        w.put_u64(self.config.demand_quantum_ms);
        w.put_u64(self.report.epochs_run);
        encode_stats(&mut w, &self.report.totals)?;
        for shard in &self.shards {
            w.put_bytes(&shard.snapshot_bytes()?)?;
        }
        w.finish()
    }

    /// Restore a fleet from a [`Fleet::checkpoint`] frame, resuming at
    /// the epoch the checkpoint was taken at. The frame must match
    /// `config`'s identity fields (devices, shards, epochs, epoch_ms,
    /// seed, demand_quantum_ms); `threads` is free to differ — it
    /// cannot change results.
    ///
    /// # Errors
    ///
    /// [`FleetError::Snapshot`] on damage or a config mismatch,
    /// [`FleetError::BadConfig`] when `config` itself is invalid.
    pub fn restore(config: FleetConfig, bytes: &[u8]) -> Result<Self, FleetError> {
        config.validate()?;
        let mut r = SnapshotReader::new(bytes)?;
        // Per-field identity checks: an intact checkpoint taken under a
        // different run configuration reports *which* field the operator
        // changed (`ConfigMismatch`), not "corrupt".
        ensure_config(r.take_u64()? == config.devices, "devices")?;
        ensure_config(r.take_u64()? == config.shards, "shards")?;
        ensure_config(r.take_u64()? == config.epochs, "epochs")?;
        ensure_config(r.take_u64()? == config.epoch_ms, "epoch_ms")?;
        ensure_config(r.take_u64()? == config.seed, "seed")?;
        ensure_config(
            r.take_u64()? == config.demand_quantum_ms,
            "demand_quantum_ms",
        )?;
        let epochs_run = r.take_u64()?;
        ensure(epochs_run <= config.epochs)?;
        let totals = decode_stats(&mut r)?;
        let mut shards = Vec::with_capacity(config.shards as usize);
        for _ in 0..config.shards {
            let frame = r.take_bytes()?;
            let state = ShardState::restore_bytes(&config, frame)?;
            // Checkpoints are taken at epoch boundaries: every shard
            // must sit at exactly the fleet's resume epoch, or the
            // pipelined engine could not schedule it.
            ensure(state.next_epoch == epochs_run)?;
            shards.push(state);
        }
        r.finish()?;
        let mut report = FleetReport::new(config);
        report.epochs_run = epochs_run;
        report.totals = totals;
        let threads = store::resolve_threads(config.threads, shards.len());
        Ok(Self {
            config,
            shards,
            report,
            pool: WorkerPool::new(threads),
        })
    }

    /// Borrow the shard states (diagnostics, tests).
    pub fn shards(&self) -> &[ShardState] {
        &self.shards
    }
}

/// Scheduling state of the pipelined engine, all under one mutex so
/// ready-queue pushes, the remaining-work counter and the abort flag
/// change atomically with respect to waiting workers.
struct PipelineQueue {
    ready: VecDeque<u64>,
    remaining: u64,
    abort: bool,
}

/// Lock that ignores poisoning: a panicking worker (itself a bug the
/// pool propagates) must not cascade into opaque poison panics here.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Condvar wait with the same poison policy as [`lock`].
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An invariant the pipeline itself maintains was violated — always a
/// bug in this crate, surfaced as an error instead of a panic.
fn internal_error(what: &str) -> FleetError {
    FleetError::BadConfig(format!("internal pipeline invariant broken: {what}"))
}

fn encode_stats(w: &mut SnapshotWriter, s: &EpochStats) -> Result<(), SnapshotError> {
    w.put_u64(s.online);
    w.put_u64(s.offline);
    w.put_f64(s.energy_j);
    w.put_u64(s.restarts);
    w.put_u64(s.warm_restarts);
    w.put_u64(s.warm_migrations);
    w.put_u64(s.snapshot_errors);
    w.put_u64(s.downtime_ms);
    let words = s.savings.serialize_words();
    w.put_u64(words.len() as u64);
    for word in words {
        w.put_u64(word);
    }
    Ok(())
}

fn decode_stats(r: &mut SnapshotReader) -> Result<EpochStats, SnapshotError> {
    let mut s = EpochStats {
        online: r.take_u64()?,
        offline: r.take_u64()?,
        energy_j: r.take_f64()?,
        restarts: r.take_u64()?,
        warm_restarts: r.take_u64()?,
        warm_migrations: r.take_u64()?,
        snapshot_errors: r.take_u64()?,
        downtime_ms: r.take_u64()?,
        ..EpochStats::default()
    };
    ensure(s.energy_j.is_finite())?;
    let nwords = r.take_u64()?;
    ensure(nwords <= 1 << 22)?;
    let mut words = Vec::with_capacity(nwords as usize);
    for _ in 0..nwords {
        words.push(r.take_u64()?);
    }
    let savings = require(FleetStats::deserialize_words(&words))?;
    // The decoded aggregator must carry the fleet's fixed stream
    // layout, or later merges would fail far from the codec.
    let mut probe = report::savings_agg();
    ensure(probe.merge(&savings).is_ok())?;
    s.savings = savings;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_invalid_configs() {
        let bad = FleetConfig {
            devices: 0,
            ..FleetConfig::smoke()
        };
        assert!(matches!(Fleet::new(bad), Err(FleetError::BadConfig(_))));
    }

    #[test]
    fn fresh_checkpoint_round_trips() {
        let cfg = FleetConfig {
            devices: 12,
            shards: 4,
            ..FleetConfig::smoke()
        };
        let fleet = Fleet::new(cfg).expect("valid config");
        let bytes = fleet.checkpoint().expect("small frame");
        let back = Fleet::restore(cfg, &bytes).expect("clean frame");
        assert_eq!(back.epochs_run(), 0);
        assert_eq!(back.shards(), fleet.shards());
    }

    #[test]
    fn restore_rejects_mismatched_identity() {
        let cfg = FleetConfig {
            devices: 12,
            shards: 4,
            ..FleetConfig::smoke()
        };
        let fleet = Fleet::new(cfg).expect("valid config");
        let bytes = fleet.checkpoint().expect("small frame");
        // An intact frame restored under a changed parameter must name
        // the mismatching field — not claim the checkpoint is damaged.
        let field_of = |cfg: FleetConfig| match Fleet::restore(cfg, &bytes) {
            Err(FleetError::Snapshot(SnapshotError::ConfigMismatch { field })) => field,
            other => panic!("expected ConfigMismatch, got {other:?}"),
        };
        assert_eq!(field_of(FleetConfig { seed: 99, ..cfg }), "seed");
        assert_eq!(
            field_of(FleetConfig {
                demand_quantum_ms: 5,
                ..cfg
            }),
            "demand_quantum_ms"
        );
        // Actual damage still reads as corruption, not a config drift.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            Fleet::restore(cfg, &bad),
            Err(FleetError::Snapshot(
                SnapshotError::Corrupt | SnapshotError::Truncated
            ))
        ));
    }
}
