//! The central policy store: offline profiles and baseline
//! measurements resolved **once per `(app, load)` signature** and
//! shared (via `Arc`) by every device carrying that signature, instead
//! of re-profiling per device (10⁵ devices, 18 signatures).

use crate::spec::{build_app, roster_signatures, FleetConfig};
use asgov_profiler::{measure_default, profile_app_serial, ProfileOptions, ProfileTable};
use asgov_soc::DeviceConfig;
use asgov_util::par::ordered_map;
use asgov_workloads::{BackgroundLoad, LoadLevel};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a device needs to run its controller, resolved once per
/// signature: the offline profile, the performance target, and the
/// default-governor baseline the savings are measured against.
#[derive(Debug, Clone)]
pub struct StoredPolicy {
    /// The `(app, load)` signature this policy serves.
    pub signature: String,
    /// Offline `(frequency, bandwidth)` profile.
    pub profile: ProfileTable,
    /// Controller performance target, GIPS (the default governor's
    /// delivered performance, as in the paper's methodology).
    pub target_gips: f64,
    /// Default-governor energy over one `epoch_ms` window, joules.
    pub baseline_energy_j: f64,
    /// Whether the app is deadline-based (batch) rather than
    /// rate-based.
    pub deadline_based: bool,
}

/// The resolved store: signature → shared policy.
#[derive(Debug, Clone, Default)]
pub struct PolicyStore {
    policies: BTreeMap<String, Arc<StoredPolicy>>,
}

impl PolicyStore {
    /// Profile and baseline every roster signature for the given
    /// device model, fanning the signatures out over `cfg.threads`
    /// workers. Resolution is deterministic: every profiling seed
    /// derives from the signature's position, never from scheduling.
    pub fn resolve(cfg: &FleetConfig, dev_cfg: &DeviceConfig) -> Self {
        let sigs = roster_signatures();
        let threads = resolve_threads(cfg.threads, sigs.len());
        let resolved = ordered_map(sigs.len(), threads, |i| {
            sigs.get(i)
                .map(|(sig, app, load)| resolve_one(cfg, dev_cfg, sig, app, *load))
        });
        let mut policies = BTreeMap::new();
        for p in resolved.into_iter().flatten() {
            policies.insert(p.signature.clone(), Arc::new(p));
        }
        Self { policies }
    }

    /// Look up the shared policy for a signature.
    pub fn get(&self, sig: &str) -> Option<&Arc<StoredPolicy>> {
        self.policies.get(sig)
    }

    /// Number of resolved signatures.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the store holds no policies.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

/// Resolve the worker count: `0` means the machine default.
pub(crate) fn resolve_threads(requested: usize, jobs: usize) -> usize {
    if requested == 0 {
        asgov_util::par::default_threads(jobs)
    } else {
        requested.clamp(1, jobs.max(1))
    }
}

/// The quick profiling options the fleet uses (a full paper-grade
/// sweep per signature would dwarf the fleet run itself).
fn profile_options() -> ProfileOptions {
    ProfileOptions {
        runs_per_config: 1,
        run_ms: 3_000,
        freq_stride: 4,
        interpolate: true,
    }
}

fn resolve_one(
    cfg: &FleetConfig,
    dev_cfg: &DeviceConfig,
    sig: &str,
    app_name: &str,
    load: LoadLevel,
) -> StoredPolicy {
    // The canonical profiling seed is the fleet seed: profiles are
    // shared state, not per-device state. Profiling runs the same
    // demand quantum as the epochs so baselines match the model the
    // devices actually execute.
    let Some(mut app) = build_app(
        app_name,
        BackgroundLoad::with_level(load, cfg.seed),
        cfg.demand_quantum_ms,
    ) else {
        // Unreachable for roster signatures; an empty profile would be
        // rejected downstream, so return an inert placeholder rather
        // than panicking in library code.
        return StoredPolicy {
            signature: sig.to_string(),
            profile: ProfileTable {
                app: app_name.to_string(),
                base_gips: 0.0,
                entries: Vec::new(),
            },
            target_gips: 0.0,
            baseline_energy_j: 0.0,
            deadline_based: false,
        };
    };
    let deadline_based = matches!(app.spec().kind, asgov_workloads::AppKind::Batch { .. });
    // Serial per-signature profiling: the signature fan-out above is
    // already parallel, and `profile_app_serial` is bit-identical to
    // the threaded sweep by the `ordered_map` contract.
    let profile = profile_app_serial(
        &dev_cfg.clone().with_seed(cfg.seed),
        &mut app,
        &profile_options(),
    );
    let baseline = measure_default(
        &dev_cfg.clone().with_seed(cfg.seed),
        &mut app,
        1,
        cfg.epoch_ms,
    );
    StoredPolicy {
        signature: sig.to_string(),
        profile,
        target_gips: baseline.gips,
        baseline_energy_j: baseline.energy_j,
        deadline_based,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FleetConfig {
        FleetConfig {
            devices: 8,
            shards: 2,
            epochs: 1,
            epoch_ms: 2_000,
            ..FleetConfig::smoke()
        }
    }

    #[test]
    fn store_resolves_every_roster_signature_with_usable_baselines() {
        let store = PolicyStore::resolve(&tiny_cfg(), &DeviceConfig::nexus6());
        assert_eq!(store.len(), roster_signatures().len());
        for (sig, _, _) in roster_signatures() {
            let p = store.get(&sig).expect("signature resolved");
            assert!(p.baseline_energy_j > 0.0, "{sig}: baseline energy");
            assert!(p.target_gips > 0.0, "{sig}: target");
            assert!(!p.profile.entries.is_empty(), "{sig}: profile");
        }
    }

    #[test]
    fn resolution_is_thread_count_invariant() {
        let dev_cfg = DeviceConfig::nexus6();
        let cfg1 = FleetConfig {
            threads: 1,
            ..tiny_cfg()
        };
        let cfg4 = FleetConfig {
            threads: 4,
            ..tiny_cfg()
        };
        let a = PolicyStore::resolve(&cfg1, &dev_cfg);
        let b = PolicyStore::resolve(&cfg4, &dev_cfg);
        for (sig, _, _) in roster_signatures() {
            let (pa, pb) = (a.get(&sig), b.get(&sig));
            let pa = pa.expect("resolved at 1 thread");
            let pb = pb.expect("resolved at 4 threads");
            assert!(pa.baseline_energy_j.to_bits() == pb.baseline_energy_j.to_bits());
            assert!(pa.target_gips.to_bits() == pb.target_gips.to_bits());
        }
    }
}
