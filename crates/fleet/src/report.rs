//! Aggregate fleet results: energy-savings distributions per
//! application and per fault class, plus supervision telemetry.
//!
//! Aggregation is order-deterministic: shards are merged in shard
//! order and devices in id order, so floating-point sums are
//! bit-identical across thread counts.

use crate::spec::FleetConfig;
use asgov_util::Json;
use std::collections::BTreeMap;

/// Running moments of an energy-savings distribution (percent).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SavingsStat {
    /// Samples recorded.
    pub count: u64,
    /// Device-epochs excluded for a degenerate baseline (zero or
    /// non-finite baseline energy) — flagged, never averaged.
    pub degenerate: u64,
    /// Sum of savings, percent.
    pub sum: f64,
    /// Sum of squared savings.
    pub sumsq: f64,
    /// Smallest sample (`0` when empty).
    pub min: f64,
    /// Largest sample (`0` when empty).
    pub max: f64,
}

impl SavingsStat {
    /// Record one savings sample (percent).
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.sumsq += v * v;
    }

    /// Flag (and exclude) a degenerate-baseline device-epoch.
    pub fn record_degenerate(&mut self) {
        self.degenerate += 1;
    }

    /// Fold another stat into this one (used when merging shards; the
    /// caller fixes the merge order).
    pub fn merge(&mut self, other: &SavingsStat) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.degenerate += other.degenerate;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }

    /// Mean savings, percent (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (`0` when empty).
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sumsq / n - (self.sum / n) * (self.sum / n)).max(0.0);
        var.sqrt()
    }

    /// JSON object with the derived distribution figures.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("count", self.count as f64);
        j.set("degenerate", self.degenerate as f64);
        j.set("mean_pct", self.mean());
        j.set("std_pct", self.std());
        j.set("min_pct", if self.count == 0 { 0.0 } else { self.min });
        j.set("max_pct", if self.count == 0 { 0.0 } else { self.max });
        j
    }
}

/// One shard-epoch's contribution to the fleet report.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// Device-epochs simulated.
    pub online: u64,
    /// Device-epochs skipped by offline churn.
    pub offline: u64,
    /// Simulated energy over all online device-epochs, joules.
    pub energy_j: f64,
    /// Controller restarts performed by supervisors.
    pub restarts: u64,
    /// Restarts that resumed from a checkpoint.
    pub warm_restarts: u64,
    /// Epoch handovers that warm-started from a migrated snapshot.
    pub warm_migrations: u64,
    /// Unusable checkpoints (each forced a cold start).
    pub snapshot_errors: u64,
    /// Milliseconds controllers spent dead.
    pub downtime_ms: u64,
    /// Savings distribution per application.
    pub per_app: BTreeMap<String, SavingsStat>,
    /// Savings distribution per fault class.
    pub per_fault: BTreeMap<String, SavingsStat>,
}

impl EpochStats {
    /// Fold another epoch/shard contribution into this one.
    pub fn merge(&mut self, other: &EpochStats) {
        self.online += other.online;
        self.offline += other.offline;
        self.energy_j += other.energy_j;
        self.restarts += other.restarts;
        self.warm_restarts += other.warm_restarts;
        self.warm_migrations += other.warm_migrations;
        self.snapshot_errors += other.snapshot_errors;
        self.downtime_ms += other.downtime_ms;
        for (k, v) in &other.per_app {
            self.per_app.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.per_fault {
            self.per_fault.entry(k.clone()).or_default().merge(v);
        }
    }
}

/// The aggregate fleet report: configuration echo, telemetry, and the
/// savings distributions.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Epochs completed so far.
    pub epochs_run: u64,
    /// Accumulated statistics over all epochs and shards.
    pub totals: EpochStats,
}

impl FleetReport {
    /// An empty report for `config`.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            epochs_run: 0,
            totals: EpochStats::default(),
        }
    }

    /// Estimated controller cycles simulated (one per 2 000 ms control
    /// period per online device-epoch).
    pub fn controller_cycles(&self) -> u64 {
        self.totals.online * (self.config.epoch_ms / 2_000).max(1)
    }

    /// The full report as JSON (stable key order, deterministic
    /// serialization).
    pub fn to_json(&self) -> Json {
        let mut cfg = Json::object();
        cfg.set("devices", self.config.devices as f64);
        cfg.set("shards", self.config.shards as f64);
        cfg.set("epochs", self.config.epochs as f64);
        cfg.set("epoch_ms", self.config.epoch_ms as f64);
        cfg.set("seed", self.config.seed as f64);
        cfg.set("offline_rate", self.config.offline_rate);

        let mut tel = Json::object();
        tel.set("restarts", self.totals.restarts as f64);
        tel.set("warm_restarts", self.totals.warm_restarts as f64);
        tel.set("warm_migrations", self.totals.warm_migrations as f64);
        tel.set("snapshot_errors", self.totals.snapshot_errors as f64);
        tel.set("downtime_ms", self.totals.downtime_ms as f64);

        let mut per_app = Json::object();
        for (k, v) in &self.totals.per_app {
            per_app.set(k, v.to_json());
        }
        let mut per_fault = Json::object();
        for (k, v) in &self.totals.per_fault {
            per_fault.set(k, v.to_json());
        }

        let mut j = Json::object();
        j.set("config", cfg);
        j.set("epochs_run", self.epochs_run as f64);
        j.set("device_epochs_online", self.totals.online as f64);
        j.set("device_epochs_offline", self.totals.offline as f64);
        j.set("controller_cycles", self.controller_cycles() as f64);
        j.set("energy_j", self.totals.energy_j);
        j.set("telemetry", tel);
        j.set("savings_per_app", per_app);
        j.set("savings_per_fault", per_fault);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_moments_match_direct_computation() {
        let mut s = SavingsStat::default();
        for v in [10.0, 20.0, 30.0] {
            s.record(v);
        }
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert!((s.std() - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert!((s.min - 10.0).abs() < 1e-12);
        assert!((s.max - 30.0).abs() < 1e-12);
    }

    #[test]
    fn merging_two_stats_equals_recording_all_samples() {
        let (mut a, mut b, mut all) = (
            SavingsStat::default(),
            SavingsStat::default(),
            SavingsStat::default(),
        );
        for v in [1.0, -2.0, 3.5] {
            a.record(v);
            all.record(v);
        }
        for v in [7.0, 0.25] {
            b.record(v);
            all.record(v);
        }
        b.record_degenerate();
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert_eq!(a.degenerate, 1);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.min - all.min).abs() < 1e-12);
        assert!((a.max - all.max).abs() < 1e-12);
    }

    #[test]
    fn empty_stat_serializes_finite_numbers() {
        let s = SavingsStat::default();
        let text = s.to_json().to_pretty();
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }

    #[test]
    fn report_json_has_the_documented_top_level_keys() {
        let r = FleetReport::new(FleetConfig::smoke());
        let j = r.to_json();
        for key in [
            "config",
            "epochs_run",
            "device_epochs_online",
            "device_epochs_offline",
            "controller_cycles",
            "energy_j",
            "telemetry",
            "savings_per_app",
            "savings_per_fault",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
