//! Aggregate fleet results: energy-savings distributions per
//! application and per fault class, plus supervision telemetry.
//!
//! Savings distributions live in one columnar [`FleetStats`]
//! aggregator with a fixed stream layout — roster applications first
//! (in roster order), then fault classes (in [`FaultClass::all`]
//! order). Its integer fixed-point moments and histograms merge
//! bit-exactly in any order; the one floating-point total
//! (`energy_j`) is folded in a fixed (epoch-major, shard-minor)
//! order, so reports are bit-identical across thread counts and
//! across the barriered and pipelined execution paths.

use crate::spec::{roster_names, FaultClass, FleetConfig};
use asgov_obs::{FleetStats, LayoutMismatch};
use asgov_util::Json;

/// Number of per-application savings streams (the roster size).
pub const APP_STREAMS: usize = 6;
/// Number of per-fault-class savings streams.
pub const FAULT_STREAMS: usize = 7;
/// Total savings streams in every fleet aggregator.
pub const SAVINGS_STREAMS: usize = APP_STREAMS + FAULT_STREAMS;

/// The aggregator stream for a roster application (by roster index).
pub fn app_stream(app_idx: usize) -> usize {
    app_idx.min(APP_STREAMS - 1)
}

/// The aggregator stream for a fault class.
pub fn fault_stream(class: FaultClass) -> usize {
    APP_STREAMS + class.index()
}

/// A fresh savings aggregator with the fleet's fixed stream layout.
pub fn savings_agg() -> FleetStats {
    FleetStats::savings_pct(SAVINGS_STREAMS)
}

/// One shard-epoch's contribution to the fleet report.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Device-epochs simulated.
    pub online: u64,
    /// Device-epochs skipped by offline churn.
    pub offline: u64,
    /// Simulated energy over all online device-epochs, joules.
    pub energy_j: f64,
    /// Controller restarts performed by supervisors.
    pub restarts: u64,
    /// Restarts that resumed from a checkpoint.
    pub warm_restarts: u64,
    /// Epoch handovers that warm-started from a migrated snapshot.
    pub warm_migrations: u64,
    /// Unusable checkpoints (each forced a cold start).
    pub snapshot_errors: u64,
    /// Milliseconds controllers spent dead.
    pub downtime_ms: u64,
    /// Columnar savings distributions: streams `0..APP_STREAMS` are
    /// per-application, the rest per-fault-class. Degenerate-baseline
    /// device-epochs are recorded as excluded samples (counted, never
    /// averaged).
    pub savings: FleetStats,
}

impl Default for EpochStats {
    fn default() -> Self {
        Self {
            online: 0,
            offline: 0,
            energy_j: 0.0,
            restarts: 0,
            warm_restarts: 0,
            warm_migrations: 0,
            snapshot_errors: 0,
            downtime_ms: 0,
            savings: savings_agg(),
        }
    }
}

impl EpochStats {
    /// Fold another epoch/shard contribution into this one. The
    /// savings columns merge bit-exactly in any order; `energy_j` is
    /// an f64 sum, so the caller fixes the merge order.
    ///
    /// # Errors
    ///
    /// [`LayoutMismatch`] if the aggregators disagree on layout — only
    /// possible for stats rebuilt from a foreign checkpoint.
    pub fn merge(&mut self, other: &EpochStats) -> Result<(), LayoutMismatch> {
        self.savings.merge(&other.savings)?;
        self.online += other.online;
        self.offline += other.offline;
        self.energy_j += other.energy_j;
        self.restarts += other.restarts;
        self.warm_restarts += other.warm_restarts;
        self.warm_migrations += other.warm_migrations;
        self.snapshot_errors += other.snapshot_errors;
        self.downtime_ms += other.downtime_ms;
        Ok(())
    }
}

/// The aggregate fleet report: configuration echo, telemetry, and the
/// savings distributions.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Epochs completed so far.
    pub epochs_run: u64,
    /// Accumulated statistics over all epochs and shards.
    pub totals: EpochStats,
}

impl FleetReport {
    /// An empty report for `config`.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            epochs_run: 0,
            totals: EpochStats::default(),
        }
    }

    /// Estimated controller cycles simulated (one per 2 000 ms control
    /// period per online device-epoch).
    pub fn controller_cycles(&self) -> u64 {
        self.totals.online * (self.config.epoch_ms / 2_000).max(1)
    }

    /// The full report as JSON (stable key order, deterministic
    /// serialization).
    pub fn to_json(&self) -> Json {
        let mut cfg = Json::object();
        cfg.set("devices", self.config.devices as f64);
        cfg.set("shards", self.config.shards as f64);
        cfg.set("epochs", self.config.epochs as f64);
        cfg.set("epoch_ms", self.config.epoch_ms as f64);
        cfg.set("seed", self.config.seed as f64);
        cfg.set("offline_rate", self.config.offline_rate);
        cfg.set("demand_quantum_ms", self.config.demand_quantum_ms as f64);

        let mut tel = Json::object();
        tel.set("restarts", self.totals.restarts as f64);
        tel.set("warm_restarts", self.totals.warm_restarts as f64);
        tel.set("warm_migrations", self.totals.warm_migrations as f64);
        tel.set("snapshot_errors", self.totals.snapshot_errors as f64);
        tel.set("downtime_ms", self.totals.downtime_ms as f64);

        let mut per_app = Json::object();
        for (idx, name) in roster_names().into_iter().enumerate() {
            per_app.set(name, self.savings_json(app_stream(idx)));
        }
        let mut per_fault = Json::object();
        for class in FaultClass::all() {
            per_fault.set(class.label(), self.savings_json(fault_stream(class)));
        }

        let mut j = Json::object();
        j.set("config", cfg);
        j.set("epochs_run", self.epochs_run as f64);
        j.set("device_epochs_online", self.totals.online as f64);
        j.set("device_epochs_offline", self.totals.offline as f64);
        j.set("controller_cycles", self.controller_cycles() as f64);
        j.set("energy_j", self.totals.energy_j);
        j.set("telemetry", tel);
        j.set("savings_per_app", per_app);
        j.set("savings_per_fault", per_fault);
        j
    }

    /// One stream's distribution with the report's historical key
    /// names (`count` = usable samples, `degenerate` = excluded
    /// device-epochs) plus the histogram-derived quantiles and
    /// non-empty buckets the columnar aggregator adds.
    fn savings_json(&self, stream: usize) -> Json {
        let s = &self.totals.savings;
        let mut j = Json::object();
        j.set("count", s.included(stream) as f64);
        j.set("degenerate", s.excluded(stream) as f64);
        j.set("mean_pct", s.mean(stream));
        j.set("std_pct", s.std(stream));
        j.set("min_pct", s.min(stream).unwrap_or(0.0));
        j.set("max_pct", s.max(stream).unwrap_or(0.0));
        for (key, q) in [("p50_pct", 0.5), ("p95_pct", 0.95), ("p99_pct", 0.99)] {
            j.set(key, s.quantile(stream, q).unwrap_or(0.0));
        }
        let buckets: Vec<Json> = s
            .buckets(stream)
            .map(|(le, n)| {
                let mut e = Json::object();
                e.set("le", le);
                e.set("n", n as f64);
                e
            })
            .collect();
        j.set("buckets", buckets);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_layout_is_dense_and_disjoint() {
        assert_eq!(roster_names().len(), APP_STREAMS);
        assert_eq!(FaultClass::all().len(), FAULT_STREAMS);
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..APP_STREAMS {
            assert!(seen.insert(app_stream(idx)));
        }
        for class in FaultClass::all() {
            assert!(seen.insert(fault_stream(class)));
        }
        assert_eq!(seen.len(), SAVINGS_STREAMS);
        assert_eq!(*seen.iter().max().unwrap_or(&0), SAVINGS_STREAMS - 1);
        assert_eq!(savings_agg().streams(), SAVINGS_STREAMS);
    }

    #[test]
    fn merging_epoch_stats_sums_counters_and_savings() {
        let mut a = EpochStats {
            online: 3,
            energy_j: 1.5,
            ..EpochStats::default()
        };
        a.savings.record(app_stream(0), 10.0);
        a.savings.record(app_stream(0), 20.0);
        let mut b = EpochStats {
            online: 2,
            offline: 1,
            energy_j: 0.5,
            ..EpochStats::default()
        };
        b.savings.record(app_stream(0), 30.0);
        b.savings.record_excluded(fault_stream(FaultClass::Healthy));
        a.merge(&b).unwrap();
        assert_eq!(a.online, 5);
        assert_eq!(a.offline, 1);
        assert!((a.energy_j - 2.0).abs() < 1e-12);
        assert_eq!(a.savings.included(app_stream(0)), 3);
        assert!((a.savings.mean(app_stream(0)) - 20.0).abs() < 1e-9);
        assert_eq!(a.savings.excluded(fault_stream(FaultClass::Healthy)), 1);
    }

    #[test]
    fn report_json_has_the_documented_top_level_keys() {
        let r = FleetReport::new(FleetConfig::smoke());
        let j = r.to_json();
        for key in [
            "config",
            "epochs_run",
            "device_epochs_online",
            "device_epochs_offline",
            "controller_cycles",
            "energy_j",
            "telemetry",
            "savings_per_app",
            "savings_per_fault",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let per_app = j.get("savings_per_app").expect("per_app");
        for name in roster_names() {
            let entry = per_app.get(name).expect(name);
            for key in [
                "count",
                "degenerate",
                "mean_pct",
                "std_pct",
                "min_pct",
                "max_pct",
            ] {
                assert!(entry.get(key).is_some(), "missing {name}.{key}");
            }
        }
    }

    #[test]
    fn empty_report_serializes_finite_numbers() {
        let text = FleetReport::new(FleetConfig::smoke()).to_json().to_pretty();
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }
}
