//! Shard execution: one shard-epoch runs every online device in the
//! shard's id range for `epoch_ms`, warm-migrating controller state
//! from the previous epoch through [`Supervisor::migrate_in`] /
//! [`Supervisor::migrate_out`].
//!
//! A shard's state is struct-of-arrays and `Send`-only: serialized
//! controller snapshots, never live `Device`s (a `Device` holds
//! non-`Send` observability handles, so devices are constructed fresh
//! inside each shard-epoch job).

use crate::report::{app_stream, fault_stream, EpochStats};
use crate::spec::{DeviceSpec, FleetConfig, FleetError};
use crate::store::PolicyStore;
use asgov_core::{
    ControllerBuilder, SnapshotError, SnapshotReader, SnapshotWriter, Supervisor, SupervisorConfig,
};
use asgov_governors::AdrenoTz;
use asgov_soc::{event, Device, DeviceConfig, Policy, Workload as _};
use asgov_util::Rng;
use asgov_workloads::BackgroundLoad;

/// Supervision tuning for fleet devices: checkpoints on the control
/// cycle, quick restarts (an epoch is only seconds long).
fn supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        max_restarts: 8,
        backoff_base_ms: 50,
        backoff_max_ms: 400,
        checkpoint_period_ms: 2_000,
        warm: true,
    }
}

/// A shard's persistent state between epochs: the controller snapshot
/// of every device in the shard (struct-of-arrays — ids are implicit
/// in the position within the shard's contiguous range).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard index (`0..cfg.shards`).
    pub shard: u64,
    /// The next epoch this shard will run.
    pub next_epoch: u64,
    /// Per-device controller snapshot carried to the next epoch
    /// (`None` until the device's first online epoch completes).
    pub snapshots: Vec<Option<Vec<u8>>>,
}

impl ShardState {
    /// Fresh state for `shard` under `cfg` (no snapshots yet).
    pub fn new(cfg: &FleetConfig, shard: u64) -> Self {
        let (_, count) = cfg.shard_range(shard);
        Self {
            shard,
            next_epoch: 0,
            snapshots: vec![None; count as usize],
        }
    }

    /// Encode the shard state as a framed snapshot (CRC-protected, so
    /// truncation and bit-flips decode to [`SnapshotError`], never
    /// panic).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] if a device snapshot or the frame
    /// overflows the u32 length prefix.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.shard);
        w.put_u64(self.next_epoch);
        w.put_u64(self.snapshots.len() as u64);
        for snap in &self.snapshots {
            w.put_opt_bytes(snap.as_deref())?;
        }
        w.finish()
    }

    /// Decode a shard state previously encoded by
    /// [`ShardState::snapshot_bytes`], validating it against `cfg`
    /// (shard index in range, device count matching the partition).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on damage, truncation, or a frame that
    /// does not match `cfg`'s partition.
    pub fn restore_bytes(cfg: &FleetConfig, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let shard = r.take_u64()?;
        let next_epoch = r.take_u64()?;
        let count = r.take_u64()?;
        asgov_core::persist::ensure(shard < cfg.shards)?;
        asgov_core::persist::ensure(next_epoch <= cfg.epochs)?;
        let (_, expected) = cfg.shard_range(shard);
        asgov_core::persist::ensure(count == expected)?;
        let mut snapshots = Vec::with_capacity(count as usize);
        for _ in 0..count {
            snapshots.push(r.take_opt_bytes()?.map(<[u8]>::to_vec));
        }
        r.finish()?;
        Ok(Self {
            shard,
            next_epoch,
            snapshots,
        })
    }
}

/// Run one epoch of `prev`'s shard without mutating it: clones the
/// state and delegates to [`run_epoch_into`]. Convenience wrapper for
/// callers that want value semantics; the hot pipelined path mutates
/// shard state in place instead.
///
/// # Errors
///
/// [`FleetError::UnknownSignature`] if a device's `(app, load)` pair
/// is missing from `store`.
pub fn run_epoch(
    cfg: &FleetConfig,
    store: &PolicyStore,
    prev: &ShardState,
) -> Result<(ShardState, EpochStats), FleetError> {
    let mut state = prev.clone();
    let stats = run_epoch_into(cfg, store, &mut state)?;
    Ok((state, stats))
}

/// Run one epoch of `state`'s shard in place: simulate every online
/// device for `cfg.epoch_ms`, moving each carried controller snapshot
/// out of its slot and the successor snapshot back in (no per-device
/// clones), then advance `state.next_epoch`.
///
/// Pure per shard: every draw derives from
/// `(cfg.seed, device_id, epoch)`, so the result is independent of
/// which worker thread runs it and identical to the value-semantics
/// [`run_epoch`].
///
/// # Errors
///
/// [`FleetError::UnknownSignature`] if a device's `(app, load)` pair
/// is missing from `store`. On error `state` is left partially
/// advanced (some snapshots replaced, `next_epoch` unchanged) and
/// must be discarded.
pub fn run_epoch_into(
    cfg: &FleetConfig,
    store: &PolicyStore,
    state: &mut ShardState,
) -> Result<EpochStats, FleetError> {
    let (start, count) = cfg.shard_range(state.shard);
    let epoch = state.next_epoch;
    let mut stats = EpochStats::default();

    for i in 0..count {
        let device_id = start + i;
        let spec = DeviceSpec::derive(cfg.seed, device_id);
        let epoch_seed = spec.epoch_seed(cfg.seed, epoch);
        let mut rng = Rng::seed_from_u64(epoch_seed);

        // Offline churn: the device misses this epoch entirely; its
        // controller snapshot stays in its slot unchanged.
        if rng.gen_bool(cfg.offline_rate) {
            stats.offline += 1;
            continue;
        }

        let sig = spec.signature();
        let policy = store
            .get(&sig)
            .ok_or_else(|| FleetError::UnknownSignature(sig.clone()))?;

        let Some(mut app) = crate::spec::build_app(
            spec.app,
            BackgroundLoad::with_level(spec.load, rng.next_u64()),
            cfg.demand_quantum_ms,
        ) else {
            return Err(FleetError::UnknownSignature(sig));
        };

        let mut device = Device::new(DeviceConfig::nexus6().with_seed(rng.next_u64()));
        if let Some(injector) = spec.fault_injector(cfg.epoch_ms, rng.next_u64()) {
            device.install_faults(injector);
        }

        let factory_profile = policy.profile.clone();
        let target = policy.target_gips;
        let mut supervisor = Supervisor::new(
            move || {
                ControllerBuilder::new(factory_profile.clone())
                    .target_gips(target)
                    .seed(epoch_seed)
                    .build()
            },
            supervisor_config(),
        );
        // Move the carried snapshot out of its slot — the successor
        // snapshot is written back below, so nothing is cloned.
        let carried = state.snapshots.get_mut(i as usize).and_then(Option::take);
        if let Some(snapshot) = carried {
            supervisor.migrate_in(snapshot);
        }

        let mut gpu_gov = AdrenoTz::default();
        app.reset();
        let report = {
            let mut policies: [&mut dyn Policy; 2] = [&mut gpu_gov, &mut supervisor];
            event::run(&mut device, &mut app, &mut policies, cfg.epoch_ms)
        };
        if let Some(slot) = state.snapshots.get_mut(i as usize) {
            *slot = supervisor.migrate_out(device.now_ms());
        }

        stats.online += 1;
        stats.energy_j += report.energy_j;
        stats.restarts += supervisor.restarts();
        stats.warm_restarts += supervisor.warm_restarts();
        stats.warm_migrations += supervisor.warm_migrations();
        stats.snapshot_errors += supervisor.snapshot_errors();
        stats.downtime_ms += supervisor.downtime_ms();

        let base = policy.baseline_energy_j;
        if base.is_finite() && base > 0.0 {
            let savings = (base - report.energy_j) / base * 100.0;
            stats.savings.record(app_stream(spec.app_idx), savings);
            stats
                .savings
                .record(fault_stream(spec.fault_class), savings);
        } else {
            stats.savings.record_excluded(app_stream(spec.app_idx));
            stats
                .savings
                .record_excluded(fault_stream(spec.fault_class));
        }
    }

    state.next_epoch = epoch + 1;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_state_round_trips_through_the_codec() {
        let cfg = FleetConfig {
            devices: 10,
            shards: 3,
            ..FleetConfig::smoke()
        };
        let mut state = ShardState::new(&cfg, 1);
        state.next_epoch = 2;
        state.snapshots = vec![Some(vec![1, 2, 3]), None, Some(vec![9; 40]), None];
        let bytes = state.snapshot_bytes().expect("small frame");
        let back = ShardState::restore_bytes(&cfg, &bytes).expect("clean frame");
        assert_eq!(back, state);
    }

    #[test]
    fn restore_rejects_mismatched_partitions() {
        let cfg = FleetConfig {
            devices: 10,
            shards: 3,
            ..FleetConfig::smoke()
        };
        let state = ShardState::new(&cfg, 0);
        let bytes = state.snapshot_bytes().expect("small frame");
        // A config with a different partition must refuse the frame.
        let other = FleetConfig {
            devices: 100,
            shards: 3,
            ..FleetConfig::smoke()
        };
        assert!(ShardState::restore_bytes(&other, &bytes).is_err());
    }
}
