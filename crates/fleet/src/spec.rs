//! Fleet configuration and the deterministic derivation of per-device
//! identity: which app a device runs, under what background load, and
//! which fault class its epochs draw from.
//!
//! Everything a device does derives from `(fleet_seed, device_id)` (its
//! stable identity) and `(fleet_seed, device_id, epoch)` (its per-epoch
//! randomness). No draw depends on shard iteration state or thread
//! scheduling, which is what makes the fleet bit-identical at any
//! thread count and restartable from a mid-run checkpoint.

use asgov_soc::{FaultInjector, FaultKind, FaultPlan};
use asgov_util::Rng;
use asgov_workloads::{apps, BackgroundLoad, LoadLevel, PhasedApp};

/// A fleet run description. All fields are part of the deterministic
/// identity of the run except `threads`, which must not change any
/// result (the differential suite pins this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub devices: u64,
    /// Number of shards the devices are partitioned into. The partition
    /// is fixed by this field alone — never by the worker count.
    pub shards: u64,
    /// Serving epochs to run. Each epoch simulates every online device
    /// for `epoch_ms` and warm-migrates controller state to the next.
    pub epochs: u64,
    /// Simulated milliseconds per epoch.
    pub epoch_ms: u64,
    /// Master seed all per-device and per-epoch randomness derives
    /// from.
    pub seed: u64,
    /// Worker threads for the shard fan-out (`0` = machine default).
    /// Results are identical for every value.
    pub threads: usize,
    /// Per-epoch probability that a device is offline (powered down,
    /// out of coverage) and skips the epoch entirely.
    pub offline_rate: f64,
    /// Demand quantum for device workloads, simulated ms (`1` = the
    /// exact per-ms arrival model; larger values run rate-based apps
    /// on the coarse windowed model — see `PhasedApp::with_quantum`).
    /// Part of the run's deterministic identity: it changes simulated
    /// trajectories, so checkpoints pin it like the seed.
    pub demand_quantum_ms: u64,
}

impl FleetConfig {
    /// The CI smoke configuration: 1 000 devices, quick to run.
    pub fn smoke() -> Self {
        Self {
            devices: 1_000,
            shards: 16,
            epochs: 2,
            epoch_ms: 4_000,
            seed: 0xf1ee7,
            threads: 0,
            offline_rate: 0.05,
            demand_quantum_ms: 1,
        }
    }

    /// The benchmark configuration: 100 000 devices.
    pub fn bench() -> Self {
        Self {
            devices: 100_000,
            shards: 256,
            ..Self::smoke()
        }
    }

    /// The million-device tier: 10⁶ devices over 1 024 shards with a
    /// 20 ms demand quantum (the coarse workload model is what makes
    /// this tier tractable; smoke/bench keep the exact per-ms model).
    pub fn bench_1m() -> Self {
        Self {
            devices: 1_000_000,
            shards: 1_024,
            demand_quantum_ms: 20,
            ..Self::smoke()
        }
    }

    /// Check the configuration invariants.
    ///
    /// # Errors
    ///
    /// [`FleetError::BadConfig`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.devices == 0 {
            return Err(FleetError::BadConfig("devices must be positive".into()));
        }
        if self.shards == 0 || self.shards > self.devices {
            return Err(FleetError::BadConfig(
                "shards must be in 1..=devices".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(FleetError::BadConfig("epochs must be positive".into()));
        }
        if self.epoch_ms == 0 {
            return Err(FleetError::BadConfig("epoch_ms must be positive".into()));
        }
        if !(self.offline_rate.is_finite() && (0.0..1.0).contains(&self.offline_rate)) {
            return Err(FleetError::BadConfig(
                "offline_rate must be finite and in [0, 1)".into(),
            ));
        }
        if self.demand_quantum_ms == 0 {
            return Err(FleetError::BadConfig(
                "demand_quantum_ms must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Devices per shard (the last shard may hold fewer).
    pub fn devices_per_shard(&self) -> u64 {
        self.devices.div_ceil(self.shards)
    }

    /// The contiguous `[start, start + count)` device-id range owned by
    /// `shard`. Empty (`count == 0`) for trailing shards when the ceil
    /// partition over-covers.
    pub fn shard_range(&self, shard: u64) -> (u64, u64) {
        let per = self.devices_per_shard();
        let start = shard.saturating_mul(per).min(self.devices);
        let count = per.min(self.devices - start);
        (start, count)
    }
}

/// Errors surfaced by fleet construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The configuration violates an invariant (message names it).
    BadConfig(String),
    /// A device referenced a `(app, load)` signature absent from the
    /// policy store — the store was resolved for a different roster.
    UnknownSignature(String),
    /// A snapshot frame failed to encode or decode.
    Snapshot(asgov_core::SnapshotError),
    /// Columnar savings aggregates disagreed on stream layout while
    /// merging — only possible when a checkpoint from an incompatible
    /// version survives frame validation.
    StatsLayout,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::BadConfig(msg) => write!(f, "bad fleet config: {msg}"),
            FleetError::UnknownSignature(sig) => {
                write!(f, "no stored policy for signature {sig:?}")
            }
            FleetError::Snapshot(e) => write!(f, "fleet snapshot: {e}"),
            FleetError::StatsLayout => write!(f, "savings aggregator layout mismatch"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<asgov_core::SnapshotError> for FleetError {
    fn from(e: asgov_core::SnapshotError) -> Self {
        FleetError::Snapshot(e)
    }
}

/// splitmix64 finalizer: a cheap, well-mixed hash for deriving
/// independent seed streams from `(seed, id, salt)` tuples.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive an independent 64-bit seed from three components.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

/// Salt separating the stable device-identity stream from per-epoch
/// streams.
const SALT_IDENTITY: u64 = 0x1d;
/// Salt for the per-epoch device stream (sim noise, churn, faults).
const SALT_EPOCH: u64 = 0xe7;

/// Constructor for a roster application under a given background load.
type AppCtor = fn(BackgroundLoad) -> PhasedApp;

/// The applications fleet devices run, with their constructors. Batch
/// apps (VidCon, MobileBench) complete early within an epoch; the rest
/// run the full epoch window.
const ROSTER: [(&str, AppCtor); 6] = [
    ("VidCon", apps::vidcon),
    ("MobileBench", apps::mobilebench),
    ("AngryBirds", apps::angrybirds),
    ("WeChat", apps::wechat),
    ("MXPlayer", apps::mxplayer),
    ("Spotify", apps::spotify),
];

/// Roster application names, in roster order. This order defines the
/// per-app stream indices of the columnar savings aggregator.
pub fn roster_names() -> [&'static str; 6] {
    ROSTER.map(|(name, _)| name)
}

/// Every `(app, load)` signature a fleet device can draw, in roster
/// order. The policy store must resolve exactly this set.
pub fn roster_signatures() -> Vec<(String, &'static str, LoadLevel)> {
    let mut out = Vec::new();
    for (name, _) in ROSTER {
        for load in [LoadLevel::Baseline, LoadLevel::None, LoadLevel::Heavy] {
            out.push((signature(name, load), name, load));
        }
    }
    out
}

/// The store key for an `(app, load)` pair, e.g. `"WeChat/BL"`.
pub fn signature(app: &str, load: LoadLevel) -> String {
    format!("{app}/{}", load.label())
}

/// Construct the roster app named `app` with the given background
/// load and demand quantum. `None` for names outside the roster.
/// `quantum_ms == 1` is the exact per-ms model; larger quanta switch
/// rate-based apps to the coarse windowed model (batch apps ignore the
/// quantum — see `PhasedApp::with_quantum`).
pub fn build_app(app: &str, load: BackgroundLoad, quantum_ms: u64) -> Option<PhasedApp> {
    ROSTER
        .iter()
        .find(|(name, _)| *name == app)
        .map(|(_, ctor)| ctor(load).with_quantum(quantum_ms))
}

/// The fault environment a device lives in, fixed for its lifetime.
/// Every epoch draws that class's fault windows afresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// No injected faults.
    Healthy,
    /// The controller daemon is killed mid-epoch (LMK/OOM).
    ControllerKill,
    /// Kills plus corrupted checkpoint images (torn flash writes).
    CheckpointCorrupt,
    /// Perf readings are lost for a stretch of the epoch.
    PerfDropout,
    /// Transient `-EBUSY` on sysfs writes.
    SysfsBusy,
    /// msm-thermal clamps the CPU frequency mid-epoch.
    ThermalClamp,
    /// An external agent resets `scaling_governor`.
    GovernorReset,
}

impl FaultClass {
    /// Machine-readable label used as the report's distribution key.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Healthy => "healthy",
            FaultClass::ControllerKill => "controller-kill",
            FaultClass::CheckpointCorrupt => "checkpoint-corrupt",
            FaultClass::PerfDropout => "perf-dropout",
            FaultClass::SysfsBusy => "sysfs-busy",
            FaultClass::ThermalClamp => "thermal-clamp",
            FaultClass::GovernorReset => "governor-reset",
        }
    }

    /// This class's position in [`FaultClass::all`] — the per-fault
    /// stream offset of the columnar savings aggregator.
    pub fn index(self) -> usize {
        match self {
            FaultClass::Healthy => 0,
            FaultClass::ControllerKill => 1,
            FaultClass::CheckpointCorrupt => 2,
            FaultClass::PerfDropout => 3,
            FaultClass::SysfsBusy => 4,
            FaultClass::ThermalClamp => 5,
            FaultClass::GovernorReset => 6,
        }
    }

    /// All classes, in report order.
    pub fn all() -> [FaultClass; 7] {
        [
            FaultClass::Healthy,
            FaultClass::ControllerKill,
            FaultClass::CheckpointCorrupt,
            FaultClass::PerfDropout,
            FaultClass::SysfsBusy,
            FaultClass::ThermalClamp,
            FaultClass::GovernorReset,
        ]
    }

    /// Weighted draw: healthy devices dominate (40 %), the fault
    /// classes split the rest.
    fn draw(rng: &mut Rng) -> Self {
        match rng.gen_range_usize(0..100) {
            0..=39 => FaultClass::Healthy,
            40..=54 => FaultClass::ControllerKill,
            55..=64 => FaultClass::CheckpointCorrupt,
            65..=74 => FaultClass::PerfDropout,
            75..=84 => FaultClass::SysfsBusy,
            85..=92 => FaultClass::ThermalClamp,
            _ => FaultClass::GovernorReset,
        }
    }
}

/// A device's stable identity: derived once from
/// `(fleet_seed, device_id)`, identical in every epoch and on every
/// thread.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Fleet-wide device id (`0..devices`).
    pub device_id: u64,
    /// Roster application name.
    pub app: &'static str,
    /// Roster index of `app` (the aggregator's per-app stream).
    pub app_idx: usize,
    /// Background-load scenario.
    pub load: LoadLevel,
    /// Fault environment.
    pub fault_class: FaultClass,
}

impl DeviceSpec {
    /// Derive device `device_id`'s identity under `fleet_seed`.
    pub fn derive(fleet_seed: u64, device_id: u64) -> Self {
        let mut rng = Rng::seed_from_u64(mix3(fleet_seed, device_id, SALT_IDENTITY));
        let app_idx = rng.gen_range_usize(0..ROSTER.len());
        let app = ROSTER.get(app_idx).map_or("WeChat", |(name, _)| *name);
        let load = match rng.gen_range_usize(0..3) {
            0 => LoadLevel::Baseline,
            1 => LoadLevel::None,
            _ => LoadLevel::Heavy,
        };
        let fault_class = FaultClass::draw(&mut rng);
        Self {
            device_id,
            app,
            app_idx,
            load,
            fault_class,
        }
    }

    /// The policy-store key for this device.
    pub fn signature(&self) -> String {
        signature(self.app, self.load)
    }

    /// The seed for everything this device does in `epoch`: simulator
    /// noise, background-load wander, fault firing, churn.
    pub fn epoch_seed(&self, fleet_seed: u64, epoch: u64) -> u64 {
        mix3(fleet_seed, self.device_id, SALT_EPOCH ^ mix(epoch))
    }

    /// Build the epoch's fault injector (`None` for fault-free epochs).
    /// The plan depends only on the fault class and `epoch_ms`; the
    /// injector's own randomness comes from `seed`.
    pub fn fault_injector(&self, epoch_ms: u64, seed: u64) -> Option<FaultInjector> {
        let e = epoch_ms;
        let plan = match self.fault_class {
            FaultClass::Healthy => return None,
            FaultClass::ControllerKill => FaultPlan::new()
                .window(e / 4, e / 4 + 200, FaultKind::ControllerKill)
                .ok()?
                .window(5 * e / 8, 5 * e / 8 + 200, FaultKind::ControllerKill)
                .ok()?,
            FaultClass::CheckpointCorrupt => FaultPlan::new()
                .window_p(1, e, 0.5, FaultKind::CheckpointCorrupt)
                .ok()?
                .window(5 * e / 8, 5 * e / 8 + 200, FaultKind::ControllerKill)
                .ok()?,
            FaultClass::PerfDropout => FaultPlan::new()
                .window_p(e / 4, 3 * e / 4, 0.3, FaultKind::PerfDropout)
                .ok()?,
            FaultClass::SysfsBusy => FaultPlan::new()
                .window_p(1, e, 0.2, FaultKind::SysfsBusy)
                .ok()?,
            FaultClass::ThermalClamp => FaultPlan::new()
                .window(e / 3, 2 * e / 3, FaultKind::ThermalClamp(6))
                .ok()?,
            FaultClass::GovernorReset => FaultPlan::new()
                .window(
                    e / 2,
                    e / 2 + 100,
                    FaultKind::GovernorReset("interactive".to_string()),
                )
                .ok()?,
        };
        Some(FaultInjector::new(plan, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_each_bad_field() {
        let ok = FleetConfig::smoke();
        assert!(ok.validate().is_ok());
        for bad in [
            FleetConfig { devices: 0, ..ok },
            FleetConfig { shards: 0, ..ok },
            FleetConfig {
                shards: ok.devices + 1,
                ..ok
            },
            FleetConfig { epochs: 0, ..ok },
            FleetConfig { epoch_ms: 0, ..ok },
            FleetConfig {
                offline_rate: 1.0,
                ..ok
            },
            FleetConfig {
                offline_rate: f64::NAN,
                ..ok
            },
            FleetConfig {
                demand_quantum_ms: 0,
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn presets_validate_and_tier_sizes_are_ordered() {
        for cfg in [
            FleetConfig::smoke(),
            FleetConfig::bench(),
            FleetConfig::bench_1m(),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
        assert!(FleetConfig::smoke().devices < FleetConfig::bench().devices);
        assert!(FleetConfig::bench().devices < FleetConfig::bench_1m().devices);
        assert_eq!(FleetConfig::bench_1m().devices, 1_000_000);
        // Smoke and bench stay on the exact per-ms model so their
        // committed results remain comparable across versions.
        assert_eq!(FleetConfig::smoke().demand_quantum_ms, 1);
        assert_eq!(FleetConfig::bench().demand_quantum_ms, 1);
        assert!(FleetConfig::bench_1m().demand_quantum_ms > 1);
    }

    #[test]
    fn fault_index_matches_all_order() {
        for (i, class) in FaultClass::all().into_iter().enumerate() {
            assert_eq!(class.index(), i, "{}", class.label());
        }
    }

    #[test]
    fn shard_ranges_partition_the_devices_exactly() {
        for (devices, shards) in [(10u64, 3u64), (1000, 16), (7, 7), (5, 1), (100, 13)] {
            let cfg = FleetConfig {
                devices,
                shards,
                ..FleetConfig::smoke()
            };
            let mut covered = 0;
            let mut next = 0;
            for s in 0..shards {
                let (start, count) = cfg.shard_range(s);
                assert_eq!(start, next.min(devices));
                next = start + count;
                covered += count;
            }
            assert_eq!(covered, devices, "{devices} devices over {shards} shards");
        }
    }

    #[test]
    fn device_specs_are_stable_and_cover_the_roster() {
        let seed = 0xf1ee7;
        let mut apps_seen = std::collections::BTreeSet::new();
        let mut faults_seen = std::collections::BTreeSet::new();
        for id in 0..500 {
            let a = DeviceSpec::derive(seed, id);
            let b = DeviceSpec::derive(seed, id);
            assert_eq!(a, b, "identity must be a pure function of (seed, id)");
            apps_seen.insert(a.app);
            faults_seen.insert(a.fault_class.label());
        }
        assert_eq!(apps_seen.len(), ROSTER.len(), "all roster apps drawn");
        assert_eq!(
            faults_seen.len(),
            FaultClass::all().len(),
            "all fault classes drawn"
        );
    }

    #[test]
    fn epoch_seeds_differ_across_devices_and_epochs() {
        let spec0 = DeviceSpec::derive(1, 0);
        let spec1 = DeviceSpec::derive(1, 1);
        assert_ne!(spec0.epoch_seed(1, 0), spec0.epoch_seed(1, 1));
        assert_ne!(spec0.epoch_seed(1, 0), spec1.epoch_seed(1, 0));
        assert_ne!(spec0.epoch_seed(1, 0), spec0.epoch_seed(2, 0));
    }

    #[test]
    fn fault_plans_build_for_every_class() {
        for (i, class) in FaultClass::all().into_iter().enumerate() {
            let spec = DeviceSpec {
                device_id: i as u64,
                app: "WeChat",
                app_idx: 3,
                load: LoadLevel::Baseline,
                fault_class: class,
            };
            let inj = spec.fault_injector(4_000, 7);
            assert_eq!(
                inj.is_some(),
                class != FaultClass::Healthy,
                "{} plan presence",
                class.label()
            );
        }
    }

    #[test]
    fn signatures_enumerate_apps_times_loads() {
        let sigs = roster_signatures();
        assert_eq!(sigs.len(), ROSTER.len() * 3);
        let unique: std::collections::BTreeSet<_> =
            sigs.iter().map(|(s, _, _)| s.clone()).collect();
        assert_eq!(unique.len(), sigs.len(), "signatures must be unique");
    }
}
