//! Property-based tests of the profile table: TSV and JSON round-trips
//! for arbitrary tables, interpolation bounds, and load-model convexity.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_profiler::{Config, LoadModel, LoadSignature, ProfileEntry, ProfileTable};
use asgov_soc::{BwIndex, FreqIndex, GpuFreqIndex};
use asgov_util::Rng;

fn random_entry(rng: &mut Rng) -> ProfileEntry {
    let gpu = if rng.gen_bool(0.3) {
        Some(GpuFreqIndex(rng.gen_range_usize(0..5)))
    } else {
        None
    };
    ProfileEntry {
        config: Config {
            freq: FreqIndex(rng.gen_range_usize(0..18)),
            bw: BwIndex(rng.gen_range_usize(0..13)),
            gpu,
        },
        speedup: rng.gen_range(0.1..10.0),
        power_w: rng.gen_range(0.5..8.0),
        measured: rng.gen_bool(0.5),
    }
}

fn random_name(rng: &mut Rng) -> String {
    const HEAD: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 _-";
    let len = rng.gen_range_usize(0..21);
    let mut s = String::new();
    s.push(HEAD[rng.gen_range_usize(0..HEAD.len())] as char);
    for _ in 0..len {
        s.push(TAIL[rng.gen_range_usize(0..TAIL.len())] as char);
    }
    s
}

fn random_table(rng: &mut Rng) -> ProfileTable {
    let n = rng.gen_range_usize(1..60);
    ProfileTable {
        app: random_name(rng),
        base_gips: rng.gen_range(0.01..5.0),
        entries: (0..n).map(|_| random_entry(rng)).collect(),
    }
}

/// Any table survives the TSV round-trip bit-exactly (floats are
/// printed with full precision).
#[test]
fn tsv_round_trip() {
    let mut rng = Rng::seed_from_u64(0xf0_0001);
    for case in 0..256 {
        let table = random_table(&mut rng);
        let tsv = table.to_tsv();
        let back = ProfileTable::from_tsv(&tsv).expect("own output must parse");
        assert_eq!(table, back, "case {case}");
    }
}

/// Any table also survives the JSON round-trip bit-exactly.
#[test]
fn json_round_trip() {
    let mut rng = Rng::seed_from_u64(0xf0_0002);
    for case in 0..256 {
        let table = random_table(&mut rng);
        let json = table.to_json();
        let back = ProfileTable::from_json(&json).expect("own output must parse");
        assert_eq!(table, back, "case {case}");
    }
}

/// Vector accessors agree with the entries.
#[test]
fn vectors_match_entries() {
    let mut rng = Rng::seed_from_u64(0xf0_0003);
    for case in 0..256 {
        let table = random_table(&mut rng);
        let speedups = table.speedups();
        let powers = table.powers();
        assert_eq!(speedups.len(), table.len(), "case {case}");
        for (i, e) in table.entries.iter().enumerate() {
            assert_eq!(speedups[i], e.speedup, "case {case}");
            assert_eq!(powers[i], e.power_w, "case {case}");
            assert_eq!(table.config(i), e.config, "case {case}");
        }
        assert!(table.min_speedup() <= table.max_speedup(), "case {case}");
    }
}

/// Load-model output is always within the convex hull of its anchor
/// profiles, row by row.
#[test]
fn load_model_convex() {
    let mut rng = Rng::seed_from_u64(0xf0_0004);
    for case in 0..128 {
        let base_lo = rng.gen_range(0.05..1.0);
        let base_hi = rng.gen_range(0.05..1.0);
        let n = rng.gen_range_usize(2..20);
        let query = rng.gen_range(0.0..0.5);
        let mk = |base: f64, tilt: f64| ProfileTable {
            app: "m".into(),
            base_gips: base,
            entries: (0..n)
                .map(|i| ProfileEntry {
                    config: Config {
                        freq: FreqIndex(i % 18),
                        bw: BwIndex(i % 13),
                        gpu: None,
                    },
                    speedup: 1.0 + i as f64 * 0.3 + tilt,
                    power_w: 1.0 + i as f64 * 0.2 + tilt,
                    measured: true,
                })
                .collect(),
        };
        let lo = mk(base_lo, 0.0);
        let hi = mk(base_hi, 0.5);
        let model = LoadModel::new(vec![
            (
                LoadSignature {
                    cpu_util: 0.05,
                    traffic_mbps: 0.0,
                },
                lo.clone(),
            ),
            (
                LoadSignature {
                    cpu_util: 0.30,
                    traffic_mbps: 0.0,
                },
                hi.clone(),
            ),
        ])
        .unwrap();
        let out = model
            .table_for(&LoadSignature {
                cpu_util: query,
                traffic_mbps: 0.0,
            })
            .unwrap();
        for ((o, l), h) in out.entries.iter().zip(&lo.entries).zip(&hi.entries) {
            let (smin, smax) = (l.speedup.min(h.speedup), l.speedup.max(h.speedup));
            assert!(
                o.speedup >= smin - 1e-9 && o.speedup <= smax + 1e-9,
                "case {case}"
            );
            let (pmin, pmax) = (l.power_w.min(h.power_w), l.power_w.max(h.power_w));
            assert!(
                o.power_w >= pmin - 1e-9 && o.power_w <= pmax + 1e-9,
                "case {case}"
            );
        }
        let (bmin, bmax) = (base_lo.min(base_hi), base_lo.max(base_hi));
        assert!(
            out.base_gips >= bmin - 1e-9 && out.base_gips <= bmax + 1e-9,
            "case {case}"
        );
    }
}
