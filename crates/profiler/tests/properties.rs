//! Property-based tests of the profile table: TSV round-trips for
//! arbitrary tables, interpolation bounds, and load-model convexity.

use asgov_profiler::{Config, LoadModel, LoadSignature, ProfileEntry, ProfileTable};
use asgov_soc::{BwIndex, FreqIndex, GpuFreqIndex};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = ProfileEntry> {
    (
        0usize..18,
        0usize..13,
        prop::option::of(0usize..5),
        0.1f64..10.0,
        0.5f64..8.0,
        any::<bool>(),
    )
        .prop_map(|(f, b, g, speedup, power, measured)| ProfileEntry {
            config: Config {
                freq: FreqIndex(f),
                bw: BwIndex(b),
                gpu: g.map(GpuFreqIndex),
            },
            speedup,
            power_w: power,
            measured,
        })
}

fn table_strategy() -> impl Strategy<Value = ProfileTable> {
    (
        "[A-Za-z][A-Za-z0-9 _-]{0,20}",
        0.01f64..5.0,
        prop::collection::vec(entry_strategy(), 1..60),
    )
        .prop_map(|(app, base_gips, entries)| ProfileTable {
            app,
            base_gips,
            entries,
        })
}

proptest! {
    /// Any table survives the TSV round-trip bit-exactly (floats are
    /// printed with full precision).
    #[test]
    fn tsv_round_trip(table in table_strategy()) {
        let tsv = table.to_tsv();
        let back = ProfileTable::from_tsv(&tsv).expect("own output must parse");
        prop_assert_eq!(table, back);
    }

    /// Vector accessors agree with the entries.
    #[test]
    fn vectors_match_entries(table in table_strategy()) {
        let speedups = table.speedups();
        let powers = table.powers();
        prop_assert_eq!(speedups.len(), table.len());
        for (i, e) in table.entries.iter().enumerate() {
            prop_assert_eq!(speedups[i], e.speedup);
            prop_assert_eq!(powers[i], e.power_w);
            prop_assert_eq!(table.config(i), e.config);
        }
        prop_assert!(table.min_speedup() <= table.max_speedup());
    }

    /// Load-model output is always within the convex hull of its anchor
    /// profiles, row by row.
    #[test]
    fn load_model_convex(
        base_lo in 0.05f64..1.0,
        base_hi in 0.05f64..1.0,
        n in 2usize..20,
        query in 0.0f64..0.5,
    ) {
        let mk = |base: f64, tilt: f64| ProfileTable {
            app: "m".into(),
            base_gips: base,
            entries: (0..n)
                .map(|i| ProfileEntry {
                    config: Config {
                        freq: FreqIndex(i % 18),
                        bw: BwIndex(i % 13),
                        gpu: None,
                    },
                    speedup: 1.0 + i as f64 * 0.3 + tilt,
                    power_w: 1.0 + i as f64 * 0.2 + tilt,
                    measured: true,
                })
                .collect(),
        };
        let lo = mk(base_lo, 0.0);
        let hi = mk(base_hi, 0.5);
        let model = LoadModel::new(vec![
            (LoadSignature { cpu_util: 0.05, traffic_mbps: 0.0 }, lo.clone()),
            (LoadSignature { cpu_util: 0.30, traffic_mbps: 0.0 }, hi.clone()),
        ])
        .unwrap();
        let out = model.table_for(&LoadSignature { cpu_util: query, traffic_mbps: 0.0 });
        for ((o, l), h) in out.entries.iter().zip(&lo.entries).zip(&hi.entries) {
            let (smin, smax) = (l.speedup.min(h.speedup), l.speedup.max(h.speedup));
            prop_assert!(o.speedup >= smin - 1e-9 && o.speedup <= smax + 1e-9);
            let (pmin, pmax) = (l.power_w.min(h.power_w), l.power_w.max(h.power_w));
            prop_assert!(o.power_w >= pmin - 1e-9 && o.power_w <= pmax + 1e-9);
        }
        let (bmin, bmax) = (base_lo.min(base_hi), base_lo.max(base_hi));
        prop_assert!(out.base_gips >= bmin - 1e-9 && out.base_gips <= bmax + 1e-9);
    }
}
