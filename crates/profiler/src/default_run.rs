//! Measuring the default-governor baseline (`R_def`, `P_def`, `T_def`,
//! `E_def` — paper §III-A) and arbitrary fixed-configuration runs.

use asgov_governors::{AdrenoTz, CpubwHwmon, Interactive};
use asgov_soc::sim::RunReport;
use asgov_soc::Workload as _;
use asgov_soc::{sim, Device, DeviceConfig, Policy};
use asgov_workloads::PhasedApp;

/// Aggregate of one or more baseline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DefaultMeasurement {
    /// Average performance `R_def`, GIPS — the controller's target.
    pub gips: f64,
    /// Average device power `P_def`, watts.
    pub power_w: f64,
    /// Average wall-clock time `T_def`, ms (run-to-completion for batch
    /// applications, the measurement window otherwise).
    pub duration_ms: f64,
    /// Average energy `E_def = P_def × T_def`, joules.
    pub energy_j: f64,
    /// The individual run reports (histograms for Figs. 1/4/5).
    pub reports: Vec<RunReport>,
}

impl DefaultMeasurement {
    fn from_reports(reports: Vec<RunReport>) -> Self {
        let n = reports.len() as f64;
        Self {
            gips: reports.iter().map(|r| r.avg_gips).sum::<f64>() / n,
            power_w: reports.iter().map(|r| r.avg_power_w).sum::<f64>() / n,
            duration_ms: reports.iter().map(|r| r.duration_ms as f64).sum::<f64>() / n,
            energy_j: reports.iter().map(|r| r.energy_j).sum::<f64>() / n,
            reports,
        }
    }
}

/// Run the application under the stock Android governors
/// (`interactive` + `cpubw_hwmon`), `runs` times, for at most `max_ms`
/// each (batch applications stop at completion).
pub fn measure_default(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    runs: usize,
    max_ms: u64,
) -> DefaultMeasurement {
    assert!(runs > 0, "need at least one run");
    let mut reports = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut device = Device::new(
            dev_cfg
                .clone()
                .with_seed(dev_cfg.seed ^ (0xd0 + run as u64)),
        );
        // `perf` runs during the default measurement too (paper §III-A
        // measures R_def with the same tooling as the online controller).
        device.set_tool_overhead(0.04, 0.015);
        let mut cpu = Interactive::default();
        let mut bw = CpubwHwmon::default();
        let mut gpu = AdrenoTz::default();
        app.reset();
        let report = sim::run(&mut device, app, &mut [&mut cpu, &mut bw, &mut gpu], max_ms);
        reports.push(report);
    }
    DefaultMeasurement::from_reports(reports)
}

/// Run the application under an arbitrary policy stack (e.g. the online
/// controller), `runs` times. The `make_policies` closure builds a fresh
/// policy stack per run.
pub fn measure_fixed<F>(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    runs: usize,
    max_ms: u64,
    mut make_policies: F,
) -> DefaultMeasurement
where
    F: FnMut() -> Vec<Box<dyn Policy>>,
{
    assert!(runs > 0, "need at least one run");
    let mut reports = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut device = Device::new(
            dev_cfg
                .clone()
                .with_seed(dev_cfg.seed ^ (0xf0 + run as u64)),
        );
        let mut policies = make_policies();
        let mut refs: Vec<&mut dyn Policy> =
            policies.iter_mut().map(|p| p as &mut dyn Policy).collect();
        app.reset();
        let report = sim::run(&mut device, app, &mut refs, max_ms);
        reports.push(report);
    }
    DefaultMeasurement::from_reports(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_workloads::{apps, BackgroundLoad};

    #[test]
    fn default_measurement_aggregates_runs() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let m = measure_default(&dev_cfg, &mut app, 2, 10_000);
        assert_eq!(m.reports.len(), 2);
        assert!(m.gips > 0.0);
        assert!(m.power_w > 0.8, "device draws at least base power");
        assert!((m.duration_ms - 10_000.0).abs() < 1.0);
        assert!((m.energy_j - m.power_w * 10.0).abs() < 0.5);
    }

    #[test]
    fn interactive_governor_visits_high_frequencies_for_spotify() {
        // The motivating observation: the default governor burns time at
        // f10+ even for an audio player.
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let m = measure_default(&dev_cfg, &mut app, 1, 60_000);
        let hist = m.reports[0].stats.freq_histogram();
        let high_mass: f64 = hist[9..].iter().sum();
        assert!(
            high_mass > 0.05,
            "default should spend real time at f10+, got {high_mass}"
        );
    }

    #[test]
    fn measure_fixed_runs_custom_policies() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let m = measure_fixed(&dev_cfg, &mut app, 1, 5_000, || {
            vec![
                Box::new(asgov_governors::PowersaveCpu) as Box<dyn Policy>,
                Box::new(asgov_governors::PowersaveBw) as Box<dyn Policy>,
            ]
        });
        let hist = m.reports[0].stats.freq_histogram();
        assert!((hist[0] - 1.0).abs() < 1e-9, "pinned to lowest frequency");
    }
}
