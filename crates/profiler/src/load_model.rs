//! Load-parameterized profile generation (paper §V-C, future work).
//!
//! The paper observes that a profile taken under the baseline load
//! loses accuracy when the runtime background load differs, and
//! envisions "a power and performance model which uses the system load
//! as the variable parameter", so the controller "can track the
//! background load and, using the models, generate power and
//! performance data for different configurations" without re-profiling.
//!
//! [`LoadModel`] implements that idea: it holds the same application's
//! profile taken under two or more known background-load intensities
//! and linearly interpolates (or clamps) every row's speedup and power
//! to the load measured at runtime.

use crate::table::{ProfileEntry, ProfileTable};
use std::error::Error;
use std::fmt;

/// A scalar background-load signature. The paper's BL/NL/HL scenarios
/// differ mostly in memory pressure, but CPU utilization is the
/// signature a controller can read cheaply from `/proc`, so the model
/// is parameterized by it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSignature {
    /// Mean background CPU utilization (0–1).
    pub cpu_util: f64,
    /// Mean background bus traffic, MBps.
    pub traffic_mbps: f64,
}

impl LoadSignature {
    /// Scalar interpolation key: utilization dominates, traffic breaks
    /// ties (normalized to the bandwidth floor of 762 MBps).
    fn key(&self) -> f64 {
        self.cpu_util + self.traffic_mbps / 762.0 * 0.1
    }
}

/// Errors constructing or evaluating a [`LoadModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModelError {
    /// Fewer than two anchor profiles were supplied.
    TooFewAnchors,
    /// Anchor profiles cover different configuration sets or apps.
    MismatchedProfiles,
    /// The interpolation key derived from a [`LoadSignature`] cannot be
    /// bracketed by the anchor set — e.g. the signature is NaN, or the
    /// anchor table has a hole. The controller should keep its current
    /// profile rather than crash.
    UnresolvableSignature {
        /// The interpolation key that could not be bracketed.
        key: f64,
    },
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::TooFewAnchors => {
                write!(f, "a load model needs at least two anchor profiles")
            }
            LoadModelError::MismatchedProfiles => write!(
                f,
                "anchor profiles must describe the same application and configurations"
            ),
            LoadModelError::UnresolvableSignature { key } => write!(
                f,
                "load signature key {key} cannot be bracketed by the anchor profiles"
            ),
        }
    }
}

impl Error for LoadModelError {}

/// Profiles of one application under several background loads, with
/// interpolation to unseen loads.
#[derive(Debug, Clone)]
pub struct LoadModel {
    anchors: Vec<(LoadSignature, ProfileTable)>,
}

impl LoadModel {
    /// Build a model from `(signature, profile)` anchors (order free).
    ///
    /// # Errors
    ///
    /// [`LoadModelError::TooFewAnchors`] for fewer than two anchors;
    /// [`LoadModelError::MismatchedProfiles`] if the anchors don't share
    /// an application name and configuration list.
    pub fn new(mut anchors: Vec<(LoadSignature, ProfileTable)>) -> Result<Self, LoadModelError> {
        if anchors.len() < 2 {
            return Err(LoadModelError::TooFewAnchors);
        }
        let first = &anchors[0].1;
        for (_, t) in &anchors[1..] {
            if t.app != first.app
                || t.len() != first.len()
                || (0..t.len()).any(|i| t.config(i) != first.config(i))
            {
                return Err(LoadModelError::MismatchedProfiles);
            }
        }
        anchors.sort_by(|a, b| a.0.key().total_cmp(&b.0.key()));
        Ok(Self { anchors })
    }

    /// Number of anchor profiles.
    pub fn num_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Generate the profile predicted for `sig`: linear interpolation of
    /// every row's speedup and power between the two bracketing anchors
    /// (clamped at the extremes). The base speed is interpolated too.
    ///
    /// # Errors
    ///
    /// [`LoadModelError::UnresolvableSignature`] when the signature's
    /// interpolation key cannot be bracketed by the anchors — a NaN
    /// signature, or an anchor set with a hole. Callers should treat
    /// this as "no better profile available" and keep the current one.
    pub fn table_for(&self, sig: &LoadSignature) -> Result<ProfileTable, LoadModelError> {
        let k = sig.key();
        if !k.is_finite() {
            return Err(LoadModelError::UnresolvableSignature { key: k });
        }
        // asgov-analyze: allow(hot-path-transitive): new() rejects anchor sets with fewer than two entries, so [0], [len-1], and the bracketing pair around hi_idx >= 1 are always in bounds
        let first = &self.anchors[0];
        let last = &self.anchors[self.anchors.len() - 1];
        if k <= first.0.key() {
            return Ok(first.1.clone());
        }
        if k >= last.0.key() {
            return Ok(last.1.clone());
        }
        // Find the bracketing pair.
        let hi_idx = self
            .anchors
            .iter()
            .position(|(s, _)| s.key() >= k)
            .ok_or(LoadModelError::UnresolvableSignature { key: k })?;
        let (lo_sig, lo_tab) = &self.anchors[hi_idx - 1];
        let (hi_sig, hi_tab) = &self.anchors[hi_idx];
        let span = (hi_sig.key() - lo_sig.key()).max(f64::EPSILON);
        let t = (k - lo_sig.key()) / span;

        let entries = lo_tab
            .entries
            .iter()
            .zip(&hi_tab.entries)
            .map(|(lo, hi)| ProfileEntry {
                config: lo.config,
                speedup: lo.speedup + t * (hi.speedup - lo.speedup),
                power_w: lo.power_w + t * (hi.power_w - lo.power_w),
                measured: false,
            })
            .collect();
        Ok(ProfileTable {
            app: lo_tab.app.clone(),
            base_gips: lo_tab.base_gips + t * (hi_tab.base_gips - lo_tab.base_gips),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Config;
    use asgov_soc::{BwIndex, FreqIndex};

    fn table(app: &str, base: f64, bump: f64) -> ProfileTable {
        ProfileTable {
            app: app.into(),
            base_gips: base,
            entries: (0..4)
                .map(|i| ProfileEntry {
                    config: Config {
                        freq: FreqIndex(i),
                        bw: BwIndex(0),
                        gpu: None,
                    },
                    speedup: 1.0 + i as f64 * 0.5 + bump,
                    power_w: 1.5 + i as f64 * 0.3 + bump,
                    measured: true,
                })
                .collect(),
        }
    }

    fn sig(util: f64) -> LoadSignature {
        LoadSignature {
            cpu_util: util,
            traffic_mbps: 0.0,
        }
    }

    #[test]
    fn interpolates_between_anchors() {
        let model = LoadModel::new(vec![
            (sig(0.0), table("a", 0.2, 0.0)),
            (sig(0.2), table("a", 0.1, -0.2)),
        ])
        .unwrap();
        let mid = model.table_for(&sig(0.1)).unwrap();
        assert!((mid.base_gips - 0.15).abs() < 1e-12);
        assert!((mid.entries[0].speedup - 0.9).abs() < 1e-12);
        assert!(!mid.entries[0].measured, "interpolated rows are marked");
    }

    #[test]
    fn clamps_outside_anchor_range() {
        let model = LoadModel::new(vec![
            (sig(0.05), table("a", 0.2, 0.0)),
            (sig(0.2), table("a", 0.1, -0.2)),
        ])
        .unwrap();
        assert_eq!(model.table_for(&sig(0.0)).unwrap(), table("a", 0.2, 0.0));
        assert_eq!(model.table_for(&sig(0.9)).unwrap(), table("a", 0.1, -0.2));
    }

    #[test]
    fn rejects_single_anchor() {
        let err = LoadModel::new(vec![(sig(0.0), table("a", 0.2, 0.0))]).unwrap_err();
        assert_eq!(err, LoadModelError::TooFewAnchors);
    }

    #[test]
    fn rejects_mismatched_profiles() {
        let mut other = table("a", 0.2, 0.0);
        other.entries.pop();
        let err =
            LoadModel::new(vec![(sig(0.0), table("a", 0.2, 0.0)), (sig(0.2), other)]).unwrap_err();
        assert_eq!(err, LoadModelError::MismatchedProfiles);
        let err = LoadModel::new(vec![
            (sig(0.0), table("a", 0.2, 0.0)),
            (sig(0.2), table("b", 0.2, 0.0)),
        ])
        .unwrap_err();
        assert_eq!(err, LoadModelError::MismatchedProfiles);
    }

    #[test]
    fn anchor_order_does_not_matter() {
        let m1 = LoadModel::new(vec![
            (sig(0.0), table("a", 0.2, 0.0)),
            (sig(0.2), table("a", 0.1, -0.2)),
        ])
        .unwrap();
        let m2 = LoadModel::new(vec![
            (sig(0.2), table("a", 0.1, -0.2)),
            (sig(0.0), table("a", 0.2, 0.0)),
        ])
        .unwrap();
        assert_eq!(
            m1.table_for(&sig(0.1)).unwrap(),
            m2.table_for(&sig(0.1)).unwrap()
        );
    }

    #[test]
    fn nan_signature_degrades_to_an_error_not_a_panic() {
        let model = LoadModel::new(vec![
            (sig(0.0), table("a", 0.2, 0.0)),
            (sig(0.2), table("a", 0.1, -0.2)),
        ])
        .unwrap();
        let err = model
            .table_for(&LoadSignature {
                cpu_util: f64::NAN,
                traffic_mbps: 0.0,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            LoadModelError::UnresolvableSignature { key } if key.is_nan()
        ));
    }
}
