//! The offline profiling procedure (paper §III-A).

use crate::table::{Config, ProfileEntry, ProfileTable};
use asgov_governors::{AdrenoTz, CpubwHwmon};
use asgov_soc::Workload;
use asgov_soc::{sim, Device, DeviceConfig, FreqIndex, GpuFreqIndex, Policy};
use asgov_util::par;
use asgov_workloads::PhasedApp;

/// The profiled frequency ladder: every `stride`-th index in
/// `lo..=hi`. Shared by all sweeps so they fan out identically.
fn freq_ladder(lo: usize, hi: usize, stride: usize) -> Vec<usize> {
    let mut freqs = Vec::new();
    let mut f = lo;
    while f <= hi {
        freqs.push(f);
        f += stride;
    }
    freqs
}

/// Knobs of the profiling procedure. The defaults mirror the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOptions {
    /// Runs averaged per configuration (paper: 3).
    pub runs_per_config: usize,
    /// Measurement window per run for rate-based applications, ms.
    /// Batch applications run to completion instead.
    pub run_ms: u64,
    /// Profile every `freq_stride`-th frequency (paper: alternate
    /// frequencies → 2).
    pub freq_stride: usize,
    /// Fill the intermediate bandwidths of each profiled frequency by
    /// linear interpolation between the lowest and highest bandwidth
    /// (paper behaviour). When `false` the table keeps only measured
    /// points.
    pub interpolate: bool,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        Self {
            runs_per_config: 3,
            run_ms: 30_000,
            freq_stride: 2,
            interpolate: true,
        }
    }
}

/// Measure GIPS and power at one pinned configuration, averaged over
/// `runs` fresh runs.
fn measure_config(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    config: Config,
    runs: usize,
    run_ms: u64,
) -> (f64, f64) {
    let mut gips_sum = 0.0;
    let mut power_sum = 0.0;
    for run in 0..runs {
        let mut device = Device::new(dev_cfg.clone().with_seed(dev_cfg.seed ^ (run as u64 + 1)));
        // The paper measures performance with `perf` at a 1 s period in
        // every run — profiling included — so its 4 % load and 15 mW
        // power overhead are present here just as they are online.
        device.set_tool_overhead(0.04, 0.015);
        device.set_cpu_governor("userspace");
        device.set_bw_governor("userspace");
        device.set_cpu_freq(config.freq);
        device.set_mem_bw(config.bw);
        // The GPU stays under its stock governor throughout (the paper
        // does not include it in the controlled configuration).
        let mut gpu_gov = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 1] = [&mut gpu_gov];
        app.reset();
        let report = sim::run(&mut device, app, &mut policies, run_ms);
        gips_sum += report.avg_gips;
        power_sum += report.avg_power_w;
    }
    (gips_sum / runs as f64, power_sum / runs as f64)
}

/// Profile an application offline (paper §III-A): measure its base
/// speed at the SoC's lowest configuration, then speedup and power for
/// every `freq_stride`-th frequency inside the application's usable
/// range, at the lowest and highest memory bandwidth, interpolating the
/// intermediate bandwidths linearly.
///
/// The returned table is sorted by (frequency, bandwidth) and its
/// speedups are normalized to the measured base speed.
///
/// The per-frequency measurements are independent simulations whose
/// seeds derive only from `(dev_cfg.seed, run)`, so the sweep fans out
/// across `std::thread::scope` workers; results are bit-identical to
/// the serial sweep ([`profile_app_serial`]) for any thread count.
///
/// # Panics
///
/// Panics if `opts.runs_per_config` or `opts.freq_stride` is zero.
pub fn profile_app(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ProfileOptions,
) -> ProfileTable {
    profile_app_threads(dev_cfg, app, opts, 0)
}

/// [`profile_app`] with the sweep forced onto a single thread (no
/// workers are spawned at all). Exists so the parallel sweep can be
/// differentially tested against it; produces byte-identical tables.
pub fn profile_app_serial(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ProfileOptions,
) -> ProfileTable {
    profile_app_threads(dev_cfg, app, opts, 1)
}

/// [`profile_app`] with an explicit worker count (`0` = auto: the
/// machine's available parallelism, clamped to the number of profiled
/// frequencies).
///
/// # Panics
///
/// Panics if `opts.runs_per_config` or `opts.freq_stride` is zero.
pub fn profile_app_threads(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ProfileOptions,
    threads: usize,
) -> ProfileTable {
    assert!(opts.runs_per_config > 0, "need at least one run");
    assert!(opts.freq_stride > 0, "stride must be positive");

    let table = dev_cfg.table.clone();
    let (lo_f, hi_f) = app.spec().profile_freq_range;
    let hi_f = hi_f.min(table.num_freqs() - 1);
    let bw_lo = table.min_bw();
    let bw_hi = table.max_bw();

    // Base speed: the lowest configuration of the SoC, regardless of the
    // app's usable profile range (it anchors the speedup scale).
    let base_cfg = Config {
        freq: table.min_freq(),
        bw: table.min_bw(),
        gpu: None,
    };
    let (base_gips, base_power) =
        measure_config(dev_cfg, app, base_cfg, opts.runs_per_config, opts.run_ms);
    let base_gips = base_gips.max(1e-6);

    // Fan the per-frequency measurements out across workers. Each job
    // owns a fresh clone of the app (reset before every run anyway) and
    // every simulation seed derives from (dev_cfg.seed, run), never
    // from the worker, so the table below is independent of `threads`.
    let freqs = freq_ladder(lo_f, hi_f, opts.freq_stride);
    let threads = if threads == 0 {
        par::default_threads(freqs.len())
    } else {
        threads
    };
    let app_ref: &PhasedApp = app;
    let sweep = par::ordered_map(freqs.len(), threads, |i| {
        // asgov-analyze: allow(hot-path-transitive): ordered_map hands the closure indices drawn from 0..freqs.len()
        let freq = FreqIndex(freqs[i]);
        let mut worker_app = app_ref.clone();
        let lo = Config {
            freq,
            bw: bw_lo,
            gpu: None,
        };
        let hi = Config {
            freq,
            bw: bw_hi,
            gpu: None,
        };
        let lo_m = if lo == base_cfg {
            (base_gips, base_power)
        } else {
            measure_config(
                dev_cfg,
                &mut worker_app,
                lo,
                opts.runs_per_config,
                opts.run_ms,
            )
        };
        let hi_m = measure_config(
            dev_cfg,
            &mut worker_app,
            hi,
            opts.runs_per_config,
            opts.run_ms,
        );
        (lo_m, hi_m)
    });

    let mut entries = Vec::new();
    for (&f, &((g_lo, p_lo), (g_hi, p_hi))) in freqs.iter().zip(&sweep) {
        let freq = FreqIndex(f);
        if opts.interpolate {
            let span = table.bw(bw_hi).0 - table.bw(bw_lo).0;
            for b in table.bw_indices() {
                let t = (table.bw(b).0 - table.bw(bw_lo).0) / span;
                entries.push(ProfileEntry {
                    config: Config {
                        freq,
                        bw: b,
                        gpu: None,
                    },
                    speedup: (g_lo + t * (g_hi - g_lo)) / base_gips,
                    power_w: p_lo + t * (p_hi - p_lo),
                    measured: b == bw_lo || b == bw_hi,
                });
            }
        } else {
            entries.push(ProfileEntry {
                config: Config {
                    freq,
                    bw: bw_lo,
                    gpu: None,
                },
                speedup: g_lo / base_gips,
                power_w: p_lo,
                measured: true,
            });
            entries.push(ProfileEntry {
                config: Config {
                    freq,
                    bw: bw_hi,
                    gpu: None,
                },
                speedup: g_hi / base_gips,
                power_w: p_hi,
                measured: true,
            });
        }
    }

    ProfileTable {
        app: app.spec().name.to_string(),
        base_gips,
        entries,
    }
}

/// Measure one fully pinned (CPU, bandwidth, GPU) point.
fn measure_config_gpu(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    config: Config,
    gpu: GpuFreqIndex,
    runs: usize,
    run_ms: u64,
) -> (f64, f64) {
    let mut gips_sum = 0.0;
    let mut power_sum = 0.0;
    for run in 0..runs {
        let mut device = Device::new(
            dev_cfg
                .clone()
                .with_seed(dev_cfg.seed ^ (run as u64 + 0x30)),
        );
        device.set_tool_overhead(0.04, 0.015);
        device.set_cpu_governor("userspace");
        device.set_bw_governor("userspace");
        device.set_gpu_governor("userspace");
        device.set_cpu_freq(config.freq);
        device.set_mem_bw(config.bw);
        device.set_gpu_freq(gpu);
        app.reset();
        let report = sim::run(&mut device, app, &mut [], run_ms);
        gips_sum += report.avg_gips;
        power_sum += report.avg_power_w;
    }
    (gips_sum / runs as f64, power_sum / runs as f64)
}

/// Three-axis offline profile (the paper's §VII extension): every
/// `freq_stride`-th CPU frequency × {lowest, highest} memory bandwidth
/// × {lowest, highest} GPU frequency, with linear interpolation along
/// both the bandwidth and the GPU ladders.
///
/// # Panics
///
/// Panics if `opts.runs_per_config` or `opts.freq_stride` is zero.
pub fn profile_app_with_gpu(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ProfileOptions,
) -> ProfileTable {
    assert!(opts.runs_per_config > 0, "need at least one run");
    assert!(opts.freq_stride > 0, "stride must be positive");

    let table = dev_cfg.table.clone();
    let gpu_count = asgov_soc::gpu::ADRENO420_FREQS_GHZ.len();
    let (lo_f, hi_f) = app.spec().profile_freq_range;
    let hi_f = hi_f.min(table.num_freqs() - 1);
    let bw_lo = table.min_bw();
    let bw_hi = table.max_bw();
    let (gpu_lo, gpu_hi) = (GpuFreqIndex(0), GpuFreqIndex(gpu_count - 1));
    let gpu_ghz = |i: usize| asgov_soc::gpu::ADRENO420_FREQS_GHZ[i];

    let base_cfg = Config::new(table.min_freq(), table.min_bw());
    let (base_gips, _) = measure_config_gpu(
        dev_cfg,
        app,
        base_cfg,
        gpu_lo,
        opts.runs_per_config,
        opts.run_ms,
    );
    let base_gips = base_gips.max(1e-6);

    // Same fan-out as `profile_app`: one job per profiled frequency,
    // each measuring its four (bw, gpu) corners on a private app clone.
    let freqs = freq_ladder(lo_f, hi_f, opts.freq_stride);
    let app_ref: &PhasedApp = app;
    let sweep = par::ordered_map(freqs.len(), par::default_threads(freqs.len()), |i| {
        let freq = FreqIndex(freqs[i]);
        let mut worker_app = app_ref.clone();
        // Four measured corners per frequency: (bw, gpu) ∈ {lo,hi}².
        let mut corner = [[(0.0f64, 0.0f64); 2]; 2];
        for (bi, bw) in [bw_lo, bw_hi].into_iter().enumerate() {
            for (gi, gpu) in [gpu_lo, gpu_hi].into_iter().enumerate() {
                corner[bi][gi] = measure_config_gpu(
                    dev_cfg,
                    &mut worker_app,
                    Config::new(freq, bw),
                    gpu,
                    opts.runs_per_config,
                    opts.run_ms,
                );
            }
        }
        corner
    });

    let mut entries = Vec::new();
    for (&f, corner) in freqs.iter().zip(&sweep) {
        let freq = FreqIndex(f);
        let bw_span = table.bw(bw_hi).0 - table.bw(bw_lo).0;
        let gpu_span = gpu_ghz(gpu_count - 1) - gpu_ghz(0);
        for b in table.bw_indices() {
            let tb = (table.bw(b).0 - table.bw(bw_lo).0) / bw_span;
            for g in 0..gpu_count {
                let tg = (gpu_ghz(g) - gpu_ghz(0)) / gpu_span;
                // Bilinear interpolation across the two measured axes.
                fn lerp2(c: &[[f64; 2]; 2], tb: f64, tg: f64) -> f64 {
                    let lo_g = c[0][0] + tb * (c[1][0] - c[0][0]);
                    let hi_g = c[0][1] + tb * (c[1][1] - c[0][1]);
                    lo_g + tg * (hi_g - lo_g)
                }
                let gips_c = [
                    [corner[0][0].0, corner[0][1].0],
                    [corner[1][0].0, corner[1][1].0],
                ];
                let power_c = [
                    [corner[0][0].1, corner[0][1].1],
                    [corner[1][0].1, corner[1][1].1],
                ];
                let gips = lerp2(&gips_c, tb, tg);
                let power = lerp2(&power_c, tb, tg);
                let measured = (b == bw_lo || b == bw_hi) && (g == 0 || g == gpu_count - 1);
                entries.push(ProfileEntry {
                    config: Config::with_gpu(freq, b, GpuFreqIndex(g)),
                    speedup: gips / base_gips,
                    power_w: power,
                    measured,
                });
            }
        }
    }

    ProfileTable {
        app: app.spec().name.to_string(),
        base_gips,
        entries,
    }
}

/// Measure GIPS and power with the CPU pinned and the memory bandwidth
/// under the default `cpubw_hwmon` governor (for the CPU-only ablation).
fn measure_config_cpu_only(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    freq: FreqIndex,
    runs: usize,
    run_ms: u64,
) -> (f64, f64) {
    let mut gips_sum = 0.0;
    let mut power_sum = 0.0;
    for run in 0..runs {
        let mut device = Device::new(
            dev_cfg
                .clone()
                .with_seed(dev_cfg.seed ^ (run as u64 + 0x10)),
        );
        device.set_tool_overhead(0.04, 0.015);
        device.set_cpu_governor("userspace");
        device.set_cpu_freq(freq);
        let mut bw_gov = CpubwHwmon::default();
        let mut gpu_gov = AdrenoTz::default();
        let mut policies: [&mut dyn Policy; 2] = [&mut bw_gov, &mut gpu_gov];
        app.reset();
        let report = sim::run(&mut device, app, &mut policies, run_ms);
        gips_sum += report.avg_gips;
        power_sum += report.avg_power_w;
    }
    (gips_sum / runs as f64, power_sum / runs as f64)
}

/// Profile for the paper's §V-D CPU-only ablation: the CPU frequency is
/// pinned per configuration while the memory bandwidth stays under the
/// default `cpubw_hwmon` governor. The resulting table has one row per
/// profiled frequency (the bandwidth column records the SoC minimum as
/// a placeholder — a CPU-only controller never actuates it).
///
/// # Panics
///
/// Panics if `opts.runs_per_config` or `opts.freq_stride` is zero.
pub fn profile_app_cpu_only(
    dev_cfg: &DeviceConfig,
    app: &mut PhasedApp,
    opts: &ProfileOptions,
) -> ProfileTable {
    assert!(opts.runs_per_config > 0, "need at least one run");
    assert!(opts.freq_stride > 0, "stride must be positive");

    let table = dev_cfg.table.clone();
    let (lo_f, hi_f) = app.spec().profile_freq_range;
    let hi_f = hi_f.min(table.num_freqs() - 1);

    let (base_gips, _) = measure_config_cpu_only(
        dev_cfg,
        app,
        table.min_freq(),
        opts.runs_per_config,
        opts.run_ms,
    );
    let base_gips = base_gips.max(1e-6);

    // Same fan-out as `profile_app`: one measurement job per frequency.
    let freqs = freq_ladder(lo_f, hi_f, opts.freq_stride);
    let app_ref: &PhasedApp = app;
    let sweep = par::ordered_map(freqs.len(), par::default_threads(freqs.len()), |i| {
        let mut worker_app = app_ref.clone();
        measure_config_cpu_only(
            dev_cfg,
            &mut worker_app,
            FreqIndex(freqs[i]),
            opts.runs_per_config,
            opts.run_ms,
        )
    });

    let mut entries = Vec::new();
    for (&f, &(g, p)) in freqs.iter().zip(&sweep) {
        entries.push(ProfileEntry {
            config: Config {
                freq: FreqIndex(f),
                bw: table.min_bw(),
                gpu: None,
            },
            speedup: g / base_gips,
            power_w: p,
            measured: true,
        });
    }

    ProfileTable {
        app: app.spec().name.to_string(),
        base_gips,
        entries,
    }
}

/// Fit a MAR-CSE model (paper §VI, Liang & Lai): for each training
/// application, sweep the frequency ladder at the lowest bandwidth,
/// find the energy-minimal frequency (the *critical speed*) and pair it
/// with the application's measured memory access rate. The resulting
/// points parameterize [`asgov_governors::MarCseModel`].
pub fn fit_mar_cse(
    dev_cfg: &DeviceConfig,
    apps: &mut [PhasedApp],
    opts: &ProfileOptions,
) -> asgov_governors::MarCseModel {
    assert!(!apps.is_empty(), "need at least one training application");
    let table = dev_cfg.table.clone();
    let mut points = Vec::new();
    for app in apps.iter_mut() {
        // One job per swept frequency; the (energy/instr, MAR) samples
        // come back in ladder order, so the fold below matches the
        // serial sweep exactly.
        let freqs = freq_ladder(0, table.num_freqs() - 1, opts.freq_stride);
        let app_ref: &PhasedApp = app;
        let sweep = par::ordered_map(freqs.len(), par::default_threads(freqs.len()), |i| {
            let f = freqs[i];
            let freq = FreqIndex(f);
            let mut worker_app = app_ref.clone();
            let mut device =
                Device::new(dev_cfg.clone().with_seed(dev_cfg.seed ^ (f as u64 + 0x50)));
            device.set_tool_overhead(0.04, 0.015);
            device.set_cpu_governor("userspace");
            device.set_bw_governor("userspace");
            device.set_cpu_freq(freq);
            let mut gpu_gov = AdrenoTz::default();
            let mut policies: [&mut dyn Policy; 1] = [&mut gpu_gov];
            worker_app.reset();
            let report = sim::run(&mut device, &mut worker_app, &mut policies, opts.run_ms);
            if report.instructions > 0.0 {
                let energy_per_instr = report.energy_j / report.instructions;
                let mar = device.pmu().bus_bytes() / device.pmu().instructions();
                Some((energy_per_instr, freq, mar))
            } else {
                None
            }
        });

        let mut best: Option<(f64, FreqIndex)> = None; // (energy per instr, freq)
        let mut mar_sum = 0.0;
        let mut mar_n = 0.0;
        for (energy_per_instr, freq, mar) in sweep.into_iter().flatten() {
            if best.is_none_or(|(e, _)| energy_per_instr < e) {
                best = Some((energy_per_instr, freq));
            }
            mar_sum += mar;
            mar_n += 1.0;
        }
        if let (Some((_, cs)), true) = (best, mar_n > 0.0) {
            points.push((mar_sum / mar_n, table.freq(cs).0));
        }
    }
    asgov_governors::MarCseModel::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::BwIndex;
    use asgov_workloads::{apps, BackgroundLoad};

    fn opts_fast() -> ProfileOptions {
        ProfileOptions {
            runs_per_config: 1,
            run_ms: 4_000,
            freq_stride: 4,
            interpolate: true,
        }
    }

    #[test]
    fn profile_covers_all_bandwidths_when_interpolating() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let t = profile_app(&dev_cfg, &mut app, &opts_fast());
        assert!(!t.is_empty());
        // Spotify profiles f1..f5 with stride 4 → f1, f5 → 2 × 13 rows.
        assert_eq!(t.len(), 2 * 13);
        let measured = t.entries.iter().filter(|e| e.measured).count();
        assert_eq!(measured, 4, "only lowest/highest bw measured");
    }

    #[test]
    fn base_speedup_is_one() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
        let t = profile_app(
            &dev_cfg,
            &mut app,
            &ProfileOptions {
                runs_per_config: 1,
                run_ms: 6_000,
                freq_stride: 4,
                interpolate: false,
            },
        );
        // First entry is the base configuration (f1, bw1): speedup 1.
        let first = &t.entries[0];
        assert_eq!(first.config.freq, FreqIndex(0));
        assert_eq!(first.config.bw, BwIndex(0));
        assert!(
            (first.speedup - 1.0).abs() < 0.08,
            "speedup {}",
            first.speedup
        );
    }

    #[test]
    fn speedup_monotone_along_frequency_for_batch_apps() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::vidcon(BackgroundLoad::baseline(1));
        let t = profile_app(&dev_cfg, &mut app, &opts_fast());
        // At the lowest bandwidth, speedup should increase with freq.
        let lo_bw: Vec<&ProfileEntry> = t
            .entries
            .iter()
            .filter(|e| e.config.bw == BwIndex(0))
            .collect();
        assert!(lo_bw.len() >= 2);
        for w in lo_bw.windows(2) {
            assert!(
                w[1].speedup > w[0].speedup * 0.98,
                "speedup should not regress: {} then {}",
                w[0].speedup,
                w[1].speedup
            );
        }
    }

    #[test]
    fn mar_cse_fit_orders_critical_speeds() {
        // A compute-bound trainer should get a higher critical speed
        // than a memory-bound one.
        let dev_cfg = DeviceConfig::nexus6();
        let mut training = [
            apps::vidcon(BackgroundLoad::none(1)),     // compute-ish
            apps::angrybirds(BackgroundLoad::none(1)), // more memory traffic
        ];
        let model = fit_mar_cse(
            &dev_cfg,
            &mut training,
            &ProfileOptions {
                runs_per_config: 1,
                run_ms: 3_000,
                freq_stride: 4,
                interpolate: false,
            },
        );
        let low_mar = model.critical_speed_ghz(0.05);
        let high_mar = model.critical_speed_ghz(3.0);
        assert!(low_mar > 0.0 && high_mar > 0.0);
    }

    #[test]
    fn cpu_only_profile_has_one_row_per_frequency() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::wechat(BackgroundLoad::baseline(1));
        let t = profile_app_cpu_only(&dev_cfg, &mut app, &opts_fast());
        // WeChat profiles f3..f10 with stride 4 -> f3, f7 -> 2 rows.
        assert_eq!(t.len(), 2);
        assert!(t.entries.iter().all(|e| e.measured));
        assert!(t.entries[1].speedup >= t.entries[0].speedup * 0.9);
    }

    #[test]
    fn parallel_profile_matches_serial() {
        // The tentpole determinism claim: the threaded sweep produces a
        // byte-identical ProfileTable for any worker count.
        let dev_cfg = DeviceConfig::nexus6();
        let opts = ProfileOptions {
            runs_per_config: 2,
            run_ms: 3_000,
            freq_stride: 2,
            interpolate: true,
        };
        let app = apps::spotify(BackgroundLoad::baseline(1));
        let serial = profile_app_serial(&dev_cfg, &mut app.clone(), &opts);
        for threads in [2, 3, 8] {
            let parallel = profile_app_threads(&dev_cfg, &mut app.clone(), &opts, threads);
            assert_eq!(serial.app, parallel.app);
            assert_eq!(
                serial.base_gips.to_bits(),
                parallel.base_gips.to_bits(),
                "base GIPS must be bit-identical ({threads} threads)"
            );
            assert_eq!(serial.entries.len(), parallel.entries.len());
            for (s, p) in serial.entries.iter().zip(&parallel.entries) {
                assert_eq!(s.config, p.config, "{threads} threads");
                assert_eq!(
                    s.speedup.to_bits(),
                    p.speedup.to_bits(),
                    "speedup at {:?} must be bit-identical ({threads} threads)",
                    s.config
                );
                assert_eq!(
                    s.power_w.to_bits(),
                    p.power_w.to_bits(),
                    "power at {:?} must be bit-identical ({threads} threads)",
                    s.config
                );
                assert_eq!(s.measured, p.measured);
            }
        }
    }

    #[test]
    fn power_monotone_along_bandwidth_at_fixed_freq() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::wechat(BackgroundLoad::baseline(1));
        let t = profile_app(&dev_cfg, &mut app, &opts_fast());
        let freq = t.entries[0].config.freq;
        let rows: Vec<&ProfileEntry> = t.entries.iter().filter(|e| e.config.freq == freq).collect();
        assert_eq!(rows.len(), 13);
        for w in rows.windows(2) {
            assert!(
                w[1].power_w >= w[0].power_w - 1e-9,
                "interpolated power must be monotone in bw"
            );
        }
    }
}
