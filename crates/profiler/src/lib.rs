//! # asgov-profiler — offline profiling (Stage 1)
//!
//! The application-specific aspect of the paper's solution rests on an
//! offline profile: for a target application, the *speedup* (performance
//! normalized to the lowest system configuration) and *average device
//! power* at a subset of (CPU frequency, memory bandwidth) operating
//! points (paper §III-A, Table I).
//!
//! To tame the 18 × 13 = 234-point configuration space, the paper
//! profiles **every alternate CPU frequency at only the lowest and
//! highest memory bandwidth** (≤ 9 × 2 = 18 runs, three repetitions
//! each) and **linearly interpolates** along the bandwidth axis for the
//! remaining 11 settings. Per-application frequency exclusions (WeChat's
//! camera fails below f3, MX Player stutters below f5, …) come from
//! [`asgov_workloads::AppSpec::profile_freq_range`].
//!
//! This crate also measures the *default run* — performance
//! `R_def`, power `P_def`, time `T_def` and energy `E_def` under the
//! stock `interactive` + `cpubw_hwmon` governors — which provides both
//! the controller's performance target and the energy baseline every
//! table of the paper compares against.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod default_run;
mod load_model;
mod profile;
mod table;

pub use default_run::{measure_default, measure_fixed, DefaultMeasurement};
pub use load_model::{LoadModel, LoadModelError, LoadSignature};
pub use profile::{
    fit_mar_cse, profile_app, profile_app_cpu_only, profile_app_serial, profile_app_threads,
    profile_app_with_gpu, ProfileOptions,
};
pub use table::{Config, ProfileEntry, ProfileTable, TableParseError};
