//! The profile table (paper Table I).

use asgov_soc::{BwIndex, DvfsTable, FreqIndex, GpuFreqIndex};
use asgov_util::Json;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A *system configuration*: an ordered pair of CPU frequency and
/// memory bandwidth indices (paper §III-A). The controller framework is
/// axis-generic in principle (the paper lists GPU frequency and network
/// packet rate as future axes); this pair is what the paper controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    /// CPU frequency index.
    pub freq: FreqIndex,
    /// Memory bandwidth index.
    pub bw: BwIndex,
    /// GPU frequency index, when the GPU axis is controlled too (the
    /// paper's §VII extension); `None` leaves the GPU to its governor.
    pub gpu: Option<GpuFreqIndex>,
}

impl Config {
    /// A two-axis configuration (the paper's controlled pair).
    pub fn new(freq: FreqIndex, bw: BwIndex) -> Self {
        Self {
            freq,
            bw,
            gpu: None,
        }
    }

    /// A three-axis configuration including the GPU.
    pub fn with_gpu(freq: FreqIndex, bw: BwIndex, gpu: GpuFreqIndex) -> Self {
        Self {
            freq,
            bw,
            gpu: Some(gpu),
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.gpu {
            Some(g) => write!(f, "({}, {}, {})", self.freq, self.bw, g),
            None => write!(f, "({}, {})", self.freq, self.bw),
        }
    }
}

/// One row of the profile table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    /// The configuration.
    pub config: Config,
    /// Speedup 𝕊 relative to the application's base speed.
    pub speedup: f64,
    /// Average whole-device power ℙ at this configuration, watts.
    pub power_w: f64,
    /// Whether this row was measured (`false` = interpolated).
    pub measured: bool,
}

/// Offline profile of one application: speedup and power per system
/// configuration, plus the base speed that anchors the speedups.
///
/// # Example
///
/// ```
/// # use asgov_profiler::{Config, ProfileEntry, ProfileTable};
/// # use asgov_soc::{BwIndex, FreqIndex};
/// let table = ProfileTable {
///     app: "AngryBirds".into(),
///     base_gips: 0.129,
///     entries: vec![ProfileEntry {
///         config: Config::new(FreqIndex(0), BwIndex(0)),
///         speedup: 1.0,
///         power_w: 1.62357,
///         measured: true,
///     }],
/// };
/// // Persist and restore through the dependency-free TSV format.
/// let restored: ProfileTable = table.to_tsv().parse()?;
/// assert_eq!(restored, table);
/// # Ok::<(), asgov_profiler::TableParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTable {
    /// Application name.
    pub app: String,
    /// Base speed `b`: application GIPS at the lowest system
    /// configuration of the SoC (paper: 0.129 for AngryBirds, 0.471 for
    /// VidCon).
    pub base_gips: f64,
    /// Table rows, sorted by (freq, bw).
    pub entries: Vec<ProfileEntry>,
}

impl ProfileTable {
    /// The speedup vector 𝕊 (paper Eqn. 5), in row order.
    pub fn speedups(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.speedup).collect()
    }

    /// The power vector ℙ (paper Eqn. 4), in row order.
    pub fn powers(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.power_w).collect()
    }

    /// The configuration of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn config(&self, i: usize) -> Config {
        self.entries[i].config
    }

    /// Number of rows (N).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest speedup in the table.
    pub fn min_speedup(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest speedup in the table.
    pub fn max_speedup(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.speedup)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// GIPS the table predicts for row `i` (`speedup × base`).
    pub fn predicted_gips(&self, i: usize) -> f64 {
        self.entries[i].speedup * self.base_gips
    }

    /// Sanity-check the table before handing it to a controller.
    /// Returns a list of human-readable issues (empty = healthy).
    ///
    /// Checked: non-finite or non-positive values, duplicate
    /// configurations, a base speed outside plausible bounds, and a
    /// speedup scale that never reaches ~1 (which suggests the base
    /// configuration was mis-measured).
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.is_empty() {
            issues.push("table has no entries".to_string());
            return issues;
        }
        if !(1e-4..=100.0).contains(&self.base_gips) {
            issues.push(format!("implausible base speed {} GIPS", self.base_gips));
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in &self.entries {
            if !e.speedup.is_finite() || e.speedup <= 0.0 {
                issues.push(format!("bad speedup {} at {}", e.speedup, e.config));
            }
            if !e.power_w.is_finite() || e.power_w <= 0.0 {
                issues.push(format!("bad power {} at {}", e.power_w, e.config));
            }
            if !seen.insert(e.config) {
                issues.push(format!("duplicate configuration {}", e.config));
            }
        }
        if self.min_speedup() > 1.5 {
            issues.push(format!(
                "smallest speedup is {:.3}: the base configuration looks mis-measured",
                self.min_speedup()
            ));
        }
        issues
    }

    /// Render as a tab-separated table (stable on-disk format — the
    /// workspace deliberately carries no serde *format* crate).
    /// Round-trips through [`ProfileTable::from_tsv`].
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# app\t{}\n# base_gips\t{}\n",
            self.app, self.base_gips
        ));
        out.push_str("# freq_idx\tbw_idx\tgpu_idx\tspeedup\tpower_w\tmeasured\n");
        for e in &self.entries {
            let gpu = e.config.gpu.map_or(-1i64, |g| g.0 as i64);
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                e.config.freq.0, e.config.bw.0, gpu, e.speedup, e.power_w, e.measured as u8
            ));
        }
        out
    }

    /// Parse the TSV format produced by [`ProfileTable::to_tsv`].
    ///
    /// # Errors
    ///
    /// Returns [`TableParseError`] on malformed input.
    pub fn from_tsv(text: &str) -> Result<Self, TableParseError> {
        let mut app = None;
        let mut base_gips = None;
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# app\t") {
                app = Some(rest.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# base_gips\t") {
                base_gips = Some(
                    rest.parse::<f64>()
                        .map_err(|_| TableParseError::at(lineno, line))?,
                );
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            // 6 fields with the GPU column; 5 for tables written before
            // the GPU axis existed.
            if fields.len() != 6 && fields.len() != 5 {
                return Err(TableParseError::at(lineno, line));
            }
            let parse = |s: &str| -> Result<f64, TableParseError> {
                s.parse().map_err(|_| TableParseError::at(lineno, line))
            };
            let (gpu, rest) = if fields.len() == 6 {
                let g = parse(fields[2])?;
                (
                    if g < 0.0 {
                        None
                    } else {
                        Some(GpuFreqIndex(g as usize))
                    },
                    &fields[3..],
                )
            } else {
                (None, &fields[2..])
            };
            entries.push(ProfileEntry {
                config: Config {
                    freq: FreqIndex(parse(fields[0])? as usize),
                    bw: BwIndex(parse(fields[1])? as usize),
                    gpu,
                },
                speedup: parse(rest[0])?,
                power_w: parse(rest[1])?,
                measured: rest[2] == "1",
            });
        }
        Ok(Self {
            app: app.ok_or(TableParseError::MissingHeader("app"))?,
            base_gips: base_gips.ok_or(TableParseError::MissingHeader("base_gips"))?,
            entries,
        })
    }

    /// Serialize as a JSON document (hand-rolled via `asgov-util` — the
    /// workspace carries no serde). Round-trips through
    /// [`ProfileTable::from_json`].
    pub fn to_json(&self) -> String {
        let mut doc = Json::object();
        doc.set("app", self.app.as_str());
        doc.set("base_gips", self.base_gips);
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut row = Json::object();
                row.set("freq", e.config.freq.0);
                row.set("bw", e.config.bw.0);
                row.set("gpu", e.config.gpu.map_or(Json::Null, |g| Json::from(g.0)));
                row.set("speedup", e.speedup);
                row.set("power_w", e.power_w);
                row.set("measured", e.measured);
                row
            })
            .collect();
        doc.set("entries", Json::Arr(entries));
        doc.to_pretty()
    }

    /// Parse the JSON format produced by [`ProfileTable::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TableParseError::BadJson`] on malformed input or a
    /// document missing required fields.
    pub fn from_json(text: &str) -> Result<Self, TableParseError> {
        let bad = |what: &'static str| TableParseError::BadJson(what);
        let doc = Json::parse(text).map_err(|_| bad("unparseable document"))?;
        let app = doc
            .get("app")
            .and_then(Json::as_str)
            .ok_or(bad("missing app"))?
            .to_string();
        let base_gips = doc
            .get("base_gips")
            .and_then(Json::as_f64)
            .ok_or(bad("missing base_gips"))?;
        let rows = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or(bad("missing entries"))?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let idx = |key: &str| -> Result<usize, TableParseError> {
                row.get(key)
                    .and_then(Json::as_f64)
                    // asgov-analyze: allow(float-eq): exact integrality test on a parsed index, not a tolerance comparison
                    .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                    .map(|v| v as usize)
                    .ok_or(bad("bad index field"))
            };
            let num = |key: &str| row.get(key).and_then(Json::as_f64).ok_or(bad("bad number"));
            let gpu = match row.get("gpu") {
                None | Some(Json::Null) => None,
                Some(g) => Some(GpuFreqIndex(
                    g.as_f64()
                        // asgov-analyze: allow(float-eq): exact integrality test on a parsed index, not a tolerance comparison
                        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                        .ok_or(bad("bad gpu index"))? as usize,
                )),
            };
            entries.push(ProfileEntry {
                config: Config {
                    freq: FreqIndex(idx("freq")?),
                    bw: BwIndex(idx("bw")?),
                    gpu,
                },
                speedup: num("speedup")?,
                power_w: num("power_w")?,
                measured: row
                    .get("measured")
                    .and_then(Json::as_bool)
                    .ok_or(bad("bad measured flag"))?,
            });
        }
        Ok(Self {
            app,
            base_gips,
            entries,
        })
    }

    /// Pretty-print in the style of the paper's Table I.
    pub fn render(&self, table: &DvfsTable) -> String {
        let mut out = format!(
            "Profile for {} (base speed {:.3} GIPS)\n{:<4} {:<22} {:<10} {:<12} {}\n",
            self.app, self.base_gips, "#", "Config (GHz, MBps)", "Speedup", "Power (mW)", "src"
        );
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{:<4} ({:.4}, {:>5.0})        {:<10.4} {:<12.2} {}\n",
                i + 1,
                table.freq(e.config.freq).0,
                table.bw(e.config.bw).0,
                e.speedup,
                e.power_w * 1000.0,
                if e.measured { "measured" } else { "interp" },
            ));
        }
        out
    }
}

/// Error parsing a profile table from TSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableParseError {
    /// A malformed line.
    BadLine {
        /// Zero-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A required header line is missing.
    MissingHeader(&'static str),
    /// A malformed JSON document (see [`ProfileTable::from_json`]).
    BadJson(&'static str),
}

impl TableParseError {
    fn at(line: usize, content: &str) -> Self {
        Self::BadLine {
            line,
            content: content.to_string(),
        }
    }
}

impl fmt::Display for TableParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableParseError::BadLine { line, content } => {
                write!(f, "malformed profile line {line}: {content:?}")
            }
            TableParseError::MissingHeader(h) => write!(f, "missing header {h:?}"),
            TableParseError::BadJson(what) => write!(f, "malformed profile JSON: {what}"),
        }
    }
}

impl Error for TableParseError {}

impl FromStr for ProfileTable {
    type Err = TableParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_tsv(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileTable {
        ProfileTable {
            app: "AngryBirds".into(),
            base_gips: 0.129,
            entries: vec![
                ProfileEntry {
                    config: Config {
                        freq: FreqIndex(0),
                        bw: BwIndex(0),
                        gpu: None,
                    },
                    speedup: 1.0,
                    power_w: 1.62357,
                    measured: true,
                },
                ProfileEntry {
                    config: Config {
                        freq: FreqIndex(0),
                        bw: BwIndex(2),
                        gpu: None,
                    },
                    speedup: 1.0077,
                    power_w: 1.74209,
                    measured: false,
                },
                ProfileEntry {
                    config: Config {
                        freq: FreqIndex(4),
                        bw: BwIndex(0),
                        gpu: None,
                    },
                    speedup: 1.837,
                    power_w: 2.21922,
                    measured: true,
                },
            ],
        }
    }

    #[test]
    fn vectors_in_row_order() {
        let t = sample();
        assert_eq!(t.speedups(), vec![1.0, 1.0077, 1.837]);
        assert_eq!(t.powers(), vec![1.62357, 1.74209, 2.21922]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn min_max_speedup() {
        let t = sample();
        assert_eq!(t.min_speedup(), 1.0);
        assert_eq!(t.max_speedup(), 1.837);
    }

    #[test]
    fn predicted_gips_scales_base() {
        let t = sample();
        assert!((t.predicted_gips(2) - 1.837 * 0.129).abs() < 1e-12);
    }

    #[test]
    fn tsv_round_trip() {
        let t = sample();
        let tsv = t.to_tsv();
        let back = ProfileTable::from_tsv(&tsv).unwrap();
        assert_eq!(t, back);
        // FromStr too.
        let back2: ProfileTable = tsv.parse().unwrap();
        assert_eq!(t, back2);
    }

    #[test]
    fn json_round_trip() {
        let mut t = sample();
        t.entries[1].config.gpu = Some(GpuFreqIndex(3));
        let json = t.to_json();
        let back = ProfileTable::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(matches!(
            ProfileTable::from_json("not json"),
            Err(TableParseError::BadJson(_))
        ));
        assert!(matches!(
            ProfileTable::from_json(r#"{"app": "x"}"#),
            Err(TableParseError::BadJson(_))
        ));
        assert!(matches!(
            ProfileTable::from_json(r#"{"app": "x", "base_gips": 1.0, "entries": [{"freq": -1}]}"#),
            Err(TableParseError::BadJson(_))
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            ProfileTable::from_tsv("# app\tx\n# base_gips\tnope\n"),
            Err(TableParseError::BadLine { .. })
        ));
        assert!(matches!(
            ProfileTable::from_tsv(""),
            Err(TableParseError::MissingHeader("app"))
        ));
        assert!(matches!(
            ProfileTable::from_tsv("# app\tx\n1\t2\t3\n"),
            Err(TableParseError::BadLine { .. })
        ));
    }

    #[test]
    fn validate_flags_real_problems() {
        let mut t = sample();
        assert!(t.validate().is_empty(), "sample table is healthy");

        t.entries[1].speedup = f64::NAN;
        t.entries.push(t.entries[0]);
        t.base_gips = 1e9;
        let issues = t.validate();
        assert!(issues.iter().any(|i| i.contains("bad speedup")));
        assert!(issues.iter().any(|i| i.contains("duplicate")));
        assert!(issues.iter().any(|i| i.contains("base speed")));

        let empty = ProfileTable {
            app: "x".into(),
            base_gips: 1.0,
            entries: vec![],
        };
        assert_eq!(empty.validate(), vec!["table has no entries".to_string()]);
    }

    #[test]
    fn validate_flags_missing_base_anchor() {
        let mut t = sample();
        for e in &mut t.entries {
            e.speedup += 2.0;
        }
        let issues = t.validate();
        assert!(issues.iter().any(|i| i.contains("mis-measured")));
    }

    #[test]
    fn render_mentions_app_and_rows() {
        let t = sample();
        let s = t.render(&DvfsTable::nexus6());
        assert!(s.contains("AngryBirds"));
        assert!(s.contains("0.3000"));
        assert!(s.contains("1623.57"));
    }
}
