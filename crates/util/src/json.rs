//! A minimal JSON value type, writer and parser.
//!
//! Covers exactly the I/O surface this workspace needs — profile
//! tables, benchmark reports (`BENCH_*.json`) and similar small
//! machine-readable artifacts. Numbers are `f64` throughout (JSON has
//! no integer type either); strings support the standard escapes plus
//! `\uXXXX` (surrogate pairs included).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
///
/// Objects use a [`BTreeMap`] so serialization order is deterministic —
/// important for byte-stable `BENCH_*.json` artifacts and diffs.
///
/// # Example
///
/// ```
/// use asgov_util::Json;
///
/// let mut obj = Json::object();
/// obj.set("name", Json::from("two_point"));
/// obj.set("median_ns", Json::from(1250.0));
/// let text = obj.to_string();
/// let back = Json::parse(&text).unwrap();
/// assert_eq!(back.get("median_ns").and_then(Json::as_f64), Some(1250.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Obj(BTreeMap::new())
    }

    /// Insert `key` into an object (no-op with a debug panic otherwise).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => debug_assert!(false, "set on non-object {other:?}"),
        }
    }

    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Element of an array, if this is an array and in range.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline
    /// (the format of the repo's `BENCH_*.json` artifacts).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                // asgov-analyze: allow(hot-path-transitive): write_seq hands the closure indices drawn from 0..len it was given
                items[i].write(out, ind);
            }),
            Json::Obj(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, '{', '}', entries.len(), |out, i, ind| {
                    let (k, v) = entries[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                });
            }
        }
    }

    /// Parse a JSON document (one value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON cannot express non-finite numbers; null is the least
        // surprising degradation for diagnostic artifacts.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // Shortest representation that round-trips.
        out.push_str(&format!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Error parsing a JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl JsonError {
    fn at(offset: usize, message: &'static str) -> Self {
        Self { offset, message }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    // asgov-analyze: allow(hot-path-transitive): the index is guarded by *pos < bytes.len() in the same && chain
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected ':'"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    // asgov-analyze: allow(hot-path-transitive): parse_value dispatches here only after bytes.get(*pos) matched, so *pos < len and the open range cannot panic
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    // asgov-analyze: allow(hot-path-transitive): start <= *pos <= len — *pos only advances one byte at a time while bytes.get(*pos) is Some
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(JsonError::at(*pos, "lone high surrogate"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(JsonError::at(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or(JsonError::at(*pos, "invalid codepoint"))?,
                        );
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences intact).
                // asgov-analyze: allow(hot-path-transitive): this arm runs only when bytes.get(*pos) is Some, so *pos < len; the unwrap below reads the first char of a non-empty str validated by from_utf8
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(JsonError::at(*pos, "truncated \\u escape"));
    }
    // asgov-analyze: allow(hot-path-transitive): end > bytes.len() already returned an error above, and start < end by construction
    let s = std::str::from_utf8(&bytes[start..end]).map_err(|_| JsonError::at(start, "bad hex"))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::at(start, "bad hex"))?;
    *pos = end - 1;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut inner = Json::object();
        inner.set("pi", Json::from(std::f64::consts::PI));
        inner.set("neg", Json::from(-42.0));
        inner.set("flag", Json::from(true));
        let mut doc = Json::object();
        doc.set("name", Json::from("bench \"quoted\" \\ path\nline"));
        doc.set("items", Json::from(vec![1.0, 2.5, -0.125]));
        doc.set("nested", inner);
        doc.set("nothing", Json::Null);

        for text in [doc.to_string(), doc.to_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "failed on {text}");
        }
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let mut doc = Json::object();
        doc.set("zeta", Json::from(1.0));
        doc.set("alpha", Json::from(2.0));
        let text = doc.to_string();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        assert_eq!(text, r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5e-9, 6.02214076e23, 123456789.0, -2.5] {
            let text = Json::from(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "via {text}");
        }
        // Non-finite degrades to null rather than emitting invalid JSON.
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null_and_round_trip() {
        // JSON has no NaN/Infinity literals; per the workspace policy
        // (DESIGN.md §8) every non-finite number is written as `null`,
        // and reading it back yields `Json::Null` — never a parse error.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::from(v).to_string(), "null");
            assert_eq!(Json::parse(&Json::from(v).to_string()).unwrap(), Json::Null);
        }
        // Nested occurrences degrade the same way and the document
        // stays parseable in both compact and pretty forms.
        let mut doc = Json::object();
        doc.set("ok", Json::from(1.5));
        doc.set("bad", Json::from(f64::INFINITY));
        doc.set("items", Json::from(vec![0.25, f64::NAN, -4.0]));
        for text in [doc.to_string(), doc.to_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.get("ok").and_then(Json::as_f64), Some(1.5));
            assert_eq!(back.get("bad"), Some(&Json::Null));
            assert_eq!(back.get("items").and_then(|a| a.at(1)), Some(&Json::Null));
            assert_eq!(
                back.get("items")
                    .and_then(|a| a.at(2))
                    .and_then(Json::as_f64),
                Some(-4.0)
            );
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        // Literal UTF-8 passes through; \u escapes (incl. a surrogate
        // pair) decode to the same scalars.
        let j = Json::parse(r#""é 😀""#).unwrap();
        assert_eq!(j.as_str(), Some("é 😀"));
        let j = Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(j.as_str(), Some("é 😀"));
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse(r#"{"a": [1, {"b": "x"}], "ok": false}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.at(0)).and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.at(1))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
