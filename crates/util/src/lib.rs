//! # asgov-util — dependency-free utilities
//!
//! The workspace builds in hermetic environments with **no network
//! access**, so it carries no external crates (see CHANGELOG.md for the
//! policy). This crate vendors the two small pieces of infrastructure
//! the rest of the workspace would otherwise pull from crates.io:
//!
//! - [`rng`] — a tiny, fast, seedable PRNG (splitmix64 seeding a
//!   xoshiro256++ core) with the handful of sampling helpers the
//!   simulator and tests need. Replaces `rand::rngs::SmallRng`.
//! - [`json`] — a minimal JSON value type with a writer and a
//!   recursive-descent parser, enough for the profile-table and
//!   benchmark I/O surface. Replaces `serde`/`serde_json`.
//! - [`par`] — a deterministic ordered parallel map over `std::thread`,
//!   used by the profiling sweep and the experiment harness. Replaces
//!   `rayon` for the embarrassingly-parallel loops this workspace has.
//!
//! All three are deterministic and allocation-light; none aims to be a
//! general-purpose replacement for the crates they stand in for.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod par;
pub mod rng;

pub use json::{Json, JsonError};
pub use rng::Rng;
