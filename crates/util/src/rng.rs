//! Seeded pseudo-random number generation (xoshiro256++).
//!
//! The simulator needs *deterministic, seedable* randomness — every
//! run derives its stream from an explicit `u64` seed so experiments
//! replay bit-exactly (see `tests/determinism.rs` at the workspace
//! root). Statistical quality requirements are mild (measurement noise,
//! frame jitter, Poisson touches), which xoshiro256++ exceeds by a wide
//! margin while being four shifts and an add per draw.
//!
//! Algorithms: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators" (xoshiro256++), seeded through Steele et al.'s
//! splitmix64 so that similar seeds yield uncorrelated states.

use std::ops::Range;

/// A small, fast, seedable PRNG (xoshiro256++ core, splitmix64 seeding).
///
/// # Example
///
/// ```
/// use asgov_util::Rng;
///
/// let mut rng = Rng::seed_from_u64(42);
/// let x = rng.gen_range(-0.5..0.5);
/// assert!((-0.5..0.5).contains(&x));
/// // Same seed, same stream.
/// assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
/// ```
/// The four xoshiro256++ state words are named rather than held in a
/// `[u64; 4]`: every access is a field, so the generator — which sits
/// under every fault-injection and demand draw on the fleet's hot
/// path — contains no indexing that could ever panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s0: u64,
    s1: u64,
    s2: u64,
    s3: u64,
}

impl Rng {
    /// Build a generator whose state is expanded from `seed` with
    /// splitmix64 (so nearby seeds give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s0: next(),
            s1: next(),
            s2: next(),
            s3: next(),
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self
            .s0
            .wrapping_add(self.s3)
            .rotate_left(23)
            .wrapping_add(self.s0);
        let t = self.s1 << 17;
        self.s2 ^= self.s0;
        self.s3 ^= self.s1;
        self.s1 ^= self.s2;
        self.s0 ^= self.s3;
        self.s2 ^= t;
        self.s3 = self.s3.rotate_left(45);
        out
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    pub fn gen_range(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "gen_range needs a non-empty finite range, got {range:?}"
        );
        let span = range.end - range.start;
        // next_f64 < 1, and `start + span·u` rounds at most up to `end`;
        // clamp the half-open contract against that rounding.
        let v = range.start + span * self.next_f64();
        if v >= range.end {
            range.end - span * f64::EPSILON
        } else {
            v
        }
    }

    /// A uniform `usize` in `[range.start, range.end)`, unbiased via
    /// rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = (range.end - range.start) as u64;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return range.start + (raw % span) as usize;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Keep the stream advancing the same way for all p.
            self.next_f64();
            false
        } else if p >= 1.0 {
            self.next_f64();
            true
        } else {
            self.next_f64() < p
        }
    }

    /// A standard-normal draw (Box–Muller, cosine branch). One uniform
    /// pair per call; no state beyond the generator itself.
    pub fn gen_normal(&mut self) -> f64 {
        let u1 = self.gen_range(f64::EPSILON..1.0);
        let u2 = self.next_f64();
        (-2.0_f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(124).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn matches_reference_xoshiro256pp() {
        // Reference vector: xoshiro256++ from state {1, 2, 3, 4}
        // (Blackman & Vigna's public-domain C source).
        let mut r = Rng {
            s0: 1,
            s1: 2,
            s2: 3,
            s3: 4,
        };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&v), "{v} out of range");
        }
        for _ in 0..10_000 {
            let v = r.gen_range_usize(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut r = Rng::seed_from_u64(77);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0..2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "uniform mean drifted: {mean}");
    }

    #[test]
    fn bool_frequency_tracks_p() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "p=0.3 but freq {freq}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(31);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| r.gen_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "normal variance {var}");
    }

    #[test]
    #[should_panic(expected = "non-empty finite range")]
    fn empty_float_range_panics() {
        Rng::seed_from_u64(0).gen_range(1.0..1.0);
    }
}
