//! Deterministic fork–join parallelism over an index range.
//!
//! The profiling sweep and the experiment harness fan independent
//! simulations out across `std::thread::scope` workers. Determinism is
//! preserved by construction: job `i` computes exactly what the serial
//! loop iteration `i` would (all seeds derive from the job, not the
//! worker), and results are returned **in index order** regardless of
//! which worker ran which job. With `threads == 1` no threads are
//! spawned at all, so the serial path stays available for differential
//! testing (`ordered_map(n, 1, f) == ordered_map(n, k, f)` for any
//! pure-per-index `f`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker count: the machine's available parallelism,
/// clamped to the number of jobs (and at least 1).
pub fn default_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .clamp(1, jobs.max(1))
}

/// Run `f(0..jobs)` across `threads` scoped workers and return the
/// results in index order.
///
/// Jobs are claimed from an atomic counter, so long jobs don't stall
/// the queue behind them. A panicking job propagates the panic to the
/// caller (after the scope joins), like the serial loop would.
///
/// # Example
///
/// ```
/// let squares = asgov_util::par::ordered_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn ordered_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, jobs);
    if threads == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        // Jobs deliberately finish out of order (reverse sleep).
        let out = ordered_map(16, 8, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let serial: Vec<f64> = ordered_map(100, 1, f);
        let parallel: Vec<f64> = ordered_map(100, 7, f);
        assert_eq!(serial, parallel, "bit-identical results required");
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u8> = ordered_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = ordered_map(8, 4, |i| {
            if i == 5 {
                panic!("job 5 failed");
            }
            i
        });
    }
}
