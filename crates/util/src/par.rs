//! Deterministic fork–join parallelism over an index range.
//!
//! The profiling sweep, the experiment harness, and the fleet engine
//! fan independent simulations out across worker threads. Determinism
//! is preserved by construction: job `i` computes exactly what the
//! serial loop iteration `i` would (all seeds derive from the job,
//! never from the worker), and results are returned **in index order**
//! regardless of which worker ran which job. With `threads == 1` no
//! threads are spawned at all, so the serial path stays available for
//! differential testing (`ordered_map(n, 1, f) == ordered_map(n, k, f)`
//! for any pure-per-index `f`).
//!
//! Two execution engines share that contract:
//!
//! * [`WorkerPool`] — a **persistent** pool: threads spawn once, park
//!   on a condvar between batches, and receive work through an
//!   epoch-numbered handoff. Results land in lock-free once-written
//!   slots (no per-slot `Mutex`). This is the hot-path engine: the
//!   fleet tier broadcasts thousands of batches, and spawn/join per
//!   batch is exactly the overhead the pool removes.
//! * [`scoped_ordered_map`] — the original `std::thread::scope`
//!   engine (spawn per call, `Mutex<Option<T>>` slots), kept as the
//!   reference implementation and as the baseline the fleet bench
//!   reports `pool_speedup_vs_scoped` against.
//!
//! The free [`ordered_map`] is a thin compatibility wrapper over a
//! transient [`WorkerPool`].
//!
//! # Panic contract
//!
//! A panicking job aborts the batch (remaining unclaimed jobs are
//! skipped) and the panic is re-raised on the caller with the **job
//! index** in the message: `job <i> panicked: <payload>`. When several
//! jobs panic concurrently the lowest job index wins, so the surfaced
//! message is deterministic.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A sensible worker count: the machine's available parallelism,
/// clamped to the number of jobs (and at least 1).
pub fn default_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .clamp(1, jobs.max(1))
}

// ---------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------

/// The task pointer published to workers for one batch. Lifetime is
/// erased: the pointee is a stack borrow in [`WorkerPool::broadcast`],
/// which blocks until every worker has finished the batch, so workers
/// never dereference it after it dies.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// allowed) and the pointer itself is only ever dereferenced while the
// owning `broadcast` frame is alive (it waits for `remaining == 0`
// before returning).
unsafe impl Send for TaskPtr {}

/// Handoff state shared between the caller and the pool's workers.
struct PoolState {
    /// Batch number. Bumped by each `broadcast`; a worker runs one
    /// task invocation per generation it observes.
    generation: u64,
    /// The current batch's task (present while a batch is in flight).
    task: Option<TaskPtr>,
    /// Workers still executing the current batch.
    remaining: usize,
    /// Set once, on drop: workers exit instead of parking.
    shutdown: bool,
    /// First panic payload captured from a worker this batch.
    worker_panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work_ready: Condvar,
    /// The caller parks here while a batch drains.
    work_done: Condvar,
}

/// A persistent fork–join worker pool.
///
/// Threads spawn once in [`WorkerPool::new`] and park between batches;
/// [`WorkerPool::broadcast`] wakes them for one batch and blocks until
/// all of them finish, so batch task borrows never outlive the call.
/// The calling thread participates as the last executor — a pool of
/// `n` threads uses `n - 1` parked OS threads, and `WorkerPool::new(1)`
/// spawns nothing at all (pure serial execution).
///
/// `broadcast` (and [`WorkerPool::ordered_map`] on top of it) takes
/// `&mut self`: a pool serves one caller at a time and is **not
/// reentrant** (a task must not broadcast on the pool that runs it —
/// the exclusive borrow makes that a compile error rather than a
/// deadlock).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Total executor count (spawned workers + the caller).
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("spawned", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Build a pool with `threads` total executors (clamped to ≥ 1).
    /// Spawns `threads - 1` OS threads; the caller is the last
    /// executor. If the OS refuses a spawn the pool degrades to the
    /// threads it did get — determinism never depends on the count.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                remaining: 0,
                shutdown: false,
                worker_panic: None,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 0..threads - 1 {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("asgov-pool-{w}"))
                .spawn(move || worker_loop(&shared, w));
            if let Ok(h) = spawned {
                handles.push(h);
            }
        }
        let threads = handles.len() + 1;
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Total executor count (spawned workers plus the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(worker)` once on every executor (`0..threads()`),
    /// blocking until all invocations return. The caller runs the
    /// highest worker index itself. If any invocation panicked, the
    /// first captured payload is re-raised here after the batch fully
    /// drains (so no invocation is still running when it propagates).
    pub fn broadcast(&mut self, task: &(dyn Fn(usize) + Sync)) {
        let workers = self.handles.len();
        if workers > 0 {
            // Erase the task borrow's lifetime for the handoff; see
            // `TaskPtr` for why this is sound.
            // SAFETY: pure lifetime erasure on a raw pointer; the
            // pointee outlives every dereference (batch barrier).
            let ptr = TaskPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task as *const _)
            });
            let mut st = lock(&self.shared.state);
            st.task = Some(ptr);
            st.remaining = workers;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.shared.work_ready.notify_all();
        }
        // The caller is the last executor.
        let caller_panic =
            std::panic::catch_unwind(AssertUnwindSafe(|| task(self.threads - 1))).err();
        let payload = if workers > 0 {
            let mut st = lock(&self.shared.state);
            while st.remaining > 0 {
                st = wait(&self.shared.work_done, st);
            }
            st.task = None;
            st.worker_panic.take().or(caller_panic)
        } else {
            caller_panic
        };
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }

    /// Run `f(0..jobs)` across the pool and return the results in
    /// index order. Jobs are claimed from an atomic counter (long jobs
    /// don't stall the queue behind them); results land in lock-free
    /// once-written slots. Panics propagate per the module's panic
    /// contract, naming the lowest panicking job index.
    pub fn ordered_map<T, F>(&mut self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let slots = Slots::new(jobs);
        let next = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        self.broadcast(&|_worker| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs || aborted.load(Ordering::Relaxed) {
                break;
            }
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(value) => slots.write(i, value),
                Err(payload) => {
                    aborted.store(true, Ordering::Relaxed);
                    let mut first = lock(&first_panic);
                    // Keep the lowest job index so the surfaced
                    // message is deterministic under racing panics.
                    if first.as_ref().is_none_or(|(j, _)| i < *j) {
                        *first = Some((i, payload));
                    }
                }
            }
        });
        if let Some((i, payload)) = lock(&first_panic).take() {
            // asgov-analyze: allow(hot-path-panic): deliberate re-raise of a caught job panic, per the ordered_map contract
            panic!("job {i} panicked: {}", panic_message(&payload));
        }
        slots.into_values()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked outside a batch (impossible by
            // construction) would surface here; ignore the join error
            // rather than double-panicking in drop.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, _worker: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break;
                }
                st = wait(&shared.work_ready, st);
            }
            match st.task {
                Some(t) => t,
                // A generation bump always publishes a task; bail out
                // defensively rather than dereferencing nothing.
                None => return,
            }
        };
        // SAFETY: `broadcast` keeps the pointee alive until
        // `remaining` drops to zero, which happens strictly after
        // this call returns.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)(_worker) }));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            if st.worker_panic.is_none() {
                st.worker_panic = Some(payload);
            }
        }
        st.remaining = st.remaining.saturating_sub(1);
        if st.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Lock a mutex, ignoring poisoning: pool state transitions are
/// shutdown-safe (a poisoned lock only means some worker panicked
/// while holding it, and every field stays valid).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Render a panic payload for the re-raised message.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

// ---------------------------------------------------------------------
// Lock-free once-written result slots
// ---------------------------------------------------------------------

/// One result slot: written at most once by exactly one worker, read
/// by the caller only after the batch barrier.
struct Slot<T> {
    written: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Ordered result storage for one `ordered_map` batch. Lock-free: the
/// atomic claim counter guarantees a slot has exactly one writer, and
/// the batch barrier in `broadcast` orders every write before the
/// caller's reads.
struct Slots<T> {
    slots: Vec<Slot<T>>,
}

// SAFETY: distinct slots are written by distinct workers (unique claim
// indices) and a slot is never read while a writer may touch it (the
// caller reads only after the batch barrier).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(len: usize) -> Self {
        Self {
            slots: (0..len)
                .map(|_| Slot {
                    written: AtomicBool::new(false),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Store the result for job `i`. Called by the unique claimant of
    /// `i`, at most once.
    fn write(&self, i: usize, value: T) {
        let Some(slot) = self.slots.get(i) else {
            return;
        };
        // SAFETY: `i` was claimed from the atomic counter by exactly
        // one worker, so this is the only live writer; the slot was
        // never written before (claims are unique).
        unsafe { (*slot.value.get()).write(value) };
        slot.written.store(true, Ordering::Release);
    }

    /// Consume the slots in index order. Panics if any slot was never
    /// written (only possible after a panicking batch, which
    /// `ordered_map` re-raises before calling this).
    fn into_values(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            assert!(
                slot.written.swap(false, Ordering::Acquire),
                "batch barrier guarantees every slot is written"
            );
            // SAFETY: the flag said written (and we cleared it, so the
            // drop impl below won't double-drop); the batch barrier
            // ordered the write before this read.
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
        }
        out
    }
}

impl<T> Drop for Slots<T> {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if slot.written.swap(false, Ordering::Acquire) {
                // SAFETY: flag was set, so the value is initialized
                // and not yet moved out (into_values clears the flag).
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

// ---------------------------------------------------------------------
// Compatibility / reference engines
// ---------------------------------------------------------------------

/// Run `f(0..jobs)` across `threads` workers and return the results in
/// index order.
///
/// Thin compatibility wrapper: `threads == 1` runs the serial loop
/// inline (no threads, no pool); otherwise a transient [`WorkerPool`]
/// executes the batch. Callers with many batches should hold their own
/// `WorkerPool` and call [`WorkerPool::ordered_map`] to amortize the
/// spawn.
///
/// # Example
///
/// ```
/// let squares = asgov_util::par::ordered_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn ordered_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, jobs);
    if threads == 1 {
        return serial_ordered_map(jobs, f);
    }
    WorkerPool::new(threads).ordered_map(jobs, f)
}

/// The serial engine, with the same panic contract as the parallel
/// paths (job index surfaced in the message).
fn serial_ordered_map<T, F>(jobs: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T,
{
    let mut out = Vec::with_capacity(jobs);
    for i in 0..jobs {
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => out.push(v),
            // asgov-analyze: allow(hot-path-panic): deliberate re-raise of a caught job panic, per the ordered_map contract
            Err(payload) => panic!("job {i} panicked: {}", panic_message(&payload)),
        }
    }
    out
}

/// The original scoped-thread engine: spawns `threads` scoped workers
/// per call and collects results through per-slot mutexes. Retained as
/// the reference implementation the pool is differentially tested
/// against, and as the baseline for the fleet bench's
/// `pool_speedup_vs_scoped` row.
pub fn scoped_ordered_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, jobs);
    if threads == 1 {
        return serial_ordered_map(jobs, f);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = f(i);
                if let Some(slot) = slots.get(i) {
                    *lock(slot) = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            lock(&m)
                .take()
                // asgov-analyze: allow(hot-path-panic): the scope join above proves every slot was filled or a worker already panicked
                .expect("scoped workers fill every slot before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        // Jobs deliberately finish out of order (reverse sleep).
        let out = ordered_map(16, 8, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let serial: Vec<f64> = ordered_map(100, 1, f);
        let parallel: Vec<f64> = ordered_map(100, 7, f);
        assert_eq!(serial, parallel, "bit-identical results required");
    }

    #[test]
    fn pool_matches_scoped_and_serial() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64;
        let serial: Vec<u64> = serial_ordered_map(64, f);
        let scoped: Vec<u64> = scoped_ordered_map(64, 5, f);
        let mut pool = WorkerPool::new(5);
        let pooled: Vec<u64> = pool.ordered_map(64, f);
        assert_eq!(serial, scoped);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The same pool serves many batches (the fleet's access
        // pattern); every batch must honor the ordering contract.
        let mut pool = WorkerPool::new(4);
        for batch in 0u64..50 {
            let out = pool.ordered_map(17, |i| batch * 1000 + i as u64);
            assert_eq!(out, (0..17).map(|i| batch * 1000 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_of_one_is_serial() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.ordered_map(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn broadcast_runs_every_executor_exactly_once() {
        let mut pool = WorkerPool::new(6);
        let n = pool.threads();
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..3 {
            pool.broadcast(&|w| {
                if let Some(h) = hits.get(w) {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 3);
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u8> = ordered_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
        let mut pool = WorkerPool::new(4);
        let out: Vec<u8> = pool.ordered_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    #[should_panic(expected = "job 5 panicked")]
    fn worker_panic_propagates_with_job_index() {
        let _ = ordered_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job 5 panicked")]
    fn serial_panic_carries_job_index_too() {
        let _ = ordered_map(8, 1, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn pool_usable_after_a_panicking_batch() {
        let mut pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.ordered_map(8, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        }));
        let err = result.expect_err("panic propagates");
        let msg = panic_message(&err);
        assert!(msg.contains("job 2 panicked"), "got: {msg}");
        // The pool must still serve clean batches afterwards.
        assert_eq!(pool.ordered_map(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn panic_drops_completed_results_without_leaking() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Serial claim order: jobs 0 and 1 complete before job 2
            // panics, so exactly two `Counted` values must drop.
            ordered_map(3, 1, |i| {
                if i == 2 {
                    panic!("boom");
                }
                Counted
            })
        }));
        assert!(result.is_err());
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            2,
            "completed results dropped"
        );
    }
}
