//! Versioned, checksummed controller snapshots for warm restarts.
//!
//! A supervised controller (see [`crate::Supervisor`]) periodically
//! serializes its mutable state into a self-describing binary frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"ASGV"
//! 4       4     format version, u32 LE
//! 8       4     payload length, u32 LE
//! 12      4     CRC-32 (IEEE) of the payload, u32 LE
//! 16      n     payload
//! ```
//!
//! The codec is deliberately paranoid: every decode path returns a
//! [`SnapshotError`] instead of panicking, so a truncated, bit-flipped
//! or crafted snapshot can never take the supervisor down — the worst
//! case is a counted cold restart. Restores are transactional: callers
//! decode the complete payload first and only then apply it, so a
//! failure partway through decoding leaves the controller untouched.
//!
//! Everything here is dependency-free; the CRC-32 is the bitwise IEEE
//! (reflected, polynomial `0xEDB88320`) implementation, small enough to
//! vendor and stable across platforms.

use asgov_soc::{Device, Policy};
use std::fmt;

/// Frame magic: identifies a byte buffer as an asgov snapshot.
pub const MAGIC: [u8; 4] = *b"ASGV";

/// Current snapshot format version. Bump on any payload layout change;
/// restores reject other versions rather than misinterpret bytes.
pub const VERSION: u32 = 1;

/// Size of the fixed frame header, bytes.
pub const HEADER_LEN: usize = 16;

/// Why a snapshot could not be restored.
///
/// The taxonomy is deliberately small: the supervisor does not care
/// *which* byte was damaged, only that the checkpoint is unusable and a
/// cold restart is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ends before the frame (or a field) is complete.
    Truncated,
    /// The frame is structurally damaged: bad magic, checksum mismatch,
    /// an illegal tag or enum code, or a value outside its domain.
    Corrupt,
    /// The frame is intact but was written by a different format
    /// version.
    VersionMismatch {
        /// The version recorded in the frame header.
        found: u32,
    },
    /// A payload or length-prefixed field is too large for the frame's
    /// `u32` length prefix. Writing it would silently truncate the
    /// length and round-trip corrupt data, so the writer refuses it
    /// up front.
    TooLarge {
        /// The offending length, bytes (fields) or elements (slices).
        len: u64,
    },
    /// The frame is intact and well-formed but was written under a
    /// different run configuration than the one it is being restored
    /// into (e.g. a fleet checkpoint taken with a different demand
    /// quantum or device partition). Unlike `Corrupt`, the bytes are
    /// fine — the operator changed a parameter between runs, and the
    /// named field tells them which one.
    ConfigMismatch {
        /// The configuration field that does not match.
        field: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
            SnapshotError::Corrupt => f.write_str("snapshot corrupt"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot version {found} not supported (want {VERSION})")
            }
            SnapshotError::TooLarge { len } => {
                write!(f, "snapshot field of length {len} overflows the u32 prefix")
            }
            SnapshotError::ConfigMismatch { field } => {
                write!(
                    f,
                    "snapshot was written under a different configuration: {field} does not match"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
/// Bitwise implementation — no table, no dependencies, identical output
/// to zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Builds a snapshot payload field by field, then frames it with the
/// header and checksum. All integers are little-endian; floats are
/// stored as their IEEE-754 bit patterns, so round-trips are bit-exact
/// (including NaN payloads and signed zeros).
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Start an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an optional `u64`: a one-byte tag (0 absent, 1 present)
    /// followed by the value when present.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Append an optional `u8` (tag byte then value). Same wire shape
    /// as [`SnapshotWriter::put_opt_u64`] with a one-byte payload.
    pub fn put_opt_u8(&mut self, v: Option<u8>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u8(x);
            }
        }
    }

    /// Append an optional `u32` (tag byte then little-endian value).
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u32(x);
            }
        }
    }

    /// Append an optional length-prefixed byte slice (tag byte, then
    /// the slice as [`SnapshotWriter::put_bytes`] when present).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when the present slice overflows the
    /// `u32` length prefix; the writer is left unchanged (the tag is
    /// only written once the length is known to fit).
    pub fn put_opt_bytes(&mut self, v: Option<&[u8]>) -> Result<(), SnapshotError> {
        match v {
            None => {
                self.put_u8(0);
                Ok(())
            }
            Some(bytes) => {
                encode_len(bytes.len())?;
                self.put_u8(1);
                self.put_bytes(bytes)
            }
        }
    }

    /// Append a byte slice with a `u32` length prefix (used to nest one
    /// snapshot — e.g. a wrapped controller's — inside another).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when the slice is longer than the
    /// `u32` prefix can record (≥ 4 GiB). Writing `len as u32` would
    /// silently truncate and round-trip corrupt data; on error the
    /// writer is left unchanged.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let len = encode_len(bytes.len())?;
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Append an `f64` slice with a `u32` length prefix.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when the element count overflows the
    /// `u32` prefix; the writer is left unchanged.
    pub fn put_f64_slice(&mut self, vs: &[f64]) -> Result<(), SnapshotError> {
        let len = encode_len(vs.len())?;
        self.put_u32(len);
        for &v in vs {
            self.put_f64(v);
        }
        Ok(())
    }

    /// Current payload length, bytes (pre-framing).
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Frame the payload: header (magic, version, length, CRC-32)
    /// followed by the payload bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when the accumulated payload exceeds
    /// the header's `u32` length field (≥ 4 GiB); such a frame could
    /// never decode and must not be written.
    pub fn finish(self) -> Result<Vec<u8>, SnapshotError> {
        let len = encode_len(self.buf.len())?;
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&crc32(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        Ok(out)
    }
}

/// Validate a length against the `u32` wire prefix. Factored out so
/// the oversize rejection is testable without materializing a real
/// 4 GiB buffer — tests feed lengths directly.
fn encode_len(len: usize) -> Result<u32, SnapshotError> {
    u32::try_from(len).map_err(|_| SnapshotError::TooLarge { len: len as u64 })
}

/// Decodes a framed snapshot. [`SnapshotReader::new`] validates the
/// header, length and checksum up front; the `take_*` accessors then
/// read the payload cursor-style, each returning a [`SnapshotError`]
/// instead of panicking when the data does not match the expected
/// shape.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    rest: &'a [u8],
}

/// Split `n` bytes off the front of `rest`, or fail without panicking.
fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotError> {
    if rest.len() < n {
        return Err(SnapshotError::Truncated);
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn read_u32_at(bytes: &mut &[u8]) -> Result<u32, SnapshotError> {
    let raw = take(bytes, 4)?;
    let arr: [u8; 4] = raw.try_into().map_err(|_| SnapshotError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

impl<'a> SnapshotReader<'a> {
    /// Validate a framed snapshot and open a payload cursor.
    ///
    /// Checks, in order: the buffer holds a complete header
    /// (`Truncated`), the magic matches (`Corrupt`), the payload is
    /// exactly as long as the header declares (`Truncated` when short,
    /// `Corrupt` when there are trailing bytes), the checksum matches
    /// (`Corrupt`), and the version is [`VERSION`] (`VersionMismatch`).
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let mut cursor = bytes;
        let magic = take(&mut cursor, 4)?;
        let version = read_u32_at(&mut cursor)?;
        let payload_len = read_u32_at(&mut cursor)? as usize;
        let crc = read_u32_at(&mut cursor)?;
        if magic != MAGIC {
            return Err(SnapshotError::Corrupt);
        }
        if cursor.len() < payload_len {
            return Err(SnapshotError::Truncated);
        }
        if cursor.len() > payload_len {
            return Err(SnapshotError::Corrupt);
        }
        if crc32(cursor) != crc {
            return Err(SnapshotError::Corrupt);
        }
        if version != VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        Ok(Self { rest: cursor })
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        let raw = take(&mut self.rest, 1)?;
        raw.first().copied().ok_or(SnapshotError::Truncated)
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        read_u32_at(&mut self.rest)
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let raw = take(&mut self.rest, 8)?;
        let arr: [u8; 8] = raw.try_into().map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a `bool`; any byte other than 0 or 1 is `Corrupt`.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt),
        }
    }

    /// Read an optional `u64` (tag byte then value); any tag other than
    /// 0 or 1 is `Corrupt`.
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            _ => Err(SnapshotError::Corrupt),
        }
    }

    /// Read an optional `u8`; any tag other than 0 or 1 is `Corrupt`.
    pub fn take_opt_u8(&mut self) -> Result<Option<u8>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u8()?)),
            _ => Err(SnapshotError::Corrupt),
        }
    }

    /// Read an optional `u32`; any tag other than 0 or 1 is `Corrupt`.
    pub fn take_opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u32()?)),
            _ => Err(SnapshotError::Corrupt),
        }
    }

    /// Read an optional length-prefixed byte slice; any tag other than
    /// 0 or 1 is `Corrupt`.
    pub fn take_opt_bytes(&mut self) -> Result<Option<&'a [u8]>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_bytes()?)),
            _ => Err(SnapshotError::Corrupt),
        }
    }

    /// Read a length-prefixed byte slice. A declared length past the
    /// end of the payload is `Corrupt`.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.take_u32()? as usize;
        if n > self.rest.len() {
            return Err(SnapshotError::Corrupt);
        }
        take(&mut self.rest, n)
    }

    /// Read a length-prefixed `f64` vector. A declared length that
    /// cannot fit in the remaining payload is `Corrupt` (a crafted
    /// length would otherwise ask for an absurd allocation).
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(8) > self.rest.len() {
            return Err(SnapshotError::Corrupt);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Assert the payload was fully consumed; leftover bytes mean the
    /// payload does not match the expected shape (`Corrupt`).
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt)
        }
    }
}

/// `Ok(v)` when present, `Corrupt` otherwise. Decoding helper for enum
/// wire codes (`from_wire` returning `None`) and other domain
/// validations, so call sites outside this module never hand-construct
/// error variants (the error-taxonomy lint polices that).
pub fn require<T>(v: Option<T>) -> Result<T, SnapshotError> {
    v.ok_or(SnapshotError::Corrupt)
}

/// `Ok(())` when the condition holds, `Corrupt` otherwise. Companion
/// to [`require`] for plain boolean domain checks.
pub fn ensure(valid: bool) -> Result<(), SnapshotError> {
    if valid {
        Ok(())
    } else {
        Err(SnapshotError::Corrupt)
    }
}

/// `Ok(())` when a decoded value matches the run configuration it is
/// being restored into, [`SnapshotError::ConfigMismatch`] naming
/// `field` otherwise. Use this — not [`ensure`] — for checks that
/// compare intact snapshot contents against caller-supplied
/// configuration: the distinction tells an operator "you changed a
/// parameter" instead of "your checkpoint is damaged".
pub fn ensure_config(matches: bool, field: &'static str) -> Result<(), SnapshotError> {
    if matches {
        Ok(())
    } else {
        Err(SnapshotError::ConfigMismatch { field })
    }
}

/// A policy whose lifecycle a [`crate::Supervisor`] can manage:
/// checkpoint its state, restore it after a crash, or start over cold.
pub trait Restartable: Policy {
    /// Serialize the policy's mutable state into a framed snapshot.
    /// `now_ms` is the device clock at checkpoint time; restores use it
    /// to re-anchor absolute deadlines after downtime.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooLarge`] when some field overflows the wire
    /// format's `u32` length prefixes. A supervisor treats a failed
    /// checkpoint like a corrupt one: counted, never fatal.
    fn snapshot_bytes(&self, now_ms: u64) -> Result<Vec<u8>, SnapshotError>;

    /// Restore state from [`Restartable::snapshot_bytes`] output.
    /// `now_ms` is the device clock at restore time. Must be
    /// transactional: on any `Err` the policy is left exactly as it
    /// was, and must never panic regardless of the byte content.
    fn restore_bytes(&mut self, bytes: &[u8], now_ms: u64) -> Result<(), SnapshotError>;

    /// Cold restart: take over the device afresh with no memory of the
    /// previous incarnation, in the most conservative posture the
    /// policy has (for the hardened controller: the safe configuration,
    /// with a full probation to serve before resuming optimization).
    fn restart_cold(&mut self, device: &mut Device);

    /// Supervisor hook: inform a freshly restarted policy of the
    /// lifetime restart/snapshot-error totals so it can stamp them into
    /// its own telemetry. Default: ignore.
    fn note_restart_telemetry(&mut self, _restarts: u64, _snapshot_errors: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn sample_frame() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(42));
        w.put_opt_u8(None);
        w.put_opt_u8(Some(9));
        w.put_opt_u32(None);
        w.put_opt_u32(Some(0xFEED_F00D));
        w.put_opt_bytes(None).expect("tag only");
        w.put_opt_bytes(Some(b"inner")).expect("small field");
        w.put_f64_slice(&[1.5, -2.5, 1e300]).expect("small slice");
        w.put_bytes(b"nested").expect("small field");
        w.finish().expect("small frame")
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let frame = sample_frame();
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_u8(), Ok(7));
        assert_eq!(r.take_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.take_u64(), Ok(u64::MAX - 1));
        assert_eq!(r.take_f64().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.take_f64().map(f64::to_bits), Ok(f64::NAN.to_bits()));
        assert_eq!(r.take_bool(), Ok(true));
        assert_eq!(r.take_opt_u64(), Ok(None));
        assert_eq!(r.take_opt_u64(), Ok(Some(42)));
        assert_eq!(r.take_opt_u8(), Ok(None));
        assert_eq!(r.take_opt_u8(), Ok(Some(9)));
        assert_eq!(r.take_opt_u32(), Ok(None));
        assert_eq!(r.take_opt_u32(), Ok(Some(0xFEED_F00D)));
        assert_eq!(r.take_opt_bytes(), Ok(None));
        assert_eq!(r.take_opt_bytes(), Ok(Some(&b"inner"[..])));
        let vs = r.take_f64_vec().expect("vec");
        assert_eq!(vs, vec![1.5, -2.5, 1e300]);
        assert_eq!(r.take_bytes(), Ok(&b"nested"[..]));
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncation_at_every_byte_boundary_errors_without_panicking() {
        let frame = sample_frame();
        for n in 0..frame.len() {
            let prefix = frame.get(..n).expect("prefix in range");
            let err = SnapshotReader::new(prefix).expect_err("prefix must fail");
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::Corrupt),
                "prefix of {n} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Flip each bit of the frame in turn: header flips break the
        // magic/length/version/CRC checks, payload flips break the CRC.
        // None may decode cleanly, none may panic.
        let frame = sample_frame();
        for i in 0..frame.len() {
            for bit in 0..8u8 {
                let mut bad = frame.clone();
                if let Some(b) = bad.get_mut(i) {
                    *b ^= 1 << bit;
                }
                assert!(
                    SnapshotReader::new(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn future_version_is_reported_not_misread() {
        let mut w = SnapshotWriter::new();
        w.put_u64(99);
        let mut frame = w.finish().expect("small frame");
        // Patch the version field (bytes 4..8) to a future version.
        let future = (VERSION + 1).to_le_bytes();
        frame.splice(4..8, future);
        assert_eq!(
            SnapshotReader::new(&frame).err(),
            Some(SnapshotError::VersionMismatch { found: VERSION + 1 })
        );
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut frame = sample_frame();
        frame.push(0xAB);
        assert_eq!(
            SnapshotReader::new(&frame).err(),
            Some(SnapshotError::Corrupt)
        );
    }

    #[test]
    fn illegal_tags_are_corrupt_not_panics() {
        let mut w = SnapshotWriter::new();
        w.put_u8(2); // neither a valid bool nor a valid Option tag
        let frame = w.finish().expect("small frame");
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_bool(), Err(SnapshotError::Corrupt));
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_opt_u64(), Err(SnapshotError::Corrupt));
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_opt_u8(), Err(SnapshotError::Corrupt));
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_opt_u32(), Err(SnapshotError::Corrupt));
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_opt_bytes(), Err(SnapshotError::Corrupt));
    }

    #[test]
    fn opt_fields_error_without_consuming_ambiguity() {
        // A present-tagged option whose payload is missing is Truncated.
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        let frame = w.finish().expect("small frame");
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_opt_u64(), Err(SnapshotError::Truncated));
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_opt_u8(), Err(SnapshotError::Truncated));
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_opt_u32(), Err(SnapshotError::Truncated));
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_opt_bytes(), Err(SnapshotError::Truncated));
        // A present-tagged byte field declaring more than remains is
        // Corrupt (crafted length), mirroring take_bytes.
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        w.put_u32(u32::MAX);
        let frame = w.finish().expect("small frame");
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_opt_bytes(), Err(SnapshotError::Corrupt));
    }

    #[test]
    fn crafted_vec_length_is_corrupt_not_oom() {
        let mut w = SnapshotWriter::new();
        w.put_u32(u32::MAX); // declares a ~34 GB vector
        let frame = w.finish().expect("small frame");
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_f64_vec(), Err(SnapshotError::Corrupt));
        let mut r = SnapshotReader::new(&frame).expect("frame itself is valid");
        assert_eq!(r.take_bytes(), Err(SnapshotError::Corrupt));
    }

    #[test]
    fn leftover_payload_fails_finish() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let frame = w.finish().expect("small frame");
        let mut r = SnapshotReader::new(&frame).expect("valid frame");
        assert_eq!(r.take_u64(), Ok(1));
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.finish(), Err(SnapshotError::Corrupt));
    }

    #[test]
    fn oversize_lengths_are_rejected_not_truncated() {
        // Regression: the writer used to stamp `len as u32`, so a field
        // or payload of ≥ 4 GiB silently truncated its length prefix
        // and round-tripped corrupt data. The check is factored into
        // `encode_len` exactly so this can be pinned with faked lengths
        // instead of materializing a real 4 GiB buffer.
        assert_eq!(encode_len(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(
            encode_len(u32::MAX as usize + 1),
            Err(SnapshotError::TooLarge {
                len: u64::from(u32::MAX) + 1
            })
        );
        assert_eq!(
            encode_len(1usize << 33),
            Err(SnapshotError::TooLarge { len: 1 << 33 })
        );
        // In-range writer paths are unaffected.
        let mut w = SnapshotWriter::new();
        w.put_bytes(b"ok").expect("small field");
        w.put_f64_slice(&[1.0]).expect("small slice");
        w.finish().expect("small frame");
    }

    #[test]
    fn require_and_ensure_map_to_corrupt() {
        assert_eq!(require(Some(5)), Ok(5));
        assert_eq!(require::<u8>(None), Err(SnapshotError::Corrupt));
        assert_eq!(ensure(true), Ok(()));
        assert_eq!(ensure(false), Err(SnapshotError::Corrupt));
    }

    #[test]
    fn ensure_config_names_the_field() {
        assert_eq!(ensure_config(true, "seed"), Ok(()));
        assert_eq!(
            ensure_config(false, "seed"),
            Err(SnapshotError::ConfigMismatch { field: "seed" })
        );
    }

    #[test]
    fn error_display_names_the_cause() {
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::Corrupt.to_string().contains("corrupt"));
        let v = SnapshotError::VersionMismatch { found: 9 }.to_string();
        assert!(v.contains('9') && v.contains(&VERSION.to_string()));
        let t = SnapshotError::TooLarge { len: 1 << 33 }.to_string();
        assert!(t.contains(&(1u64 << 33).to_string()));
        let c = SnapshotError::ConfigMismatch { field: "epoch_ms" }.to_string();
        assert!(c.contains("epoch_ms") && c.contains("configuration"));
    }
}
